//! Ablation: number of blocking dimensions K vs margin-selection latency
//! (DESIGN.md §5). K = all dims degenerates to vanilla margin; K = 1 gives
//! the largest pruning and the paper's up-to-10× selection speedup.

use alem_bench::data::prepare;
use alem_core::learner::{SvmTrainer, Trainer};
use alem_core::selector;
use alem_obs::Registry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::PaperDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_blocking_k(c: &mut Criterion) {
    let p = prepare(PaperDataset::AbtBuy, 0.25);
    let corpus = &p.corpus;
    let labeled: Vec<(usize, bool)> = (0..corpus.len())
        .step_by((corpus.len() / 100).max(1))
        .map(|i| (i, corpus.truth(i)))
        .collect();
    let unlabeled: Vec<usize> = (0..corpus.len())
        .filter(|i| !labeled.iter().any(|(j, _)| j == i))
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let svm = SvmTrainer::default().train(
        &labeled
            .iter()
            .map(|&(i, _)| corpus.x(i).to_vec())
            .collect::<Vec<_>>(),
        &labeled.iter().map(|&(_, y)| y).collect::<Vec<_>>(),
        &mut rng,
    );

    let all = corpus.dim();
    let mut group = c.benchmark_group("blocking_dimensions_k");
    group.sample_size(10);
    for k in [1usize, 3, 8, all] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, &k| {
            bch.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(selector::blocking_dim::select(
                    &svm,
                    k,
                    corpus,
                    &unlabeled,
                    10,
                    &mut rng,
                    &Registry::disabled(),
                    &alem_par::Parallelism::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blocking_k);
criterion_main!(benches);
