//! Ablation: QBC committee size vs selection latency (DESIGN.md §5).
//!
//! Committee creation is linear in B; this bench quantifies the 2→20
//! latency blow-up that motivates learner-aware selection.

use alem_bench::data::prepare;
use alem_core::learner::SvmTrainer;
use alem_core::selector;
use alem_obs::Registry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::PaperDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_committee_sizes(c: &mut Criterion) {
    let p = prepare(PaperDataset::DblpAcm, 0.1);
    let corpus = &p.corpus;
    let labeled: Vec<(usize, bool)> = (0..corpus.len())
        .step_by(corpus.len() / 150)
        .map(|i| (i, corpus.truth(i)))
        .collect();
    let unlabeled: Vec<usize> = (0..corpus.len())
        .filter(|i| !labeled.iter().any(|(j, _)| j == i))
        .collect();

    let mut group = c.benchmark_group("qbc_committee_size");
    group.sample_size(10);
    for b in [2usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bch, &b| {
            bch.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(selector::qbc::select(
                    &SvmTrainer::default(),
                    b,
                    corpus,
                    &labeled,
                    &unlabeled,
                    10,
                    &mut rng,
                    false,
                    &Registry::disabled(),
                    &alem_par::Parallelism::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_committee_sizes);
criterion_main!(benches);
