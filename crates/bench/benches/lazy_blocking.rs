//! The §5.1 headline claim, reproduced in its original setting: blocking
//! dimensions pay off when feature vectors are built *during* selection.
//!
//! The paper's blocking "forgoes even a full feature vector construction
//! on each unlabeled example": only the blocking dimension is evaluated,
//! and examples where it is zero are skipped. This bench scores one
//! selection round over the unlabeled pool three ways:
//!
//! * `full_construction` — all 21 × #attrs similarities per pair, then
//!   the dot product (no optimization);
//! * `blocking_cheap_1dim` — evaluate one *cheap* blocking dimension (the
//!   top-|w| dimension among the token-set measures, whose evaluation is
//!   ~100× cheaper than Monge-Elkan/Smith-Waterman) and build the full
//!   vector only for survivors;
//! * the same pair of measurements on a **sparse corpus** (40% missing
//!   values) where the blocking dimension is zero for most pairs — the
//!   regime of the paper's real datasets, where selection-latency savings
//!   approach the reported 10×.
//!
//! Savings scale with the zero-rate of the blocking dimension; the bench
//! prints both corpora's pruning rates so the output is interpretable.

use alem_core::blocking::BlockingConfig;
use alem_core::features::FeatureExtractor;
use alem_core::learner::{SvmTrainer, Trainer};
use alem_core::schema::{EmDataset, Pair};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::perturb::Perturber;
use datagen::PaperDataset;
use mlcore::svm::LinearSvm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use textsim::SimilarityFunction;

/// Dimensions whose similarity function is cheap to evaluate (token-set
/// measures, no O(len²) alignment).
fn is_cheap(dim: usize) -> bool {
    matches!(
        SimilarityFunction::ALL[dim % SimilarityFunction::ALL.len()],
        SimilarityFunction::Identity
            | SimilarityFunction::Jaccard
            | SimilarityFunction::Dice
            | SimilarityFunction::OverlapCoefficient
            | SimilarityFunction::Cosine
            | SimilarityFunction::BlockDistance
    )
}

/// Train a quick SVM and pick the highest-|w| cheap dimension.
fn prepare(ds: &EmDataset, threshold: f64) -> (Vec<Pair>, FeatureExtractor, LinearSvm, usize) {
    let pairs = BlockingConfig {
        jaccard_threshold: threshold,
    }
    .block(ds);
    let fx = FeatureExtractor::new(ds);
    let sample: Vec<_> = pairs
        .iter()
        .step_by((pairs.len() / 150).max(1))
        .copied()
        .collect();
    let xs: Vec<Vec<f64>> = sample.iter().map(|&p| fx.extract_pair(p)).collect();
    let ys: Vec<bool> = sample.iter().map(|&p| ds.is_match(p)).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let svm = SvmTrainer::default().train(&xs, &ys, &mut rng);
    let blocking_dim = svm
        .top_weight_dims(fx.dim())
        .into_iter()
        .find(|&d| is_cheap(d))
        .expect("some cheap dimension exists");
    (pairs, fx, svm, blocking_dim)
}

fn bench_variant(
    c: &mut Criterion,
    label: &str,
    pairs: &[Pair],
    fx: &FeatureExtractor,
    svm: &LinearSvm,
    blocking_dim: usize,
) {
    let pruned = pairs
        .iter()
        .filter(|&&p| fx.compute_dim(p, blocking_dim) == 0.0)
        .count();
    eprintln!(
        "[lazy_blocking/{label}] pool {} pairs, cheap blocking dim {blocking_dim} zero on {pruned} ({:.0}%)",
        pairs.len(),
        100.0 * pruned as f64 / pairs.len() as f64
    );

    let mut group = c.benchmark_group(format!("lazy_selection_round_{label}"));
    group.sample_size(10);
    group.bench_function("full_construction", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            for &p in pairs {
                let x = fx.extract_pair(p);
                best = best.min(svm.margin(&x));
            }
            black_box(best)
        })
    });
    group.bench_function("blocking_cheap_1dim", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            for &p in pairs {
                // One cheap similarity instead of the full 21 × #attrs.
                if fx.compute_dim(p, blocking_dim) == 0.0 {
                    continue;
                }
                let x = fx.extract_pair(p);
                best = best.min(svm.margin(&x));
            }
            black_box(best)
        })
    });
    group.finish();
}

fn bench_lazy_blocking(c: &mut Criterion) {
    // Standard Abt-Buy-like corpus.
    let cfg = PaperDataset::AbtBuy.config(0.25);
    let ds = datagen::generate(&cfg, 7);
    let (pairs, fx, svm, dim) = prepare(&ds, cfg.blocking_threshold);
    bench_variant(c, "abtbuy", &pairs, &fx, &svm, dim);

    // Sparse corpus: 40% missing values per attribute — the regime where
    // blocking dimensions are frequently zero.
    let mut sparse_cfg = PaperDataset::AbtBuy.config(0.25);
    let sparse = Perturber {
        missing_rate: 0.4,
        ..Perturber::HEAVY
    };
    sparse_cfg.perturb_left = sparse;
    sparse_cfg.perturb_right = sparse;
    let ds = datagen::generate(&sparse_cfg, 7);
    let (pairs, fx, svm, dim) = prepare(&ds, 0.1);
    bench_variant(c, "sparse", &pairs, &fx, &svm, dim);
}

criterion_group!(benches, bench_lazy_blocking);
criterion_main!(benches);
