//! Pass/fail gate: telemetry overhead on a hot selection round.
//!
//! Runs the same margin-selection round with a disabled registry (the
//! default for every production code path) and with an enabled one
//! recording spans + counters, then compares the fastest observed round
//! of each. ISSUE acceptance: the enabled path costs < 5% over the
//! disabled path on a realistic round. Exits non-zero past the
//! threshold, so CI can run it as a gate:
//!
//! ```text
//! cargo bench --bench obs_overhead
//! ```
//!
//! Minimum-of-samples (not mean) is compared because scheduler noise
//! only ever adds time; the minimum is the closest observable to the
//! true cost of each configuration.

use alem_bench::data::prepare;
use alem_core::learner::{SvmTrainer, Trainer};
use alem_core::selector;
use alem_obs::Registry;
use datagen::PaperDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Interleaved measurement rounds per configuration.
const SAMPLES: usize = 9;
/// Selection rounds per measured sample.
const ROUNDS_PER_SAMPLE: usize = 4;
/// Maximum tolerated (enabled − disabled) / disabled.
const MAX_OVERHEAD: f64 = 0.05;

fn main() {
    // Tolerate the extra args harness=false benches receive from cargo
    // (e.g. `--bench`); none of them change what this gate measures.
    let _ = std::env::args();

    let p = prepare(PaperDataset::DblpAcm, 0.25);
    let corpus = &p.corpus;
    let labeled: Vec<(usize, bool)> = (0..corpus.len())
        .step_by(corpus.len() / 200)
        .map(|i| (i, corpus.truth(i)))
        .collect();
    let unlabeled: Vec<usize> = (0..corpus.len())
        .filter(|i| !labeled.iter().any(|(j, _)| j == i))
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let svm = SvmTrainer::default().train(
        &labeled
            .iter()
            .map(|&(i, _)| corpus.x(i).to_vec())
            .collect::<Vec<_>>(),
        &labeled.iter().map(|&(_, y)| y).collect::<Vec<_>>(),
        &mut rng,
    );
    let par = alem_par::Parallelism::default();

    let round = |obs: &Registry| {
        let mut rng = StdRng::seed_from_u64(1);
        black_box(selector::margin::select(
            |x| svm.margin(x),
            corpus,
            &unlabeled,
            10,
            &mut rng,
            obs,
            &par,
        ))
    };

    let disabled = Registry::disabled();
    let enabled = Registry::enabled();

    // Warmup both paths (page cache, branch predictors, allocator).
    for _ in 0..2 {
        round(&disabled);
        round(&enabled);
    }

    // Interleave samples so drift (thermal, background load) hits both
    // configurations symmetrically.
    let mut best_disabled = f64::INFINITY;
    let mut best_enabled = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..ROUNDS_PER_SAMPLE {
            round(&disabled);
        }
        best_disabled = best_disabled.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for _ in 0..ROUNDS_PER_SAMPLE {
            round(&enabled);
        }
        best_enabled = best_enabled.min(t.elapsed().as_secs_f64());
    }

    let overhead = (best_enabled - best_disabled) / best_disabled;
    println!(
        "obs_overhead: disabled {:.3} ms/round, enabled {:.3} ms/round, overhead {:+.2}%",
        best_disabled * 1e3 / ROUNDS_PER_SAMPLE as f64,
        best_enabled * 1e3 / ROUNDS_PER_SAMPLE as f64,
        overhead * 100.0
    );
    if overhead > MAX_OVERHEAD {
        println!(
            "obs_overhead: FAILED (enabled telemetry costs {:.2}% > {:.0}% budget)",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    println!("obs_overhead: OK (budget {:.0}%)", MAX_OVERHEAD * 100.0);
}
