//! Criterion bench: telemetry overhead on a hot selection round.
//!
//! Runs the same margin-selection round with a disabled registry (the
//! default for every production code path) and with an enabled one
//! recording spans + counters. The disabled path must stay within a few
//! percent of free: ISSUE acceptance is < 5% overhead for the enabled
//! path on a realistic round, and ~0 for the disabled path.

use alem_bench::data::prepare;
use alem_core::learner::{SvmTrainer, Trainer};
use alem_core::selector;
use alem_obs::Registry;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::PaperDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let p = prepare(PaperDataset::DblpAcm, 0.25);
    let corpus = &p.corpus;
    let labeled: Vec<(usize, bool)> = (0..corpus.len())
        .step_by(corpus.len() / 200)
        .map(|i| (i, corpus.truth(i)))
        .collect();
    let unlabeled: Vec<usize> = (0..corpus.len())
        .filter(|i| !labeled.iter().any(|(j, _)| j == i))
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let svm = SvmTrainer::default().train(
        &labeled
            .iter()
            .map(|&(i, _)| corpus.x(i).to_vec())
            .collect::<Vec<_>>(),
        &labeled.iter().map(|&(_, y)| y).collect::<Vec<_>>(),
        &mut rng,
    );

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("selection_obs_disabled", |b| {
        let obs = Registry::disabled();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(selector::margin::select(
                |x| svm.margin(x),
                corpus,
                &unlabeled,
                10,
                &mut rng,
                &obs,
                &alem_par::Parallelism::default(),
            ))
        })
    });
    group.bench_function("selection_obs_enabled", |b| {
        let obs = Registry::enabled();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(selector::margin::select(
                |x| svm.margin(x),
                corpus,
                &unlabeled,
                10,
                &mut rng,
                &obs,
                &alem_par::Parallelism::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
