//! Criterion bench: substrate throughput — blocking and featurization
//! (the offline pipeline ahead of Table 1).

use alem_core::blocking::BlockingConfig;
use alem_core::features::FeatureExtractor;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datagen::PaperDataset;
use std::hint::black_box;
use textsim::{Prepared, SimilarityFunction};

fn bench_pipeline(c: &mut Criterion) {
    let cfg = PaperDataset::DblpAcm.config(0.1);
    let ds = datagen::generate(&cfg, 1);
    let blocking = BlockingConfig {
        jaccard_threshold: cfg.blocking_threshold,
    };

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.throughput(Throughput::Elements(
        (ds.left.len() * ds.right.len()) as u64,
    ));
    group.bench_function("blocking_inverted_index", |b| {
        b.iter(|| black_box(blocking.block(&ds)))
    });

    let pairs = blocking.block(&ds);
    let fx = FeatureExtractor::new(&ds);
    let sample: Vec<_> = pairs.iter().take(256).copied().collect();
    group.throughput(Throughput::Elements(sample.len() as u64));
    group.bench_function("featurize_21_sims", |b| {
        b.iter(|| black_box(fx.extract_all(&sample)))
    });

    group.finish();

    // Individual similarity functions on a representative value pair.
    let a = Prepared::new("efficient scalable entity matching with active learning");
    let bb = Prepared::new("scalable entity resolution via activ learning methods");
    let mut group = c.benchmark_group("similarity");
    for f in [
        SimilarityFunction::Levenshtein,
        SimilarityFunction::JaroWinkler,
        SimilarityFunction::SmithWatermanGotoh,
        SimilarityFunction::Jaccard,
        SimilarityFunction::MongeElkan,
        SimilarityFunction::QGram,
    ] {
        group.bench_function(f.name(), |bch| {
            bch.iter(|| black_box(f.compute_prepared(&a, &bb)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
