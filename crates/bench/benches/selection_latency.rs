//! Criterion bench: example-selection latency per selector (Fig. 10).
//!
//! Measures one selection round — committee creation + scoring for QBC,
//! scoring only for the learner-aware selectors — on a fixed DBLP-ACM
//! corpus with a fixed labeled pool. The orderings to expect:
//! QBC(20) ≫ QBC(2) ≫ margin ≈ trees, and margin(1Dim) < margin(all).

use alem_bench::data::prepare;
use alem_core::learner::{SvmTrainer, Trainer};
use alem_core::selector;
use alem_obs::Registry;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::PaperDataset;
use mlcore::data::TrainSet;
use mlcore::forest::ForestConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let p = prepare(PaperDataset::DblpAcm, 0.1);
    let corpus = &p.corpus;
    let labeled: Vec<(usize, bool)> = (0..corpus.len())
        .step_by(corpus.len() / 200)
        .map(|i| (i, corpus.truth(i)))
        .collect();
    let unlabeled: Vec<usize> = (0..corpus.len())
        .filter(|i| !labeled.iter().any(|(j, _)| j == i))
        .collect();

    let mut group = c.benchmark_group("selection_round");
    group.sample_size(10);

    for committee in [2usize, 20] {
        group.bench_function(format!("qbc_svm_{committee}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(selector::qbc::select(
                    &SvmTrainer::default(),
                    committee,
                    corpus,
                    &labeled,
                    &unlabeled,
                    10,
                    &mut rng,
                    false,
                    &Registry::disabled(),
                    &alem_par::Parallelism::default(),
                ))
            })
        });
    }

    // Train the models once; learner-aware selection reuses them.
    let mut rng = StdRng::seed_from_u64(1);
    let svm = SvmTrainer::default().train(
        &labeled
            .iter()
            .map(|&(i, _)| corpus.x(i).to_vec())
            .collect::<Vec<_>>(),
        &labeled.iter().map(|&(_, y)| y).collect::<Vec<_>>(),
        &mut rng,
    );
    group.bench_function("margin_all_dims", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(selector::margin::select(
                |x| svm.margin(x),
                corpus,
                &unlabeled,
                10,
                &mut rng,
                &Registry::disabled(),
                &alem_par::Parallelism::default(),
            ))
        })
    });
    group.bench_function("margin_blocking_1dim", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(selector::blocking_dim::select(
                &svm,
                1,
                corpus,
                &unlabeled,
                10,
                &mut rng,
                &Registry::disabled(),
                &alem_par::Parallelism::default(),
            ))
        })
    });

    let xs: Vec<Vec<f64>> = labeled.iter().map(|&(i, _)| corpus.x(i).to_vec()).collect();
    let ys: Vec<bool> = labeled.iter().map(|&(_, y)| y).collect();
    let forest = ForestConfig::with_trees(20).train(&TrainSet::new(&xs, &ys), &mut rng);
    group.bench_function("tree_qbc_20", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(selector::tree_qbc::select(
                &forest,
                corpus,
                &unlabeled,
                10,
                &mut rng,
                &Registry::disabled(),
                &alem_par::Parallelism::default(),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
