//! Criterion bench: per-learner training time on a fixed labeled pool.
//!
//! The training-time ordering (NN ≫ forest > SVM ≈ rules) drives the user
//! wait times of Fig. 13 — neural committees are what make NN-QBC
//! prohibitively slow in the paper.

use alem_bench::data::prepare;
use alem_core::learner::{DnfTrainer, ForestTrainer, NnTrainer, SvmTrainer, Trainer};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::PaperDataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let p = prepare(PaperDataset::DblpAcm, 0.1);
    let corpus = &p.corpus;
    let idx: Vec<usize> = (0..corpus.len()).step_by(corpus.len() / 300).collect();
    let xs: Vec<Vec<f64>> = idx.iter().map(|&i| corpus.x(i).to_vec()).collect();
    let ys: Vec<bool> = idx.iter().map(|&i| corpus.truth(i)).collect();
    let bxs: Vec<Vec<f64>> = idx
        .iter()
        .map(|&i| corpus.bool_features().unwrap()[i].clone())
        .collect();

    let mut group = c.benchmark_group("train");
    group.sample_size(10);

    group.bench_function("linear_svm", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(SvmTrainer::default().train(&xs, &ys, &mut rng))
        })
    });
    for n in [2usize, 10, 20] {
        group.bench_function(format!("forest_{n}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(ForestTrainer::with_trees(n).train(&xs, &ys, &mut rng))
            })
        });
    }
    group.bench_function("neural_net", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(NnTrainer::default().train(&xs, &ys, &mut rng))
        })
    });
    group.bench_function("dnf_rules", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(DnfTrainer::default().train(&bxs, &ys, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
