//! Blocking-strategy sweep over the scaled social corpus (§6.3.1 data,
//! candidate-generation axis).
//!
//! Usage: `bench_blocking [--scale-factor F] [--threads-list 1,4]
//! [--min-candidates N] [--smoke] [--out FILE]`
//!
//! Every `alem-block` strategy — capped token index, q-gram index,
//! sorted-neighborhood at two windows, minhash-LSH — plus the paper's
//! sequential token-Jaccard baseline (smoke scale only; it has no
//! stop-token cap and degenerates on the corpus's universal email
//! tokens) runs at each thread count. Each run is a single streaming
//! pass producing a [`BlockingReport`]: candidate count, reduction
//! ratio, recall, gender-group recall, and a pair-stream fingerprint.
//!
//! Two gates are always fatal:
//!
//! 1. **Thread invariance** — a strategy's fingerprint must be identical
//!    at every thread count; the process exits non-zero otherwise.
//! 2. **Scale floor** — unless `--smoke`, at least one strategy must
//!    stream `--min-candidates` pairs (default 100,000), proving the
//!    sweep exercised the streaming path well past the in-memory pool
//!    sizes of the selection benchmarks.
//!
//! Timings are whatever this machine actually measured.

use alem_block::{
    BlockingConfig, BlockingReport, CandidateSource, MinHashLsh, QGramIndex, SortedNeighborhood,
    TokenIndex,
};
use alem_core::schema::EmDataset;
use alem_par::Parallelism;
use datagen::SocialConfig;
use serde::Serialize;
use std::time::Instant;

/// `gender` in [`datagen::social::social_schema`] — the group-recall key.
const GROUP_ATTR: usize = 4;
const GROUP_ATTR_NAME: &str = "gender";
const SEED: u64 = 42;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    smoke: bool,
    scale_factor: f64,
    seed: u64,
    min_candidates: u64,
    threads_list: Vec<usize>,
    group_attr: usize,
    group_attr_name: &'static str,
    dataset: DatasetInfo,
    strategies: Vec<StrategyReport>,
    /// Largest per-strategy candidate count in the sweep.
    max_candidates: u64,
    /// Candidate pairs streamed across all strategies (first thread
    /// count only — re-runs at other thread counts stream the same
    /// sequence again).
    total_candidates: u64,
    all_fingerprints_thread_invariant: bool,
    scale_floor_met: bool,
}

#[derive(Serialize)]
struct DatasetInfo {
    name: String,
    left_rows: usize,
    right_rows: usize,
    matches: usize,
    total_pairs: u64,
}

#[derive(Serialize)]
struct StrategyReport {
    strategy: String,
    candidates: u64,
    reduction_ratio: f64,
    recall: f64,
    matches_total: usize,
    matches_retained: usize,
    group_recall: Vec<GroupRow>,
    /// Smallest group recall minus overall recall; negative means one
    /// group is blocked worse than average.
    worst_group_gap: f64,
    runs: Vec<RunRow>,
    fingerprint: String,
    fingerprints_identical: bool,
}

#[derive(Serialize)]
struct GroupRow {
    group: String,
    matches_total: usize,
    matches_retained: usize,
    recall: f64,
}

#[derive(Serialize)]
struct RunRow {
    threads: usize,
    wall_secs: f64,
    pairs_per_sec: f64,
    fingerprint: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_blocking [--scale-factor F] [--threads-list 1,4] \
         [--min-candidates N] [--smoke] [--out FILE]"
    );
    std::process::exit(2);
}

/// The sweep: label + strategy factory per thread count. The uncapped
/// sequential baseline joins only at smoke scale — universal email
/// tokens ("example", "mail") give it a quadratic probe at full scale.
fn strategies(smoke: bool) -> Vec<(&'static str, StrategyFactory)> {
    let mut v: Vec<(&'static str, StrategyFactory)> = vec![
        (
            "token-capped",
            Box::new(|par| {
                Box::new(
                    TokenIndex::builder()
                        .threshold(0.1875)
                        .max_postings(20_000)
                        .parallelism(par)
                        .build(),
                )
            }),
        ),
        (
            "token-loose",
            Box::new(|par| {
                Box::new(
                    TokenIndex::builder()
                        .threshold(0.125)
                        .max_postings(20_000)
                        .parallelism(par)
                        .build(),
                )
            }),
        ),
        (
            "qgram",
            Box::new(|par| {
                Box::new(
                    QGramIndex::builder()
                        .q(3)
                        .min_shared(12)
                        .max_postings(20_000)
                        .parallelism(par)
                        .build(),
                )
            }),
        ),
        (
            "sorted-w10",
            Box::new(|par| {
                Box::new(
                    SortedNeighborhood::builder()
                        .window(10)
                        .parallelism(par)
                        .build(),
                )
            }),
        ),
        (
            "sorted-w25",
            Box::new(|par| {
                Box::new(
                    SortedNeighborhood::builder()
                        .window(25)
                        .parallelism(par)
                        .build(),
                )
            }),
        ),
        (
            "minhash",
            Box::new(|par| {
                Box::new(
                    MinHashLsh::builder()
                        .bands(8)
                        .rows(2)
                        .seed(SEED)
                        .parallelism(par)
                        .build(),
                )
            }),
        ),
    ];
    if smoke {
        v.push((
            "baseline-jaccard",
            Box::new(|_par| {
                Box::new(BlockingConfig {
                    jaccard_threshold: 0.1875,
                })
            }),
        ));
    }
    v
}

type StrategyFactory = Box<dyn Fn(Parallelism) -> Box<dyn CandidateSource>>;

fn sweep_strategy(
    label: &str,
    factory: &StrategyFactory,
    ds: &EmDataset,
    threads_list: &[usize],
) -> StrategyReport {
    let mut runs = Vec::new();
    let mut first: Option<BlockingReport> = None;
    for &threads in threads_list {
        let source = factory(Parallelism::fixed(threads));
        let t0 = Instant::now();
        let report = BlockingReport::compute(source.as_ref(), ds, Some(GROUP_ATTR))
            .expect("blocking strategies stream valid candidates");
        let wall = t0.elapsed().as_secs_f64();
        runs.push(RunRow {
            threads,
            wall_secs: wall,
            pairs_per_sec: if wall > 0.0 {
                report.candidates as f64 / wall
            } else {
                0.0
            },
            fingerprint: format!("{:016x}", report.fingerprint),
        });
        eprintln!(
            "[bench_blocking] {label} t={threads}: {} candidates, recall {:.3}, {:.2}s",
            report.candidates, report.recall, wall
        );
        first.get_or_insert(report);
    }
    let report = first.expect("threads_list is non-empty");
    let identical = runs
        .windows(2)
        .all(|w| w[0].fingerprint == w[1].fingerprint);
    StrategyReport {
        strategy: report.source.clone(),
        candidates: report.candidates,
        reduction_ratio: report.reduction_ratio,
        recall: report.recall,
        matches_total: report.matches_total,
        matches_retained: report.matches_retained,
        worst_group_gap: report.worst_group_gap(),
        group_recall: report
            .group_recall
            .iter()
            .map(|g| GroupRow {
                group: g.group.clone(),
                matches_total: g.matches_total,
                matches_retained: g.matches_retained,
                recall: g.recall,
            })
            .collect(),
        runs,
        fingerprint: format!("{:016x}", report.fingerprint),
        fingerprints_identical: identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut scale_factor: Option<f64> = None;
    let mut threads_list = vec![1usize, 4];
    let mut min_candidates = 100_000u64;
    let mut out = String::from("BENCH_blocking.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale-factor" => {
                scale_factor = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|&f: &f64| f > 0.0)
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--threads-list" => {
                threads_list = args
                    .get(i + 1)
                    .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
                    .filter(|v: &Vec<usize>| !v.is_empty() && !v.contains(&0))
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--min-candidates" => {
                min_candidates = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    // Smoke: the default 400 × 4k corpus. Full: 10k employees × 100k
    // profiles — 1G Cartesian pairs, far past anything the selection
    // benchmarks materialize.
    let factor = scale_factor.unwrap_or(if smoke { 1.0 } else { 25.0 });

    let cfg = SocialConfig::scaled(factor);
    eprintln!(
        "[bench_blocking] generating social corpus: {} employees x {} profiles (factor {factor})",
        cfg.n_employees, cfg.n_profiles
    );
    let ds = datagen::generate_social(&cfg, SEED);
    let dataset = DatasetInfo {
        name: ds.name.clone(),
        left_rows: ds.left.len(),
        right_rows: ds.right.len(),
        matches: ds.matches.len(),
        total_pairs: ds.total_pairs(),
    };

    let strategy_reports: Vec<StrategyReport> = strategies(smoke)
        .iter()
        .map(|(label, factory)| sweep_strategy(label, factory, &ds, &threads_list))
        .collect();

    let max_candidates = strategy_reports
        .iter()
        .map(|s| s.candidates)
        .max()
        .unwrap_or(0);
    let total_candidates = strategy_reports.iter().map(|s| s.candidates).sum();
    let invariant = strategy_reports.iter().all(|s| s.fingerprints_identical);
    let floor_met = smoke || max_candidates >= min_candidates;

    let report = Report {
        bench: "blocking",
        smoke,
        scale_factor: factor,
        seed: SEED,
        min_candidates,
        threads_list,
        group_attr: GROUP_ATTR,
        group_attr_name: GROUP_ATTR_NAME,
        dataset,
        strategies: strategy_reports,
        max_candidates,
        total_candidates,
        all_fingerprints_thread_invariant: invariant,
        scale_floor_met: floor_met,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write report file");
    eprintln!("[bench_blocking] wrote {out}");

    if !invariant {
        eprintln!("[bench_blocking] FAIL: fingerprints diverge across thread counts");
        std::process::exit(1);
    }
    if !floor_met {
        eprintln!(
            "[bench_blocking] FAIL: no strategy reached {min_candidates} candidates \
             (max {max_candidates})"
        );
        std::process::exit(1);
    }
}
