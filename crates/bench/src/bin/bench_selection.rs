//! Selection-latency benchmark across thread counts (§6.3 systems axis)
//! plus the lazy-extraction / warm-training comparison behind the flat
//! feature store.
//!
//! Usage: `bench_selection [--scale S] [--threads-list 1,2,4,8]
//! [--mode-threads N] [--lazy-topk K] [--tolerance T] [--gate] [--out FILE]`
//!
//! Two sections go into `BENCH_selection.json`:
//!
//! 1. **Thread sweep** — a committee-heavy and a scoring-heavy strategy on
//!    the smoke datasets at each thread count, with per-phase latency from
//!    the run's own iteration clocks. Every run's
//!    `deterministic_fingerprint` is cross-checked: a thread count may
//!    only change wall-clock numbers, never results, and the process
//!    exits non-zero if any fingerprint diverges.
//!
//! 2. **Mode comparison** — the margin strategy in the four
//!    {eager,lazy} × {cold,warm} modes plus a cold/partial-refresh forest
//!    pair, on three pool-size regimes, each run end to end (corpus build
//!    included) with an enabled telemetry registry; repeats are
//!    interleaved across modes and each mode keeps its fastest, so
//!    thermal/load drift does not land on whichever mode runs last. Rows
//!    carry `pairs_per_sec_scored`, the `train_secs_per_round` series,
//!    and feature-cache counters. The gate (always computed; `--gate`
//!    makes failures fatal) checks that lazy selection is byte-identical
//!    to eager at both warmth levels, that lazy never regresses wall time
//!    beyond `--tolerance` on any dataset, that lazy+warm beats
//!    eager+cold outright on at least two of the three, and that warm
//!    per-round train cost stays flat as the labeled pool grows.
//!
//! Timings are whatever this machine actually measured — on a single-core
//! host the thread counts will (honestly) tie.

use alem_core::blocking::BlockingConfig;
use alem_core::corpus::Corpus;
use alem_core::learner::SvmTrainer;
use alem_core::loop_::{ActiveLearner, EvalMode, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::schema::EmDataset;
use alem_core::session::SessionConfig;
use alem_core::strategy::{MarginSvmStrategy, QbcStrategy, Strategy, TreeQbcStrategy};
use alem_obs::Registry;
use alem_par::Parallelism;
use datagen::PaperDataset;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    scale: f64,
    host_threads: usize,
    thread_counts: Vec<usize>,
    mode_threads: usize,
    /// `--lazy-topk` override; `null` means the per-dataset default of
    /// three quarters of the feature dimensionality (see
    /// `DatasetReport::lazy_topk`).
    lazy_topk: Option<usize>,
    tolerance: f64,
    datasets: Vec<DatasetReport>,
    gate: GateReport,
}

#[derive(Serialize)]
struct DatasetReport {
    dataset: String,
    pairs: usize,
    dims: usize,
    runs: Vec<RunRow>,
    /// True iff, per strategy, every thread count produced the same
    /// `deterministic_fingerprint` — the layer's core contract.
    fingerprints_identical: bool,
    /// Phase-1 dims used by this dataset's lazy modes.
    lazy_topk: usize,
    /// Lazy/warm mode comparison (margin strategy + forest refresh).
    modes: Vec<ModeRow>,
}

#[derive(Serialize)]
struct RunRow {
    strategy: String,
    threads: usize,
    select_secs: f64,
    train_secs: f64,
    wall_secs: f64,
    best_f1: f64,
    fingerprint: String,
}

#[derive(Serialize)]
struct ModeRow {
    mode: String,
    strategy: String,
    threads: usize,
    /// Corpus build + full session, the end-to-end number the gate compares.
    wall_secs: f64,
    build_secs: f64,
    select_secs: f64,
    train_secs: f64,
    /// Per-iteration training cost; warm modes must hold this flat.
    train_secs_per_round: Vec<f64>,
    rounds: usize,
    pairs_scored: u64,
    /// Pool entries resolved by the lazy phase-1 bound alone.
    phase1_only: u64,
    pairs_per_sec_scored: f64,
    feat_cache_hits: u64,
    feat_cache_misses: u64,
    /// Similarity values memoized by phase-1 partial reads alone.
    partial_cells_filled: u64,
    /// Rows fully materialized by round end (lazy modes; pool size when eager).
    materialized_rows: u64,
    best_f1: f64,
    fingerprint: String,
}

#[derive(Serialize)]
struct GateReport {
    tolerance: f64,
    checks: Vec<GateCheck>,
    passed: bool,
}

#[derive(Serialize)]
struct GateCheck {
    dataset: String,
    name: &'static str,
    detail: String,
    passed: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_selection [--scale S] [--threads-list 1,2,4,8] [--mode-threads N] \
         [--lazy-topk K] [--tolerance T] [--gate] [--out FILE]"
    );
    std::process::exit(2);
}

fn strategies() -> Vec<(&'static str, Box<dyn Strategy + Send>)> {
    vec![
        (
            "Trees(20)",
            Box::new(TreeQbcStrategy::builder().trees(20).build()),
        ),
        (
            "QBC-SVM(10)",
            Box::new(
                QbcStrategy::builder(SvmTrainer::default())
                    .committee_size(10)
                    .build(),
            ),
        ),
        (
            "Linear-Margin",
            Box::new(MarginSvmStrategy::builder().build()),
        ),
    ]
}

/// `(mode, lazy corpus?, strategy)` for the lazy/warm comparison.
fn mode_strategies(lazy_topk: usize) -> Vec<(&'static str, bool, Box<dyn Strategy + Send>)> {
    vec![
        (
            "eager-cold",
            false,
            Box::new(MarginSvmStrategy::builder().build()),
        ),
        (
            "lazy-cold",
            true,
            Box::new(MarginSvmStrategy::builder().lazy_topk(lazy_topk).build()),
        ),
        (
            "eager-warm",
            false,
            Box::new(MarginSvmStrategy::builder().warm_start().build()),
        ),
        (
            "lazy-warm",
            true,
            Box::new(
                MarginSvmStrategy::builder()
                    .lazy_topk(lazy_topk)
                    .warm_start()
                    .build(),
            ),
        ),
        (
            "trees-cold",
            false,
            Box::new(TreeQbcStrategy::builder().trees(20).build()),
        ),
        (
            "trees-refresh",
            false,
            Box::new(
                TreeQbcStrategy::builder()
                    .trees(20)
                    .refresh_frac(0.3)
                    .build(),
            ),
        ),
    ]
}

/// One end-to-end mode run: corpus build (eager or lazy) + full session
/// under an enabled registry, so scoring-throughput and feature-cache
/// counters land in the row.
fn run_mode(
    ds: &EmDataset,
    blocking: &BlockingConfig,
    mode: &'static str,
    lazy_corpus: bool,
    strat: Box<dyn Strategy + Send>,
    params: &LoopParams,
    threads: usize,
) -> ModeRow {
    let strategy = strat.name();
    let obs = Registry::enabled();
    let t0 = Instant::now();
    let par = Parallelism::fixed(threads);
    let (corpus, _fx) = if lazy_corpus {
        Corpus::from_candidates_lazy_with(ds, blocking, &par)
    } else {
        Corpus::from_candidates_with(ds, blocking, &par)
    }
    .expect("blocking config streams valid candidates");
    let build_secs = t0.elapsed().as_secs_f64();
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let config = SessionConfig {
        parallelism: par,
        obs: obs.clone(),
        ..SessionConfig::default()
    };
    let r = ActiveLearner::new(strat, params.clone())
        .run_session(&corpus, &oracle, 7, &config)
        .unwrap_or_else(|e| panic!("mode run {mode} failed: {e}"))
        .run_result()
        .unwrap_or_else(|| panic!("mode run {mode} halted unexpectedly"));
    let wall_secs = t0.elapsed().as_secs_f64();
    let select_secs: f64 = r.iterations.iter().map(|it| it.selection_secs()).sum();
    let train_secs_per_round: Vec<f64> = r.iterations.iter().map(|it| it.train_secs).collect();
    let pairs_scored = obs.counter_value("select.pairs_scored");
    let (feat_cache_hits, feat_cache_misses) = corpus.feature_cache_stats();
    ModeRow {
        mode: mode.to_string(),
        strategy,
        threads,
        wall_secs,
        build_secs,
        select_secs,
        train_secs: train_secs_per_round.iter().sum(),
        rounds: train_secs_per_round.len(),
        train_secs_per_round,
        pairs_scored,
        phase1_only: obs.counter_value("feat.phase1_only"),
        pairs_per_sec_scored: pairs_scored as f64 / select_secs.max(1e-9),
        feat_cache_hits,
        feat_cache_misses,
        partial_cells_filled: corpus.store().partial_cells_filled() as u64,
        materialized_rows: corpus.store().materialized_rows() as u64,
        best_f1: r.best_f1(),
        fingerprint: r.deterministic_fingerprint(),
    }
}

/// Robust per-round train-cost flatness: median of the last third of
/// selecting rounds over the median of the middle third, each round
/// clamped to a 1 ms noise floor (sub-millisecond fits are "flat" by
/// construction, not by timer luck). Cold refits grow with the labeled
/// pool; warm/refresh updates must hold this near 1.
fn train_flat_ratio(series: &[f64]) -> f64 {
    // Round 0 is the cold seed fit in every mode; only the growth
    // trajectory after it matters.
    let sel = &series[series.len().min(1)..];
    let third = sel.len() / 3;
    if third == 0 {
        return 1.0;
    }
    let median_clamped = |s: &[f64]| -> f64 {
        let mut v: Vec<f64> = s.iter().map(|&t| t.max(1e-3)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v[v.len() / 2]
    };
    let early = median_clamped(&sel[third..2 * third]);
    let late = median_clamped(&sel[sel.len() - third..]);
    late / early
}

fn mode<'a>(modes: &'a [ModeRow], name: &str) -> &'a ModeRow {
    modes
        .iter()
        .find(|m| m.mode == name)
        .unwrap_or_else(|| panic!("mode {name} missing from report"))
}

/// The lazy/warm acceptance checks for one dataset's mode rows.
fn gate_checks(dataset: &str, modes: &[ModeRow], tolerance: f64) -> Vec<GateCheck> {
    let (ec, lc) = (mode(modes, "eager-cold"), mode(modes, "lazy-cold"));
    let (ew, lw) = (mode(modes, "eager-warm"), mode(modes, "lazy-warm"));
    let mut checks = Vec::new();
    let mut push = |name: &'static str, detail: String, passed: bool| {
        checks.push(GateCheck {
            dataset: dataset.to_string(),
            name,
            detail,
            passed,
        });
    };
    push(
        "lazy-cold-fingerprint",
        format!("lazy {} vs eager {}", lc.fingerprint, ec.fingerprint),
        lc.fingerprint == ec.fingerprint,
    );
    push(
        "lazy-warm-fingerprint",
        format!("lazy {} vs eager {}", lw.fingerprint, ew.fingerprint),
        lw.fingerprint == ew.fingerprint,
    );
    push(
        "lazy-cold-wall",
        format!(
            "lazy {:.3}s vs eager {:.3}s (tolerance x{tolerance})",
            lc.wall_secs, ec.wall_secs
        ),
        lc.wall_secs <= ec.wall_secs * tolerance,
    );
    push(
        "lazy-warm-wall",
        format!(
            "lazy {:.3}s vs eager {:.3}s (tolerance x{tolerance})",
            lw.wall_secs, ew.wall_secs
        ),
        lw.wall_secs <= ew.wall_secs * tolerance,
    );
    // Recorded per dataset, but aggregated in main: the strict win is
    // required on at least two datasets, not every one — tiny pools
    // leave lazy+warm neck-and-neck with eager rather than ahead.
    push(
        "lazy-warm-beats-eager-cold",
        format!(
            "lazy+warm {:.3}s vs eager+cold {:.3}s",
            lw.wall_secs, ec.wall_secs
        ),
        lw.wall_secs < ec.wall_secs,
    );
    for m in [ew, lw] {
        let ratio = train_flat_ratio(&m.train_secs_per_round);
        push(
            "warm-train-flat",
            format!("{}: late/early median train ratio {ratio:.3}", m.mode),
            ratio <= 1.10,
        );
    }
    checks
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.15f64;
    let mut out = String::from("BENCH_selection.json");
    let mut thread_counts = vec![1usize, 2, 4, 8];
    let mut mode_threads = 1usize;
    let mut lazy_topk: Option<usize> = None;
    // Wall-clock ceiling for the lazy modes relative to their eager
    // counterparts on datasets where lazy cannot win outright (strict
    // wins are separately required on at least two datasets); wide
    // enough that scheduler jitter does not flake the gate.
    let mut tolerance = 1.15f64;
    let mut gate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--threads-list" => {
                thread_counts = args
                    .get(i + 1)
                    .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
                    .filter(|v: &Vec<usize>| !v.is_empty() && !v.contains(&0))
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--mode-threads" => {
                mode_threads = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--lazy-topk" => {
                lazy_topk = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--tolerance" => {
                tolerance = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &f64| t >= 1.0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--gate" => {
                gate = true;
                i += 1;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let params = LoopParams {
        max_labels: 400,
        ..LoopParams::default()
    };
    // Mode comparison runs under a fixed label budget on a hold-out
    // split — the benchmark's framing: labels are the scarce resource,
    // so a run labels far fewer pairs than the pool holds and an eager
    // upfront extraction of every blocked pair is mostly wasted work.
    // (Progressive eval is not an option here: it scores the *entire*
    // pool every round, which forces a lazy corpus to materialize every
    // row in round one and erases the contrast under test.) The 10%
    // test split keeps eval honest while bounding how much of the lazy
    // corpus the evaluator alone drags into existence — eval cost is
    // orthogonal to the selection/training policies being gated. Every
    // mode does the same number of rounds (no F1 early-out), so the
    // per-round train series is comparable across modes.
    let mode_params = LoopParams::builder()
        .max_labels(90)
        .eval(EvalMode::Holdout { test_frac: 0.1 })
        .run_to_exhaustion()
        .build();
    let mut report = Report {
        bench: "selection_latency",
        scale,
        host_threads,
        thread_counts: thread_counts.clone(),
        mode_threads,
        lazy_topk,
        tolerance,
        datasets: Vec::new(),
        gate: GateReport {
            tolerance,
            checks: Vec::new(),
            passed: true,
        },
    };
    let mut all_identical = true;

    for d in [
        PaperDataset::AmazonGoogle,
        PaperDataset::Cora,
        PaperDataset::DblpScholar,
    ] {
        let cfg = d.config(scale);
        let ds = datagen::generate(&cfg, 42);
        let blocking = BlockingConfig {
            jaccard_threshold: cfg.blocking_threshold,
        };
        let (corpus, _fx) = Corpus::from_candidates_with(&ds, &blocking, &Parallelism::default())
            .expect("blocking config streams valid candidates");
        println!("{}: pairs={} dim={}", d.name(), corpus.len(), corpus.dim());
        let mut runs = Vec::new();
        let mut identical = true;

        // The thread sweep covers the two contrast datasets; DBLP-Scholar
        // rides along only for the lazy/warm mode contrast below (a third
        // pool-size regime for the gate).
        let sweep = !matches!(d, PaperDataset::DblpScholar);
        for si in 0..(if sweep { strategies().len() } else { 0 }) {
            let mut baseline: Option<String> = None;
            for &threads in &thread_counts {
                let (name, strat) = strategies().remove(si);
                let oracle = Oracle::perfect(corpus.truths().to_vec());
                let config = SessionConfig {
                    parallelism: Parallelism::fixed(threads),
                    ..SessionConfig::default()
                };
                let t0 = Instant::now();
                let r = ActiveLearner::new(strat, params.clone())
                    .run_session(&corpus, &oracle, 7, &config)
                    .unwrap_or_else(|e| panic!("bench run failed: {e}"))
                    .run_result()
                    .unwrap_or_else(|| panic!("bench session halted unexpectedly"));
                let wall = t0.elapsed().as_secs_f64();
                let select: f64 = r.iterations.iter().map(|it| it.selection_secs()).sum();
                let train: f64 = r.iterations.iter().map(|it| it.train_secs).sum();
                let fp = r.deterministic_fingerprint();
                match &baseline {
                    None => baseline = Some(fp.clone()),
                    Some(b) if *b != fp => {
                        identical = false;
                        eprintln!(
                            "FINGERPRINT DIVERGENCE: {} / {name} at {threads} threads",
                            d.name()
                        );
                    }
                    Some(_) => {}
                }
                println!(
                    "  {name:<16} threads={threads} select={select:.3}s train={train:.3}s wall={wall:.3}s"
                );
                runs.push(RunRow {
                    strategy: name.to_string(),
                    threads,
                    select_secs: select,
                    train_secs: train,
                    wall_secs: wall,
                    best_f1: r.best_f1(),
                    fingerprint: fp,
                });
            }
        }
        all_identical &= identical;

        // Phase-1 reads three quarters of the dims unless overridden:
        // warm-started Pegasos keeps many small nonzero weights, so the
        // unread-mass interval needs a large read set to stay tight
        // enough to prune; pruned pairs still skip a quarter of the
        // extraction cost, and pairs pruned every round never pay it.
        let topk = lazy_topk.unwrap_or_else(|| (corpus.dim() * 3 / 4).max(1));
        // Best of five end-to-end runs per mode, with the repeats
        // *interleaved* — the full mode sweep runs five times and each
        // mode keeps its fastest repeat. Consecutive repeats would bias
        // the contrast: thermal/load drift across the sweep lands
        // entirely on whichever modes run last, and the drift is the same
        // order as the lazy-vs-eager gap being gated. The first sweep
        // also absorbs first-touch warmup (page faults, allocator
        // growth); five samples keep the min-wall estimator stable on
        // the smallest dataset, whose gated gap is tens of milliseconds.
        let mut modes: Vec<ModeRow> = Vec::new();
        for rep in 0..5 {
            for (mi, (mode_name, lazy_corpus, strat)) in
                mode_strategies(topk).into_iter().enumerate()
            {
                let row = run_mode(
                    &ds,
                    &blocking,
                    mode_name,
                    lazy_corpus,
                    strat,
                    &mode_params,
                    mode_threads,
                );
                if rep == 0 {
                    modes.push(row);
                } else if row.wall_secs < modes[mi].wall_secs {
                    modes[mi] = row;
                }
            }
        }
        for row in &modes {
            println!(
                "  {:<14} wall={:.3}s (build {:.3}s) train={:.3}s \
                 scored={} pruned={} {:.0} pairs/s",
                row.mode,
                row.wall_secs,
                row.build_secs,
                row.train_secs,
                row.pairs_scored,
                row.phase1_only,
                row.pairs_per_sec_scored,
            );
        }
        report
            .gate
            .checks
            .extend(gate_checks(d.name(), &modes, tolerance));

        report.datasets.push(DatasetReport {
            dataset: d.name().to_string(),
            pairs: corpus.len(),
            dims: corpus.dim(),
            runs,
            fingerprints_identical: identical,
            lazy_topk: topk,
            modes,
        });
    }

    // Aggregate: every fingerprint/tolerance/flatness check is a hard
    // requirement; the strict lazy-warm-vs-eager-cold win must hold on at
    // least two datasets (acceptance: "beats eager on ≥2 smoke
    // datasets").
    const BEATS: &str = "lazy-warm-beats-eager-cold";
    let beats: Vec<bool> = report
        .gate
        .checks
        .iter()
        .filter(|c| c.name == BEATS)
        .map(|c| c.passed)
        .collect();
    let beats_won = beats.iter().filter(|&&p| p).count();
    let beats_needed = beats.len().min(2);
    report.gate.checks.push(GateCheck {
        dataset: "*".to_string(),
        name: "lazy-warm-beats-eager-cold-on-2",
        detail: format!("strict win on {beats_won}/{} datasets", beats.len()),
        passed: beats_won >= beats_needed,
    });
    report.gate.passed = report
        .gate
        .checks
        .iter()
        .all(|c| c.passed || c.name == BEATS);
    for c in report.gate.checks.iter().filter(|c| !c.passed) {
        let gating = if c.name == BEATS { "note" } else { "FAIL" };
        eprintln!("GATE {gating} [{}] {}: {}", c.dataset, c.name, c.detail);
    }

    let js = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, js).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "wrote {out} (host_threads={host_threads}, gate {})",
        if report.gate.passed { "PASS" } else { "FAIL" }
    );
    if !all_identical {
        eprintln!("bench_selection: fingerprints diverged across thread counts");
        std::process::exit(1);
    }
    if gate && !report.gate.passed {
        eprintln!("bench_selection: lazy/warm perf gate failed");
        std::process::exit(1);
    }
}
