//! Selection-latency benchmark across thread counts (§6.3 systems axis).
//!
//! Usage: `bench_selection [--scale S] [--threads-list 1,2,4,8] [--out FILE]`
//!
//! Runs a committee-heavy and a scoring-heavy strategy on the smoke
//! datasets at each thread count, records per-phase latency from the run's
//! own iteration clocks, and writes `BENCH_selection.json`. Every run's
//! `deterministic_fingerprint` is captured and cross-checked: a thread
//! count may only change wall-clock numbers, never results, and the
//! process exits non-zero if any fingerprint diverges. Timings are
//! whatever this machine actually measured — on a single-core host the
//! thread counts will (honestly) tie.

use alem_core::blocking::BlockingConfig;
use alem_core::corpus::Corpus;
use alem_core::learner::SvmTrainer;
use alem_core::loop_::{ActiveLearner, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::session::SessionConfig;
use alem_core::strategy::{MarginSvmStrategy, QbcStrategy, Strategy, TreeQbcStrategy};
use alem_par::Parallelism;
use datagen::PaperDataset;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    scale: f64,
    host_threads: usize,
    thread_counts: Vec<usize>,
    datasets: Vec<DatasetReport>,
}

#[derive(Serialize)]
struct DatasetReport {
    dataset: String,
    pairs: usize,
    dims: usize,
    runs: Vec<RunRow>,
    /// True iff, per strategy, every thread count produced the same
    /// `deterministic_fingerprint` — the layer's core contract.
    fingerprints_identical: bool,
}

#[derive(Serialize)]
struct RunRow {
    strategy: String,
    threads: usize,
    select_secs: f64,
    train_secs: f64,
    wall_secs: f64,
    best_f1: f64,
    fingerprint: String,
}

fn usage() -> ! {
    eprintln!("usage: bench_selection [--scale S] [--threads-list 1,2,4,8] [--out FILE]");
    std::process::exit(2);
}

fn strategies() -> Vec<(&'static str, Box<dyn Strategy + Send>)> {
    vec![
        (
            "Trees(20)",
            Box::new(TreeQbcStrategy::builder().trees(20).build()),
        ),
        (
            "QBC-SVM(10)",
            Box::new(
                QbcStrategy::builder(SvmTrainer::default())
                    .committee_size(10)
                    .build(),
            ),
        ),
        (
            "Linear-Margin",
            Box::new(MarginSvmStrategy::builder().build()),
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.15f64;
    let mut out = String::from("BENCH_selection.json");
    let mut thread_counts = vec![1usize, 2, 4, 8];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--threads-list" => {
                thread_counts = args
                    .get(i + 1)
                    .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
                    .filter(|v: &Vec<usize>| !v.is_empty() && !v.contains(&0))
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let params = LoopParams {
        max_labels: 400,
        ..LoopParams::default()
    };
    let mut report = Report {
        bench: "selection_latency",
        scale,
        host_threads,
        thread_counts: thread_counts.clone(),
        datasets: Vec::new(),
    };
    let mut all_identical = true;

    for d in [PaperDataset::AmazonGoogle, PaperDataset::Cora] {
        let cfg = d.config(scale);
        let ds = datagen::generate(&cfg, 42);
        let (corpus, _fx) = Corpus::from_dataset_with(
            &ds,
            &BlockingConfig {
                jaccard_threshold: cfg.blocking_threshold,
            },
            &Parallelism::default(),
        );
        println!("{}: pairs={} dim={}", d.name(), corpus.len(), corpus.dim());
        let mut runs = Vec::new();
        let mut identical = true;

        for si in 0..strategies().len() {
            let mut baseline: Option<String> = None;
            for &threads in &thread_counts {
                let (name, strat) = strategies().remove(si);
                let oracle = Oracle::perfect(corpus.truths().to_vec());
                let config = SessionConfig {
                    parallelism: Parallelism::fixed(threads),
                    ..SessionConfig::default()
                };
                let t0 = Instant::now();
                let r = ActiveLearner::new(strat, params.clone())
                    .run_session(&corpus, &oracle, 7, &config)
                    .unwrap_or_else(|e| panic!("bench run failed: {e}"))
                    .run_result()
                    .unwrap_or_else(|| panic!("bench session halted unexpectedly"));
                let wall = t0.elapsed().as_secs_f64();
                let select: f64 = r.iterations.iter().map(|it| it.selection_secs()).sum();
                let train: f64 = r.iterations.iter().map(|it| it.train_secs).sum();
                let fp = r.deterministic_fingerprint();
                match &baseline {
                    None => baseline = Some(fp.clone()),
                    Some(b) if *b != fp => {
                        identical = false;
                        eprintln!(
                            "FINGERPRINT DIVERGENCE: {} / {name} at {threads} threads",
                            d.name()
                        );
                    }
                    Some(_) => {}
                }
                println!(
                    "  {name:<16} threads={threads} select={select:.3}s train={train:.3}s wall={wall:.3}s"
                );
                runs.push(RunRow {
                    strategy: name.to_string(),
                    threads,
                    select_secs: select,
                    train_secs: train,
                    wall_secs: wall,
                    best_f1: r.best_f1(),
                    fingerprint: fp,
                });
            }
        }
        all_identical &= identical;
        report.datasets.push(DatasetReport {
            dataset: d.name().to_string(),
            pairs: corpus.len(),
            dims: corpus.dim(),
            runs,
            fingerprints_identical: identical,
        });
    }

    let js = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, js).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out} (host_threads={host_threads})");
    if !all_identical {
        eprintln!("bench_selection: fingerprints diverged across thread counts");
        std::process::exit(1);
    }
}
