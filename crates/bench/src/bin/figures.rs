//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! figures <experiment> [--scale S] [--seeds N] [--json PATH] [--points K]
//!
//! experiments:
//!   table1 table2 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//!   fig17 fig18 fig19 rules-abtbuy fault-sweep latency-breakdown ablations all
//! ```
//!
//! `--scale` sets the synthetic corpus scale (default 0.25; 1.0 ≈ paper
//! sizes). `--json` additionally dumps the raw series for EXPERIMENTS.md.

use alem_bench::experiments::{self, ExpConfig};
use alem_core::report::{Figure, TableReport};
use serde::Serialize;
use std::time::Instant;

#[derive(Default, Serialize)]
struct Dump {
    figures: Vec<Figure>,
    tables: Vec<TableReport>,
    listings: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: figures <experiment> [--scale S] [--seeds N] [--json PATH] [--points K]\n\
         experiments: table1 table2 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15\n\
         \x20           fig16 fig17 fig18 fig19 rules-abtbuy fault-sweep latency-breakdown\n\
         \x20           ablations all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut json_path: Option<String> = None;
    let mut points = 12usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seeds" => {
                cfg.noise_seeds = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--points" => {
                points = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let mut dump = Dump::default();
    let t0 = Instant::now();
    run_experiment(&experiment, cfg, &mut dump, points);
    eprintln!("[figures] {experiment} done in {:?}", t0.elapsed());

    if let Some(path) = json_path {
        let js = serde_json::to_string_pretty(&dump).expect("serialize dump");
        std::fs::write(&path, js).expect("write json dump");
        eprintln!("[figures] raw series written to {path}");
    }
}

/// Write a table as CSV (for downstream plotting of robustness sweeps).
fn write_csv(path: &str, t: &TableReport) {
    let mut out = String::new();
    out.push_str(&t.header.join(","));
    out.push('\n');
    for row in &t.rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, out) {
        Ok(()) => eprintln!("[figures] csv rows written to {path}"),
        Err(e) => eprintln!("[figures] failed to write {path}: {e}"),
    }
}

fn emit_figures(figs: Vec<Figure>, dump: &mut Dump, points: usize) {
    for f in figs {
        println!("{}", f.to_text(points));
        dump.figures.push(f);
    }
}

fn emit_table(t: TableReport, dump: &mut Dump) {
    println!("{}", t.to_text());
    dump.tables.push(t);
}

fn run_experiment(name: &str, cfg: ExpConfig, dump: &mut Dump, points: usize) {
    match name {
        "table1" => emit_table(experiments::table1(cfg), dump),
        "table2" => emit_table(experiments::table2(cfg), dump),
        "fig8" => emit_figures(experiments::fig8(cfg), dump, points),
        "fig9" => emit_figures(experiments::fig9(cfg), dump, points),
        "fig10" => emit_figures(experiments::fig10(cfg), dump, points),
        "fig11" => emit_figures(experiments::fig11(cfg), dump, points),
        "fig12" | "fig13" => {
            let (f12, f13) = experiments::fig12_13(cfg);
            if name == "fig12" {
                emit_figures(f12, dump, points);
            } else {
                emit_figures(f13, dump, points);
            }
        }
        "fig12_13" => {
            let (f12, f13) = experiments::fig12_13(cfg);
            emit_figures(f12, dump, points);
            emit_figures(f13, dump, points);
        }
        "fig14" => emit_figures(experiments::fig14(cfg), dump, points),
        "fig15" => emit_figures(experiments::fig15(cfg), dump, points),
        "fig16" => emit_figures(experiments::fig16(cfg), dump, points),
        "fig17" => emit_figures(experiments::fig17(cfg), dump, points),
        "fig18" => emit_figures(experiments::fig18(cfg), dump, points),
        "fig19" => emit_table(experiments::fig19(cfg), dump),
        "ext-ensemble-nn" => emit_figures(experiments::ext_ensemble_nn(cfg), dump, points),
        "ext-lsh" => emit_figures(experiments::ext_lsh(cfg), dump, points),
        "ext-iwal" => emit_figures(experiments::ext_iwal(cfg), dump, points),
        "ext-voting" => emit_figures(vec![experiments::ext_voting(cfg)], dump, points),
        "extensions" => {
            emit_figures(experiments::ext_ensemble_nn(cfg), dump, points);
            emit_figures(experiments::ext_lsh(cfg), dump, points);
            emit_figures(experiments::ext_iwal(cfg), dump, points);
            emit_figures(vec![experiments::ext_voting(cfg)], dump, points);
        }
        "fault-sweep" => {
            let t = experiments::fault_sweep(cfg);
            write_csv("results/fault_sweep.csv", &t);
            emit_table(t, dump);
        }
        "latency-breakdown" => {
            let t = experiments::latency_breakdown(cfg);
            write_csv("results/latency_breakdown.csv", &t);
            emit_table(t, dump);
        }
        "ablation-tau" => emit_table(experiments::ablation_tau(cfg), dump),
        "ablation-batch" => emit_table(experiments::ablation_batch(cfg), dump),
        "ablation-features" => emit_table(experiments::ablation_feature_subset(cfg), dump),
        "ablations" => {
            emit_table(experiments::ablation_tau(cfg), dump);
            emit_table(experiments::ablation_batch(cfg), dump);
            emit_table(experiments::ablation_feature_subset(cfg), dump);
        }
        "rules-abtbuy" => {
            let listing = experiments::rules_listing(cfg);
            println!("{listing}");
            dump.listings.push(listing);
        }
        "all" => {
            for exp in [
                "table1",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12_13",
                "table2",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "rules-abtbuy",
                "fig19",
                "fault-sweep",
            ] {
                let t = Instant::now();
                run_experiment(exp, cfg, dump, points);
                eprintln!("[figures] {exp} finished in {:?}", t.elapsed());
            }
        }
        _ => usage(),
    }
}
