//! Calibration smoke test: quick per-dataset strategy comparison.
//!
//! Usage: `smoke [scale]` — runs a representative strategy set on
//! Amazon-GoogleProducts and Cora and prints best/final progressive F1 so
//! generator difficulty can be compared against the paper's Table 2.

use alem_core::blocking::BlockingConfig;
use alem_core::corpus::Corpus;
use alem_core::ensemble::EnsembleSvmStrategy;
use alem_core::learner::{DnfTrainer, NnTrainer, SvmTrainer};
use alem_core::loop_::{ActiveLearner, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::strategy::*;
use datagen::PaperDataset;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    for d in [PaperDataset::AmazonGoogle, PaperDataset::Cora] {
        let cfg = d.config(scale);
        let t0 = Instant::now();
        let ds = datagen::generate(&cfg, 42);
        let (corpus, _fx) = Corpus::from_dataset(
            &ds,
            &BlockingConfig {
                jaccard_threshold: cfg.blocking_threshold,
            },
        );
        println!(
            "{}: pairs={} skew={:.3} dim={} prep={:?}",
            d.name(),
            corpus.len(),
            corpus.skew(),
            corpus.dim(),
            t0.elapsed()
        );
        let params = LoopParams {
            max_labels: 800,
            ..LoopParams::default()
        };

        macro_rules! run {
            ($name:expr, $strat:expr) => {{
                let t = Instant::now();
                let oracle = Oracle::perfect(corpus.truths().to_vec());
                let mut al = ActiveLearner::new($strat, params.clone());
                let r = al
                    .run(&corpus, &oracle, 7)
                    .unwrap_or_else(|e| panic!("smoke run failed: {e}"));
                println!(
                    "  {:<28} best_f1={:.3} final={:.3} labels={} wall={:?}",
                    $name,
                    r.best_f1(),
                    r.final_f1(),
                    r.total_labels(),
                    t.elapsed()
                );
            }};
        }
        run!("Trees(20)", TreeQbcStrategy::new(20));
        run!(
            "Linear-Margin",
            MarginSvmStrategy::new(SvmTrainer::default())
        );
        run!(
            "Linear-Margin(Ensemble)",
            EnsembleSvmStrategy::new(SvmTrainer::default(), 0.85)
        );
        run!("NN-Margin", MarginNnStrategy::new(NnTrainer::default()));
        run!(
            "Rules(LFP/LFN)",
            LfpLfnStrategy::new(DnfTrainer::default(), 0.85)
        );
    }
}
