//! Calibration smoke test: quick per-dataset strategy comparison.
//!
//! Usage: `smoke [scale] [--metrics-out FILE.jsonl] [--fingerprints]
//! [--threads N]` — runs a representative strategy set on
//! Amazon-GoogleProducts and Cora and prints best/final progressive F1 so
//! generator difficulty can be compared against the paper's Table 2. With
//! `--metrics-out` the runs are driven with an enabled telemetry registry
//! and every span/counter event is written as JSONL (the CI
//! telemetry-validation step). With `--fingerprints` each run also prints
//! its `RunResult::deterministic_fingerprint`, so two builds — or the same
//! build at different `--threads` values, which must agree byte-for-byte —
//! can be compared for bit-identical labeling/modeling decisions.

use alem_core::blocking::BlockingConfig;
use alem_core::corpus::Corpus;
use alem_core::ensemble::EnsembleSvmStrategy;
use alem_core::learner::{DnfTrainer, NnTrainer, SvmTrainer};
use alem_core::loop_::{ActiveLearner, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::session::SessionConfig;
use alem_core::strategy::*;
use alem_obs::Registry;
use datagen::PaperDataset;
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_out: Option<String> = None;
    let mut fingerprints = false;
    let mut scale = 0.25f64;
    let mut parallelism = alem_par::Parallelism::default();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--fingerprints" {
            fingerprints = true;
            i += 1;
        } else if args[i] == "--threads" {
            let n = args
                .get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                });
            parallelism = alem_par::Parallelism::fixed(n);
            i += 2;
        } else if args[i] == "--metrics-out" {
            metrics_out = args.get(i + 1).cloned();
            if metrics_out.is_none() {
                eprintln!("--metrics-out needs a file path");
                std::process::exit(2);
            }
            i += 2;
        } else {
            if let Ok(s) = args[i].parse() {
                scale = s;
            }
            i += 1;
        }
    }
    let obs = if metrics_out.is_some() {
        Registry::enabled()
    } else {
        Registry::disabled()
    };
    obs.set_run_id("smoke");
    for d in [PaperDataset::AmazonGoogle, PaperDataset::Cora] {
        let cfg = d.config(scale);
        let t0 = Instant::now();
        let ds = datagen::generate(&cfg, 42);
        let (corpus, _fx) = Corpus::from_candidates_with(
            &ds,
            &BlockingConfig {
                jaccard_threshold: cfg.blocking_threshold,
            },
            &parallelism,
        )
        .expect("blocking config streams valid candidates");
        println!(
            "{}: pairs={} skew={:.3} dim={} prep={:?}",
            d.name(),
            corpus.len(),
            corpus.skew(),
            corpus.dim(),
            t0.elapsed()
        );
        let params = LoopParams {
            max_labels: 800,
            ..LoopParams::default()
        };

        macro_rules! run {
            ($name:expr, $strat:expr) => {{
                let t = Instant::now();
                let oracle = Oracle::perfect(corpus.truths().to_vec());
                let mut al = ActiveLearner::new($strat, params.clone());
                let config = SessionConfig {
                    obs: obs.clone(),
                    parallelism,
                    ..SessionConfig::default()
                };
                let r = al
                    .run_session(&corpus, &oracle, 7, &config)
                    .unwrap_or_else(|e| panic!("smoke run failed: {e}"))
                    .run_result()
                    .unwrap_or_else(|| panic!("smoke session halted unexpectedly"));
                println!(
                    "  {:<28} best_f1={:.3} final={:.3} labels={} wall={:?}",
                    $name,
                    r.best_f1(),
                    r.final_f1(),
                    r.total_labels(),
                    t.elapsed()
                );
                if fingerprints {
                    println!("  fingerprint {}", r.deterministic_fingerprint());
                }
            }};
        }
        run!("Trees(20)", TreeQbcStrategy::new(20));
        run!(
            "Linear-Margin",
            MarginSvmStrategy::new(SvmTrainer::default())
        );
        run!(
            "Linear-Margin(Ensemble)",
            EnsembleSvmStrategy::new(SvmTrainer::default(), 0.85)
        );
        run!("NN-Margin", MarginNnStrategy::new(NnTrainer::default()));
        run!(
            "Rules(LFP/LFN)",
            LfpLfnStrategy::new(DnfTrainer::default(), 0.85)
        );
    }

    if let Some(path) = metrics_out {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}")),
        );
        obs.write_jsonl(&mut f)
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        f.flush()
            .unwrap_or_else(|e| panic!("cannot flush {path}: {e}"));
        eprintln!("[smoke] telemetry events written to {path}");
    }
}
