//! Corpus construction for the benchmark harness: generate a synthetic
//! dataset, block it, and featurize the candidate pairs in parallel.

use alem_core::blocking::{stats, BlockingConfig, BlockingStats};
use alem_core::corpus::Corpus;
use alem_core::features::FeatureExtractor;
use alem_core::schema::EmDataset;
use datagen::PaperDataset;

/// Fixed generation seed so every experiment sees the same corpora.
pub const DATA_SEED: u64 = 20200614; // SIGMOD'20 opening day

/// A fully prepared benchmark corpus.
pub struct PreparedData {
    /// The featurized post-blocking pair universe.
    pub corpus: Corpus,
    /// The extractor (for feature descriptions in interpretability output).
    pub extractor: FeatureExtractor,
    /// Blocking statistics (Table 1 row).
    pub stats: BlockingStats,
}

/// Featurize `pairs` across the machine's cores (rows merge in pair
/// order, so the output is identical to a sequential extraction).
fn extract_parallel(fx: &FeatureExtractor, pairs: &[alem_core::schema::Pair]) -> Vec<Vec<f64>> {
    fx.extract_all_with(pairs, &alem_par::Parallelism::default())
}

/// Build a corpus for a generated dataset with its configured blocking
/// threshold.
pub fn prepare_dataset(ds: &EmDataset, blocking_threshold: f64) -> PreparedData {
    let blocking = BlockingConfig {
        jaccard_threshold: blocking_threshold,
    };
    let pairs = blocking.block(ds);
    let fx = FeatureExtractor::new(ds);
    let features = extract_parallel(&fx, &pairs);
    let bools = fx.booleanize_all(&features);
    let truth: Vec<bool> = pairs.iter().map(|&p| ds.is_match(p)).collect();
    let blocking_stats = stats(ds, &pairs);
    let corpus = Corpus::from_features(features, truth).with_bool_features(bools);
    // Preserve the dataset name lost by `from_features`.
    let corpus = corpus.with_name(&ds.name);
    PreparedData {
        corpus,
        extractor: fx,
        stats: blocking_stats,
    }
}

/// Generate + prepare one paper dataset at `scale`.
pub fn prepare(dataset: PaperDataset, scale: f64) -> PreparedData {
    let cfg = dataset.config(scale);
    let ds = datagen::generate(&cfg, DATA_SEED);
    prepare_dataset(&ds, cfg.blocking_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_dataset() {
        let p = prepare(PaperDataset::Beer, 1.0);
        assert!(p.corpus.len() > 50);
        assert_eq!(p.corpus.dim(), 4 * 21);
        assert!(p.corpus.bool_features().is_some());
        assert_eq!(p.stats.post_blocking_pairs, p.corpus.len());
        assert_eq!(p.corpus.name(), "BeerAdvocate-RateBeer");
    }

    #[test]
    fn parallel_extraction_matches_serial() {
        let cfg = PaperDataset::DblpAcm.config(0.05);
        let ds = datagen::generate(&cfg, 1);
        let blocking = BlockingConfig {
            jaccard_threshold: cfg.blocking_threshold,
        };
        let pairs = blocking.block(&ds);
        let fx = FeatureExtractor::new(&ds);
        let serial = fx.extract_all(&pairs);
        let parallel = extract_parallel(&fx, &pairs);
        assert_eq!(serial, parallel);
    }
}
