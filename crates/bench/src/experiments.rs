//! One function per paper table/figure, producing the same rows/series the
//! paper plots (see DESIGN.md §4 for the experiment index).

use crate::data::prepare;
use crate::runner::{paper_params, run_noisy, run_parallel, run_perfect, RUN_SEED};
use alem_core::corpus::Corpus;
use alem_core::ensemble::EnsembleSvmStrategy;
use alem_core::evaluator::RunResult;
use alem_core::learner::{DnfTrainer, ForestTrainer, NnTrainer, SvmTrainer};
use alem_core::loop_::{ActiveLearner, EvalMode, LoopParams};
use alem_core::oracle::{Oracle, RetryPolicy, TransientOracle};
use alem_core::report::{Figure, Series, TableReport};
use alem_core::session::SessionConfig;
use alem_core::strategy::{
    IwalSvmStrategy, LfpLfnStrategy, LshMarginStrategy, MarginNnStrategy, MarginSvmStrategy,
    QbcStrategy, RandomStrategy, Strategy, TreeQbcStrategy,
};
use datagen::PaperDataset;
use mlcore::nn::NnConfig;
use mlcore::rules::Dnf;

/// The acceptance precision for active ensembles and rules (§5.2, §6.3).
const TAU: f64 = 0.85;
/// A rule is "valid" if its hidden precision reaches this bar (§6.3).
const VALID_RULE_PRECISION: f64 = 0.88;
/// The paper's label cap for the perfect-Oracle comparisons (Figs. 8–13).
const PAPER_MAX_LABELS: usize = 2360;

/// Harness-wide experiment settings.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Corpus scale (1.0 ≈ paper sizes).
    pub scale: f64,
    /// Seeds averaged for noisy-Oracle and DeepMatcher-proxy runs.
    pub noise_seeds: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.25,
            noise_seeds: 5,
        }
    }
}

/// A strategy blueprint buildable inside worker threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spec {
    /// `Trees(n)`: forest + learner-aware QBC.
    TreeQbc(usize),
    /// `Linear-QBC(b)`.
    QbcSvm(usize),
    /// `Non-Convex Non-Linear-QBC(b)`.
    QbcNn(usize),
    /// `Linear-Margin` over all dimensions.
    MarginSvm,
    /// `Linear-Margin(kDim)` with blocking dimensions.
    MarginSvmBlocking(usize),
    /// `NN-Margin`.
    MarginNn,
    /// `Linear-Margin(Ensemble)` with τ = 0.85.
    EnsembleSvm,
    /// `Rules(LFP/LFN)`.
    Rules,
    /// `Non-Convex Non-Linear-Margin(Ensemble)` — the §5.2 extension to
    /// neural networks.
    EnsembleNn,
    /// `Linear-Margin(LSHb)` — Jain et al. hyperplane hashing baseline.
    LshMargin(usize),
    /// `Linear-IWAL` — importance-weighted active learning baseline.
    Iwal,
    /// `SupervisedTrees(Random-n)`.
    SupervisedTrees(usize),
    /// DeepMatcher proxy: wide NN, random selection, 3:1 train/validation.
    DeepMatcherProxy,
}

impl Spec {
    /// Instantiate the strategy.
    pub fn build(self) -> Box<dyn Strategy + Send> {
        match self {
            Spec::TreeQbc(n) => Box::new(TreeQbcStrategy::new(n)),
            Spec::QbcSvm(b) => Box::new(QbcStrategy::new(SvmTrainer::default(), b)),
            Spec::QbcNn(b) => Box::new(QbcStrategy::new(NnTrainer::default(), b)),
            Spec::MarginSvm => Box::new(MarginSvmStrategy::new(SvmTrainer::default())),
            Spec::MarginSvmBlocking(k) => {
                Box::new(MarginSvmStrategy::builder().blocking_dims(k).build())
            }
            Spec::MarginNn => Box::new(MarginNnStrategy::new(NnTrainer::default())),
            Spec::EnsembleSvm => Box::new(EnsembleSvmStrategy::new(SvmTrainer::default(), TAU)),
            Spec::EnsembleNn => Box::new(alem_core::ensemble::ActiveEnsembleStrategy::new(
                NnTrainer::default(),
                TAU,
            )),
            Spec::LshMargin(bits) => {
                Box::new(LshMarginStrategy::new(SvmTrainer::default(), bits, 4))
            }
            Spec::Iwal => Box::new(IwalSvmStrategy::new(
                mlcore::svm::SvmConfig::default(),
                alem_core::selector::iwal::IwalConfig::default(),
            )),
            Spec::Rules => Box::new(LfpLfnStrategy::new(DnfTrainer::default(), TAU)),
            Spec::SupervisedTrees(n) => Box::new(RandomStrategy::new(
                ForestTrainer::with_trees(n),
                &format!("SupervisedTrees(Random-{n})"),
            )),
            Spec::DeepMatcherProxy => Box::new(
                RandomStrategy::builder(
                    NnTrainer(NnConfig {
                        hidden: 64,
                        ..NnConfig::default()
                    }),
                    "DeepMatcher",
                )
                .train_frac(0.75)
                .build(),
            ),
        }
    }
}

/// Run several specs on one corpus in parallel (perfect Oracle,
/// progressive evaluation).
fn run_specs(corpus: &Corpus, specs: &[Spec], max_labels: usize) -> Vec<RunResult> {
    let jobs: Vec<_> = specs
        .iter()
        .map(|&spec| {
            move || {
                let params = paper_params(corpus, max_labels);
                run_perfect(corpus, spec.build(), params, RUN_SEED)
            }
        })
        .collect();
    run_parallel(jobs)
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: dataset statistics (ours vs the paper's reported values).
pub fn table1(cfg: ExpConfig) -> TableReport {
    let rows = run_parallel(
        datagen::configs::ALL_DATASETS
            .iter()
            .map(|&d| {
                move || {
                    let p = prepare(d, cfg.scale);
                    vec![
                        d.name().to_owned(),
                        format!("{}", p.stats.total_pairs),
                        format!("{}", p.stats.post_blocking_pairs),
                        format!("{:.3}", p.stats.class_skew),
                        format!("{}", d.paper_post_blocking()),
                        format!("{:.3}", d.paper_skew()),
                    ]
                }
            })
            .collect(),
    );
    TableReport {
        id: "table1".into(),
        title: format!("Synthetic EM dataset statistics (scale {})", cfg.scale),
        header: vec![
            "Dataset".into(),
            "#Total Pairs".into(),
            "#Post-Blocking".into(),
            "Skew".into(),
            "Paper #Post-Blocking".into(),
            "Paper Skew".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figs. 8 & 9 — QBC vs margin per classifier family
// ---------------------------------------------------------------------------

/// Shared implementation of Figs. 8 and 9.
fn qbc_vs_margin(fig: &str, dataset: PaperDataset, cfg: ExpConfig) -> Vec<Figure> {
    let p = prepare(dataset, cfg.scale);
    let name = dataset.name();
    let nn = run_specs(
        &p.corpus,
        &[Spec::QbcNn(2), Spec::MarginNn],
        PAPER_MAX_LABELS,
    );
    let linear = run_specs(
        &p.corpus,
        &[Spec::QbcSvm(2), Spec::QbcSvm(20), Spec::MarginSvm],
        PAPER_MAX_LABELS,
    );
    let trees = run_specs(
        &p.corpus,
        &[Spec::TreeQbc(2), Spec::TreeQbc(10), Spec::TreeQbc(20)],
        PAPER_MAX_LABELS,
    );
    let mk = |suffix: &str, title: &str, runs: &[RunResult]| Figure {
        id: format!("{fig}{suffix}"),
        title: format!("{title} ({name})"),
        x_label: "#Labeled Examples".into(),
        y_label: "Progressive F1".into(),
        series: runs.iter().map(Series::f1_curve).collect(),
    };
    vec![
        mk("a", "QBC vs Margin, Non-Convex Non-Linear", &nn),
        mk("b", "QBC vs Margin, Linear Classifier", &linear),
        mk("c", "Learner-aware QBC, Tree-based Classifier", &trees),
    ]
}

/// Fig. 8: QBC vs margin on Abt-Buy.
pub fn fig8(cfg: ExpConfig) -> Vec<Figure> {
    qbc_vs_margin("fig8", PaperDataset::AbtBuy, cfg)
}

/// Fig. 9: QBC vs margin on Cora.
pub fn fig9(cfg: ExpConfig) -> Vec<Figure> {
    qbc_vs_margin("fig9", PaperDataset::Cora, cfg)
}

// ---------------------------------------------------------------------------
// Fig. 10 — example-selection latency decomposition (Cora)
// ---------------------------------------------------------------------------

/// Fig. 10: committee-creation vs example-scoring times on Cora, plus the
/// effect of blocking and active ensembles on selection time.
pub fn fig10(cfg: ExpConfig) -> Vec<Figure> {
    let p = prepare(PaperDataset::Cora, cfg.scale);
    let corpus = &p.corpus;
    let all_dims = corpus.dim();

    let nn = run_specs(corpus, &[Spec::QbcNn(2), Spec::MarginNn], PAPER_MAX_LABELS);
    let linear = run_specs(
        corpus,
        &[Spec::QbcSvm(2), Spec::QbcSvm(20), Spec::MarginSvm],
        PAPER_MAX_LABELS,
    );
    let trees = run_specs(
        corpus,
        &[Spec::TreeQbc(2), Spec::TreeQbc(10), Spec::TreeQbc(20)],
        PAPER_MAX_LABELS,
    );
    let enhanced = run_specs(
        corpus,
        &[
            Spec::MarginSvmBlocking(1),
            Spec::MarginSvmBlocking(all_dims),
            Spec::EnsembleSvm,
        ],
        PAPER_MAX_LABELS,
    );

    let mut fig_a = Figure {
        id: "fig10a".into(),
        title: "Selection time split, Non-Convex Non-Linear (Cora)".into(),
        x_label: "#Labeled Examples".into(),
        y_label: "secs".into(),
        series: vec![
            Series::committee_time_curve(&nn[0]),
            Series::scoring_time_curve(&nn[0]),
            Series::scoring_time_curve(&nn[1]),
        ],
    };
    fig_a.series[2].label = "scoreMargin".into();

    let mut fig_b = Figure {
        id: "fig10b".into(),
        title: "Selection time split, Linear Classifier (Cora)".into(),
        x_label: "#Labeled Examples".into(),
        y_label: "secs".into(),
        series: vec![
            Series::committee_time_curve(&linear[0]),
            Series::committee_time_curve(&linear[1]),
            Series::scoring_time_curve(&linear[0]),
            Series::scoring_time_curve(&linear[1]),
            Series::scoring_time_curve(&linear[2]),
        ],
    };
    fig_b.series[4].label = format!("scoreMargin({all_dims}Dim)");

    let fig_c = Figure {
        id: "fig10c".into(),
        title: "Example scoring time, Tree-based Classifier (Cora)".into(),
        x_label: "#Labeled Examples".into(),
        y_label: "secs".into(),
        series: trees.iter().map(Series::scoring_time_curve).collect(),
    };

    let fig_d = Figure {
        id: "fig10d".into(),
        title: "Effect of Blocking and Ensemble on Linear Classifier (Cora)".into(),
        x_label: "#Labeled Examples".into(),
        y_label: "secs".into(),
        series: enhanced.iter().map(Series::scoring_time_curve).collect(),
    };

    vec![fig_a, fig_b, fig_c, fig_d]
}

// ---------------------------------------------------------------------------
// Fig. 11 — blocking & active ensembles, progressive F1
// ---------------------------------------------------------------------------

/// The five perfect-Oracle datasets of §6.1.
pub const FIVE_DATASETS: [PaperDataset; 5] = [
    PaperDataset::AbtBuy,
    PaperDataset::AmazonGoogle,
    PaperDataset::DblpAcm,
    PaperDataset::DblpScholar,
    PaperDataset::Cora,
];

/// Fig. 11: blocking dimensions and active ensembles vs vanilla margin on
/// linear classifiers, per dataset.
pub fn fig11(cfg: ExpConfig) -> Vec<Figure> {
    let subfigs = "abcde".chars();
    FIVE_DATASETS
        .iter()
        .zip(subfigs)
        .map(|(&d, sub)| {
            let p = prepare(d, cfg.scale);
            let all_dims = p.corpus.dim();
            let runs = run_specs(
                &p.corpus,
                &[
                    Spec::MarginSvmBlocking(1),
                    Spec::MarginSvmBlocking(all_dims),
                    Spec::EnsembleSvm,
                ],
                PAPER_MAX_LABELS,
            );
            let accepted = runs[2]
                .iterations
                .last()
                .and_then(|s| s.accepted_models)
                .unwrap_or(0);
            let mut fig = Figure {
                id: format!("fig11{sub}"),
                title: format!(
                    "Effect of Blocking and Ensemble on Linear Classifier ({}), #AcceptedSVMs={accepted}",
                    d.name()
                ),
                x_label: "#Labeled Examples".into(),
                y_label: "Progressive F1".into(),
                series: runs.iter().map(Series::f1_curve).collect(),
            };
            fig.series[2].label = format!("Linear-Margin(Ensemble), #AcceptedSVMs={accepted}");
            fig
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figs. 12 & 13 — best variant per classifier family
// ---------------------------------------------------------------------------

/// The best selector per classifier family per dataset, as identified by
/// the paper's Figs. 12–13.
fn best_variants(d: PaperDataset) -> Vec<Spec> {
    let nn = if d == PaperDataset::Cora {
        Spec::QbcNn(2)
    } else {
        Spec::MarginNn
    };
    let linear = match d {
        PaperDataset::AmazonGoogle | PaperDataset::DblpScholar => Spec::MarginSvmBlocking(1),
        _ => Spec::EnsembleSvm,
    };
    vec![nn, linear, Spec::TreeQbc(20), Spec::Rules]
}

/// Figs. 12 (progressive F1) and 13 (user wait time) from the same runs.
pub fn fig12_13(cfg: ExpConfig) -> (Vec<Figure>, Vec<Figure>) {
    let mut f12 = Vec::new();
    let mut f13 = Vec::new();
    for (&d, sub) in FIVE_DATASETS.iter().zip("abcde".chars()) {
        let p = prepare(d, cfg.scale);
        let runs = run_specs(&p.corpus, &best_variants(d), PAPER_MAX_LABELS);
        f12.push(Figure {
            id: format!("fig12{sub}"),
            title: format!("Comparison of Classifiers, Best Variants ({})", d.name()),
            x_label: "#Labeled Examples".into(),
            y_label: "Progressive F1".into(),
            series: runs.iter().map(Series::f1_curve).collect(),
        });
        f13.push(Figure {
            id: format!("fig13{sub}"),
            title: format!("User Wait Time, Best Variants ({})", d.name()),
            x_label: "#Labeled Examples".into(),
            y_label: "Training + Selection secs".into(),
            series: runs.iter().map(Series::user_wait_curve).collect(),
        });
    }
    (f12, f13)
}

// ---------------------------------------------------------------------------
// Table 2 — best progressive F1 and #labels to convergence
// ---------------------------------------------------------------------------

/// The approaches tabulated in Table 2, with the paper's reported
/// `F1 (labels)` values for comparison.
const TABLE2_SPECS: [(Spec, &str); 8] = [
    (Spec::TreeQbc(20), "Trees(20)"),
    (Spec::EnsembleSvm, "Linear-Margin(Ensemble)"),
    (Spec::MarginSvmBlocking(1), "Linear-Margin(Blocking)"),
    (Spec::QbcSvm(2), "Linear-QBC(2)"),
    (Spec::QbcSvm(20), "Linear-QBC(20)"),
    (Spec::MarginNn, "Non-Convex Non-Linear-Margin"),
    (Spec::QbcNn(2), "Non-Convex Non-Linear-QBC(2)"),
    (Spec::Rules, "Rules(LFP/LFN)"),
];

/// The paper's Table 2 values (best progressive F1 with #labels), for the
/// comparison rows emitted under each measured row.
const TABLE2_PAPER: [[&str; 5]; 8] = [
    [
        "0.963 (2360)",
        "0.971 (2360)",
        "0.99 (260)",
        "0.99 (1770)",
        "0.98 (1700)",
    ],
    [
        "0.663 (1470)",
        "0.69 (330)",
        "0.977 (210)",
        "0.922 (560)",
        "0.945 (1220)",
    ],
    [
        "0.61 (640)",
        "0.7 (930)",
        "0.975 (170)",
        "0.936 (920)",
        "0.89 (220)",
    ],
    [
        "0.61 (1420)",
        "0.7 (1550)",
        "0.976 (170)",
        "0.935 (1090)",
        "0.941 (2190)",
    ],
    [
        "0.61 (1620)",
        "0.7 (1260)",
        "0.976 (180)",
        "0.936 (1600)",
        "0.95 (2130)",
    ],
    [
        "0.63 (670)",
        "0.72 (2360)",
        "0.978 (1100)",
        "0.938 (970)",
        "0.709 (410)",
    ],
    [
        "0.63 (970)",
        "0.725 (1350)",
        "0.97 (90)",
        "0.949 (740)",
        "0.95 (1640)",
    ],
    [
        "0.17 (230)",
        "0.51 (50)",
        "0.962 (350)",
        "0.586 (490)",
        "0.18 (170)",
    ],
];

/// Table 2: best progressive F1 (with #labels to convergence) per approach
/// per dataset, measured and paper-reported.
pub fn table2(cfg: ExpConfig) -> TableReport {
    // One column of runs per dataset; all runs in one parallel batch.
    let jobs: Vec<_> = FIVE_DATASETS
        .iter()
        .map(|&d| {
            move || {
                let p = prepare(d, cfg.scale);
                run_specs(&p.corpus, &TABLE2_SPECS.map(|(s, _)| s), PAPER_MAX_LABELS)
            }
        })
        .collect();
    let per_dataset: Vec<Vec<RunResult>> = run_parallel(jobs);

    let mut rows = Vec::new();
    for (ai, (_, label)) in TABLE2_SPECS.iter().enumerate() {
        let mut row = vec![(*label).to_owned()];
        for runs in &per_dataset {
            let r = &runs[ai];
            row.push(format!(
                "{:.3} ({})",
                r.best_f1(),
                r.labels_to_convergence(0.005)
            ));
        }
        rows.push(row);
        let mut paper_row = vec![format!("  paper: {label}")];
        paper_row.extend(TABLE2_PAPER[ai].iter().map(|s| (*s).to_owned()));
        rows.push(paper_row);
    }
    TableReport {
        id: "table2".into(),
        title: "Best Progressive F1-Scores (Perfect Oracle) — measured vs paper".into(),
        header: {
            let mut h = vec!["Approach".into()];
            h.extend(FIVE_DATASETS.iter().map(|d| d.name().to_owned()));
            h
        },
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figs. 14 & 15 — noisy Oracles
// ---------------------------------------------------------------------------

/// The noise probabilities swept in §6.2.
pub const NOISE_LEVELS: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.4];

/// Average F1 curve of `spec` on `corpus` under `noise`, over several
/// seeded runs (noisy Oracles are averaged over 5 seeds in the paper).
fn noisy_curve(corpus: &Corpus, spec: Spec, noise: f64, seeds: usize, label: &str) -> Series {
    let n_runs = if noise == 0.0 { 1 } else { seeds };
    let jobs: Vec<_> = (0..n_runs)
        .map(|k| {
            move || {
                let params = LoopParams {
                    stop_at_f1: None, // termination = label exhaustion (§6.2)
                    ..paper_params(corpus, corpus.len())
                };
                run_noisy(corpus, spec.build(), params, noise, RUN_SEED + k as u64)
            }
        })
        .collect();
    let runs = run_parallel(jobs);
    let curves: Vec<Series> = runs.iter().map(Series::f1_curve).collect();
    Series::average(label, &curves)
}

/// Fig. 14: noise sweep on Abt-Buy for four classifier variants.
pub fn fig14(cfg: ExpConfig) -> Vec<Figure> {
    let p = prepare(PaperDataset::AbtBuy, cfg.scale);
    let variants: [(Spec, &str, &str); 4] = [
        (Spec::TreeQbc(20), "a", "Trees(20)"),
        (Spec::MarginNn, "b", "Non-Convex Non-Linear(Margin)"),
        (Spec::EnsembleSvm, "c", "Linear-Margin(Ensemble)"),
        (Spec::MarginSvmBlocking(1), "d", "Linear-Margin(1Dim)"),
    ];
    variants
        .iter()
        .map(|&(spec, sub, title)| Figure {
            id: format!("fig14{sub}"),
            title: format!("Imperfect Oracle, Effect of Noise (Abt-Buy, {title})"),
            x_label: "#Labeled Examples".into(),
            y_label: "Progressive F1".into(),
            series: NOISE_LEVELS
                .iter()
                .map(|&noise| {
                    noisy_curve(
                        &p.corpus,
                        spec,
                        noise,
                        cfg.noise_seeds,
                        &format!("{}%", (noise * 100.0) as u32),
                    )
                })
                .collect(),
        })
        .collect()
}

/// Fig. 15: Trees(20) noise sweep on the Magellan/DeepMatcher datasets.
pub fn fig15(cfg: ExpConfig) -> Vec<Figure> {
    let datasets: [(PaperDataset, &str); 4] = [
        (PaperDataset::WalmartAmazon, "a"),
        (PaperDataset::AmazonBestBuy, "b"),
        (PaperDataset::Beer, "c"),
        (PaperDataset::BabyProducts, "d"),
    ];
    datasets
        .iter()
        .map(|&(d, sub)| {
            let p = prepare(d, cfg.scale);
            Figure {
                id: format!("fig15{sub}"),
                title: format!("Imperfect Oracle, Trees(20) ({})", d.name()),
                x_label: "#Labeled Examples".into(),
                y_label: "Progressive F1".into(),
                series: NOISE_LEVELS
                    .iter()
                    .map(|&noise| {
                        noisy_curve(
                            &p.corpus,
                            Spec::TreeQbc(20),
                            noise,
                            cfg.noise_seeds,
                            &format!("{}%", (noise * 100.0) as u32),
                        )
                    })
                    .collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figs. 16 & 17 — active vs supervised learning (hold-out evaluation)
// ---------------------------------------------------------------------------

/// A hold-out run (80/20 split, §6.2).
fn run_holdout(corpus: &Corpus, spec: Spec, noise: f64, seed: u64) -> RunResult {
    let params = LoopParams {
        eval: EvalMode::Holdout { test_frac: 0.2 },
        stop_at_f1: None,
        ..paper_params(corpus, (corpus.len() * 4) / 5)
    };
    if noise == 0.0 {
        run_perfect(corpus, spec.build(), params, seed)
    } else {
        run_noisy(corpus, spec.build(), params, noise, seed)
    }
}

/// Fig. 16: active Trees(20) vs supervised Trees(20) vs the DeepMatcher
/// proxy on the Magellan/DeepMatcher datasets, perfect Oracles.
pub fn fig16(cfg: ExpConfig) -> Vec<Figure> {
    let datasets: [(PaperDataset, &str); 4] = [
        (PaperDataset::WalmartAmazon, "a"),
        (PaperDataset::AmazonBestBuy, "b"),
        (PaperDataset::Beer, "c"),
        (PaperDataset::BabyProducts, "d"),
    ];
    datasets
        .iter()
        .map(|&(d, sub)| {
            let p = prepare(d, cfg.scale);
            let corpus = &p.corpus;
            let active = run_holdout(corpus, Spec::TreeQbc(20), 0.0, RUN_SEED);
            let supervised = run_holdout(corpus, Spec::SupervisedTrees(20), 0.0, RUN_SEED);
            // DeepMatcher runs are averaged over seeds — the paper reports
            // its std-dev across 5 runs because it fluctuates.
            let dm_jobs: Vec<_> = (0..cfg.noise_seeds)
                .map(|k| {
                    move || run_holdout(corpus, Spec::DeepMatcherProxy, 0.0, RUN_SEED + k as u64)
                })
                .collect();
            let dm_runs = run_parallel(dm_jobs);
            let dm_curves: Vec<Series> = dm_runs.iter().map(Series::f1_curve).collect();
            let test_labels = corpus.len() / 5;
            Figure {
                id: format!("fig16{sub}"),
                title: format!(
                    "Active vs Supervised Learning, {} Test Labels ({})",
                    test_labels,
                    d.name()
                ),
                x_label: "#Labeled Examples".into(),
                y_label: "Test F1".into(),
                series: vec![
                    {
                        let mut s = Series::f1_curve(&active);
                        s.label = "ActiveTrees(QBC-20)".into();
                        s
                    },
                    Series::f1_curve(&supervised),
                    Series::average("DeepMatcher", &dm_curves),
                ],
            }
        })
        .collect()
}

/// Fig. 17: active vs supervised Trees(20) on Abt-Buy at 0/10/20% noise.
pub fn fig17(cfg: ExpConfig) -> Vec<Figure> {
    let p = prepare(PaperDataset::AbtBuy, cfg.scale);
    let corpus = &p.corpus;
    let test_labels = corpus.len() / 5;
    [(0.0, "a"), (0.1, "b"), (0.2, "c")]
        .iter()
        .map(|&(noise, sub)| {
            let jobs: Vec<Box<dyn FnOnce() -> RunResult + Send>> = vec![
                Box::new(move || run_holdout(corpus, Spec::TreeQbc(20), noise, RUN_SEED)),
                Box::new(move || run_holdout(corpus, Spec::SupervisedTrees(20), noise, RUN_SEED)),
            ];
            let runs = run_parallel(jobs);
            let mut active = Series::f1_curve(&runs[0]);
            active.label = "ActiveTrees(QBC-20)".into();
            Figure {
                id: format!("fig17{sub}"),
                title: format!(
                    "Active vs Supervised Trees(20), {test_labels} Test Labels, {}% Noise (Abt-Buy)",
                    (noise * 100.0) as u32
                ),
                x_label: "#Labeled Examples".into(),
                y_label: "Test F1".into(),
                series: vec![active, Series::f1_curve(&runs[1])],
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 18 — interpretability
// ---------------------------------------------------------------------------

/// Fig. 18: #DNF atoms (trees vs rules) and tree-ensemble depth on Abt-Buy.
pub fn fig18(cfg: ExpConfig) -> Vec<Figure> {
    let p = prepare(PaperDataset::AbtBuy, cfg.scale);
    let runs = run_specs(
        &p.corpus,
        &[
            Spec::TreeQbc(2),
            Spec::TreeQbc(10),
            Spec::TreeQbc(20),
            Spec::Rules,
        ],
        PAPER_MAX_LABELS,
    );
    vec![
        Figure {
            id: "fig18a".into(),
            title: "#DNF Atoms vs #Labels (Abt-Buy)".into(),
            x_label: "#Labeled Examples".into(),
            y_label: "#DNF Atoms".into(),
            series: runs.iter().map(Series::atoms_curve).collect(),
        },
        Figure {
            id: "fig18b".into(),
            title: "Depth of Tree-based Classifiers (Abt-Buy)".into(),
            x_label: "#Labeled Examples".into(),
            y_label: "Depth".into(),
            series: runs[..3].iter().map(Series::depth_curve).collect(),
        },
    ]
}

// ---------------------------------------------------------------------------
// §6.3 listing — the learned rule ensemble for Abt-Buy
// ---------------------------------------------------------------------------

/// Run LFP/LFN rule learning on Abt-Buy and pretty-print the learned DNF
/// ensemble (the §6.3 listing).
pub fn rules_listing(cfg: ExpConfig) -> String {
    let p = prepare(PaperDataset::AbtBuy, cfg.scale);
    let oracle = Oracle::perfect(p.corpus.truths().to_vec());
    let params = paper_params(&p.corpus, PAPER_MAX_LABELS);
    let mut al = ActiveLearner::new(LfpLfnStrategy::new(DnfTrainer::default(), TAU), params);
    let run = al
        .run(&p.corpus, &oracle, RUN_SEED)
        // alem-lint: allow(panic-reach) -- experiment harness aborts on run failure; fatal by contract
        .unwrap_or_else(|e| panic!("rules listing run failed: {e}"));
    let strategy = al.into_strategy();
    let dnf = strategy.effective_dnf();
    let descs = p.extractor.bool_descriptions();
    format!
        (
        "Abt-Buy learned rule ensemble (#DNF Atoms = {}, best progressive F1 = {:.3}, labels = {}):\n{}",
        dnf.atom_count(),
        run.best_f1(),
        run.total_labels(),
        alem_core::interpret::dnf_to_string(&dnf, &descs)
    )
}

// ---------------------------------------------------------------------------
// Fig. 19 — rules on the social-media corpus
// ---------------------------------------------------------------------------

/// Metrics for one rule-learning approach on the social corpus.
struct SocialOutcome {
    label: String,
    total_wait_secs: f64,
    iterations: usize,
    valid_rules: usize,
    coverage: usize,
}

/// Validate a learned DNF's clauses against the hidden ground truth — the
/// stand-in for the paper's human expert. Returns (valid rules, coverage).
#[allow(clippy::needless_range_loop)] // parallel bools/covered indexing
fn expert_validate(dnf: &Dnf, corpus: &Corpus) -> (usize, usize) {
    // alem-lint: allow(panic-reach) -- bool features exist for every paper dataset config used here
    let bools = corpus.bool_features().expect("bool features");
    let mut valid = 0usize;
    let mut covered = vec![false; corpus.len()];
    for clause in dnf.clauses() {
        let mut claimed = 0usize;
        let mut correct = 0usize;
        for i in 0..corpus.len() {
            if clause.matches(&bools[i]) {
                claimed += 1;
                if corpus.truth(i) {
                    correct += 1;
                }
            }
        }
        if claimed > 0 && correct as f64 / claimed as f64 >= VALID_RULE_PRECISION {
            valid += 1;
            for (i, c) in covered.iter_mut().enumerate() {
                if clause.matches(&bools[i]) {
                    *c = true;
                }
            }
        }
    }
    (valid, covered.iter().filter(|&&c| c).count())
}

/// Fig. 19: LFP/LFN vs learner-agnostic QBC (committee sizes 2–20) for
/// rule learning on the social-media corpus.
pub fn fig19(cfg: ExpConfig) -> TableReport {
    let social_cfg = datagen::social::SocialConfig {
        n_employees: (400.0 * cfg.scale.max(0.1) * 4.0) as usize,
        n_profiles: (4000.0 * cfg.scale.max(0.1) * 4.0) as usize,
        coverage: 0.8,
    };
    let ds = datagen::social::generate_social(&social_cfg, crate::data::DATA_SEED);
    let p = crate::data::prepare_dataset(&ds, 0.2);
    let corpus = &p.corpus;
    let max_labels = corpus.len().min(1000);

    let mut outcomes: Vec<SocialOutcome> = Vec::new();

    // LFP/LFN.
    {
        let oracle = Oracle::perfect(corpus.truths().to_vec());
        let params = LoopParams {
            stop_at_f1: None,
            ..paper_params(corpus, max_labels)
        };
        let mut al = ActiveLearner::new(LfpLfnStrategy::new(DnfTrainer::default(), TAU), params);
        let run = al
            .run(corpus, &oracle, RUN_SEED)
            // alem-lint: allow(panic-reach) -- experiment harness aborts on run failure; fatal by contract
            .unwrap_or_else(|e| panic!("LFP/LFN run failed: {e}"));
        let dnf = al.into_strategy().effective_dnf();
        let (valid, coverage) = expert_validate(&dnf, corpus);
        outcomes.push(SocialOutcome {
            label: "LFP/LFN".into(),
            total_wait_secs: run.total_user_wait_secs(),
            iterations: run.iterations.len(),
            valid_rules: valid,
            coverage,
        });
    }

    // Learner-agnostic QBC over the rule learner.
    for b in [2usize, 5, 10, 20] {
        let oracle = Oracle::perfect(corpus.truths().to_vec());
        let params = LoopParams {
            stop_at_f1: None,
            ..paper_params(corpus, max_labels)
        };
        let mut al = ActiveLearner::new(
            QbcStrategy::builder(DnfTrainer::default())
                .committee_size(b)
                .bool_features(true)
                .build(),
            params,
        );
        let run = al
            .run(corpus, &oracle, RUN_SEED)
            // alem-lint: allow(panic-reach) -- experiment harness aborts on run failure; fatal by contract
            .unwrap_or_else(|e| panic!("QBC({b}) run failed: {e}"));
        let strategy = al.into_strategy();
        let dnf = strategy.model().cloned().unwrap_or_default();
        let (valid, coverage) = expert_validate(&dnf, corpus);
        outcomes.push(SocialOutcome {
            label: format!("QBC({b})"),
            total_wait_secs: run.total_user_wait_secs(),
            iterations: run.iterations.len(),
            valid_rules: valid,
            coverage,
        });
    }

    TableReport {
        id: "fig19".into(),
        title: "Social Media Dataset — QBC vs LFP/LFN (Rules)".into(),
        header: vec![
            "Approach".into(),
            "Total Wait (s)".into(),
            "Avg Wait/Iter (s)".into(),
            "#Iterations".into(),
            "#Valid Rules".into(),
            "Coverage".into(),
            "Wait per Valid Rule (s)".into(),
        ],
        rows: outcomes
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    format!("{:.3}", o.total_wait_secs),
                    format!("{:.4}", o.total_wait_secs / o.iterations.max(1) as f64),
                    format!("{}", o.iterations),
                    format!("{}", o.valid_rules),
                    format!("{}", o.coverage),
                    if o.valid_rules == 0 {
                        "n/a".into()
                    } else {
                        format!("{:.3}", o.total_wait_secs / o.valid_rules as f64)
                    },
                ]
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Extension: active ensembles for neural networks (§5.2's closing remark)
// ---------------------------------------------------------------------------

/// Extension experiment: the paper's §5.2 ensemble generalized to neural
/// networks, compared against the single NN-Margin model and the linear
/// ensemble on Abt-Buy and DBLP-ACM.
pub fn ext_ensemble_nn(cfg: ExpConfig) -> Vec<Figure> {
    [(PaperDataset::AbtBuy, "a"), (PaperDataset::DblpAcm, "b")]
        .iter()
        .map(|&(d, sub)| {
            let p = prepare(d, cfg.scale);
            let runs = run_specs(
                &p.corpus,
                &[Spec::MarginNn, Spec::EnsembleNn, Spec::EnsembleSvm],
                PAPER_MAX_LABELS,
            );
            Figure {
                id: format!("ext-ensemble-nn-{sub}"),
                title: format!("Active Ensemble for Neural Networks ({})", d.name()),
                x_label: "#Labeled Examples".into(),
                y_label: "Progressive F1".into(),
                series: runs.iter().map(Series::f1_curve).collect(),
            }
        })
        .collect()
}

/// Extension experiment: selection speed-ups for linear classifiers —
/// blocking dimensions (§5.1) vs the LSH hyperplane-hashing baseline of
/// Jain et al. vs exact margin, on quality and selection latency.
pub fn ext_lsh(cfg: ExpConfig) -> Vec<Figure> {
    let p = prepare(PaperDataset::Cora, cfg.scale);
    let runs = run_specs(
        &p.corpus,
        &[
            Spec::MarginSvm,
            Spec::MarginSvmBlocking(1),
            Spec::LshMargin(32),
        ],
        PAPER_MAX_LABELS,
    );
    vec![
        Figure {
            id: "ext-lsh-a".into(),
            title: "Margin speed-ups: exact vs blocking-dims vs LSH (Cora, F1)".into(),
            x_label: "#Labeled Examples".into(),
            y_label: "Progressive F1".into(),
            series: runs.iter().map(Series::f1_curve).collect(),
        },
        Figure {
            id: "ext-lsh-b".into(),
            title: "Margin speed-ups: selection time (Cora)".into(),
            x_label: "#Labeled Examples".into(),
            y_label: "secs".into(),
            series: runs.iter().map(Series::scoring_time_curve).collect(),
        },
    ]
}

/// Extension experiment: IWAL vs margin vs random selection on the F1
/// objective — reproducing the §2 claim that IWAL is label-inefficient
/// for skewed EM data.
pub fn ext_iwal(cfg: ExpConfig) -> Vec<Figure> {
    [(PaperDataset::DblpAcm, "a"), (PaperDataset::AbtBuy, "b")]
        .iter()
        .map(|&(d, sub)| {
            let p = prepare(d, cfg.scale);
            let runs = run_specs(
                &p.corpus,
                &[Spec::MarginSvm, Spec::Iwal, Spec::QbcSvm(2)],
                PAPER_MAX_LABELS,
            );
            Figure {
                id: format!("ext-iwal-{sub}"),
                title: format!("IWAL vs margin vs QBC, linear classifier ({})", d.name()),
                x_label: "#Labeled Examples".into(),
                y_label: "Progressive F1".into(),
                series: runs.iter().map(Series::f1_curve).collect(),
            }
        })
        .collect()
}

/// Extension experiment: crowd majority voting (the §6.2 error-correction
/// technique the paper leaves out) — Trees(20) at 30% per-vote noise with
/// 1, 3, and 5 votes per query.
pub fn ext_voting(cfg: ExpConfig) -> Figure {
    let p = prepare(PaperDataset::AbtBuy, cfg.scale);
    let corpus = &p.corpus;
    let votes = [1usize, 3, 5];
    let jobs: Vec<_> = votes
        .iter()
        .map(|&v| {
            move || {
                let oracle =
                    Oracle::noisy_with_voting(corpus.truths().to_vec(), 0.3, v, RUN_SEED ^ 0xbeef)
                        // alem-lint: allow(panic-reach) -- experiment harness aborts on invalid oracle config; fatal by contract
                        .unwrap_or_else(|e| panic!("invalid voting oracle: {e}"));
                let params = LoopParams {
                    stop_at_f1: None,
                    ..paper_params(corpus, corpus.len())
                };
                ActiveLearner::new(Spec::TreeQbc(20).build(), params)
                    .run(corpus, &oracle, RUN_SEED)
                    // alem-lint: allow(panic-reach) -- experiment harness aborts on run failure; fatal by contract
                    .unwrap_or_else(|e| panic!("voting run failed: {e}"))
            }
        })
        .collect();
    let runs = run_parallel(jobs);
    Figure {
        id: "ext-voting".into(),
        title: "Majority voting vs 30% per-vote noise, Trees(20) (Abt-Buy)".into(),
        x_label: "#Labeled Examples (votes cost extra queries)".into(),
        y_label: "Progressive F1".into(),
        series: votes
            .iter()
            .zip(&runs)
            .map(|(&v, r)| {
                let mut s = Series::f1_curve(r);
                s.label = format!("{v} vote(s)");
                s
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Extension: fault sweep — robustness under noise + transient failures
// ---------------------------------------------------------------------------

/// The transient-failure probabilities swept by [`fault_sweep`].
pub const FAILURE_RATES: [f64; 3] = [0.0, 0.1, 0.2];
/// The label-noise probabilities swept by [`fault_sweep`].
pub const FAULT_NOISE_LEVELS: [f64; 3] = [0.0, 0.1, 0.2];

/// Fault sweep: Trees(10) on Abt-Buy under every (label noise, transient
/// failure rate) combination, driven through the fault-tolerant session
/// layer with the default retry policy. Each row reports the injected
/// failure count alongside the best/final progressive F1, quantifying
/// whether retried faults degrade quality beyond the noise itself.
pub fn fault_sweep(cfg: ExpConfig) -> TableReport {
    let p = prepare(PaperDataset::AbtBuy, cfg.scale);
    let corpus = &p.corpus;
    let max_labels = corpus.len().min(600);
    let grid: Vec<(f64, f64)> = FAULT_NOISE_LEVELS
        .iter()
        .flat_map(|&noise| FAILURE_RATES.iter().map(move |&rate| (noise, rate)))
        .collect();
    let jobs: Vec<_> = grid
        .iter()
        .map(|&(noise, rate)| {
            move || {
                let base = if noise == 0.0 {
                    Oracle::perfect(corpus.truths().to_vec())
                } else {
                    Oracle::noisy(corpus.truths().to_vec(), noise, RUN_SEED ^ 0x5eed)
                        // alem-lint: allow(panic-reach) -- experiment harness aborts on invalid oracle config; fatal by contract
                        .unwrap_or_else(|e| panic!("invalid oracle configuration: {e}"))
                };
                let oracle = TransientOracle::new(base, rate, RUN_SEED ^ 0xfa17)
                    // alem-lint: allow(panic-reach) -- experiment harness aborts on invalid failure rate; fatal by contract
                    .unwrap_or_else(|e| panic!("invalid failure rate: {e}"));
                let params = LoopParams {
                    stop_at_f1: None,
                    ..paper_params(corpus, max_labels)
                };
                let mut al = ActiveLearner::new(Spec::TreeQbc(10).build(), params);
                // Deep retry budget: at a 20% failure rate a 5-attempt
                // policy exhausts with probability ~0.03% per query, which
                // over hundreds of queries aborts most sweeps; 10 attempts
                // make exhaustion vanishingly rare while the short base
                // delay keeps the sweep fast.
                let config = SessionConfig {
                    retry: RetryPolicy {
                        max_attempts: 10,
                        base_delay: std::time::Duration::from_micros(100),
                        ..RetryPolicy::default()
                    },
                    ..SessionConfig::default()
                };
                let outcome = al
                    .run_session(corpus, &oracle, RUN_SEED, &config)
                    // alem-lint: allow(panic-reach) -- experiment harness aborts on run failure; fatal by contract
                    .unwrap_or_else(|e| panic!("fault-sweep run failed: {e}"));
                let run = outcome
                    .run_result()
                    // alem-lint: allow(panic-reach) -- fault-sweep asserts the session survived; halt is a harness bug
                    .unwrap_or_else(|| panic!("fault-sweep session halted unexpectedly"));
                (run, oracle.failures())
            }
        })
        .collect();
    let results = run_parallel(jobs);
    TableReport {
        id: "fault_sweep".into(),
        title: "Fault sweep: Trees(10) under noise × transient failures (Abt-Buy)".into(),
        header: vec![
            "Noise".into(),
            "Failure Rate".into(),
            "#Injected Failures".into(),
            "Best F1".into(),
            "Final F1".into(),
            "#Labels".into(),
        ],
        rows: grid
            .iter()
            .zip(&results)
            .map(|(&(noise, rate), (run, failures))| {
                vec![
                    format!("{noise:.2}"),
                    format!("{rate:.2}"),
                    format!("{failures}"),
                    format!("{:.3}", run.best_f1()),
                    format!("{:.3}", run.final_f1()),
                    format!("{}", run.total_labels()),
                ]
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Telemetry-derived latency breakdown (DESIGN.md §7)
// ---------------------------------------------------------------------------

/// Latency breakdown per strategy × iteration from telemetry spans — the
/// data behind Figs. 10–13, but sourced from the `alem-obs` span stream
/// instead of the loop's own `IterationStats`: committee-build, scoring
/// (incl. LSH index builds), training, and oracle wait, in milliseconds.
pub fn latency_breakdown(cfg: ExpConfig) -> TableReport {
    use alem_obs::{EventKind, Registry};
    let p = prepare(PaperDataset::DblpAcm, cfg.scale);
    let corpus = &p.corpus;
    let max_labels = corpus.len().min(600);
    let specs = [
        Spec::TreeQbc(20),
        Spec::QbcSvm(10),
        Spec::MarginSvm,
        Spec::MarginSvmBlocking(1),
    ];
    let jobs: Vec<_> = specs
        .iter()
        .map(|&spec| {
            move || {
                let obs = Registry::enabled();
                let oracle = Oracle::perfect(corpus.truths().to_vec());
                let params = LoopParams {
                    stop_at_f1: None,
                    ..paper_params(corpus, max_labels)
                };
                let config = SessionConfig {
                    obs: obs.clone(),
                    ..SessionConfig::default()
                };
                let mut al = ActiveLearner::new(spec.build(), params);
                let run = al
                    .run_session(corpus, &oracle, RUN_SEED, &config)
                    // alem-lint: allow(panic-reach) -- experiment harness aborts on run failure; fatal by contract
                    .unwrap_or_else(|e| panic!("latency-breakdown run failed: {e}"))
                    .run_result()
                    // alem-lint: allow(panic-reach) -- latency harness asserts the session survived; halt is a harness bug
                    .unwrap_or_else(|| panic!("latency-breakdown session halted unexpectedly"));
                (run.strategy.clone(), obs.events())
            }
        })
        .collect();
    let results = run_parallel(jobs);
    let mut rows = Vec::new();
    for (strategy, events) in &results {
        // iteration → [committee, scoring, train, oracle] totals in µs.
        let mut per_iter: std::collections::BTreeMap<u64, [u64; 4]> = Default::default();
        for e in events {
            if e.kind != EventKind::Span {
                continue;
            }
            let slot = match e.name {
                "select.committee" => 0,
                "select.score" | "select.index_build" => 1,
                "train" => 2,
                "oracle.query" => 3,
                _ => continue,
            };
            per_iter.entry(e.iter).or_default()[slot] += e.value;
        }
        for (iter, us) in per_iter {
            let ms = |v: u64| format!("{:.3}", v as f64 / 1000.0);
            rows.push(vec![
                strategy.clone(),
                iter.to_string(),
                ms(us[0]),
                ms(us[1]),
                ms(us[2]),
                ms(us[3]),
            ]);
        }
    }
    TableReport {
        id: "latency_breakdown".into(),
        title: "Telemetry latency breakdown per iteration (DBLP-ACM)".into(),
        header: vec![
            "Strategy".into(),
            "Iteration".into(),
            "committee_ms".into(),
            "scoring_ms".into(),
            "train_ms".into(),
            "oracle_ms".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5) — quality side; latency ablations are Criterion
// benches under benches/.
// ---------------------------------------------------------------------------

/// Ablation: active-ensemble precision threshold τ. The paper fixes τ at
/// 0.85 and observes it is conservative for Abt-Buy/DBLP-ACM but not ideal
/// for DBLP-Scholar; this sweep quantifies the τ trade-off between
/// #accepted SVMs and final F1.
pub fn ablation_tau(cfg: ExpConfig) -> TableReport {
    let p = prepare(PaperDataset::AbtBuy, cfg.scale);
    let corpus = &p.corpus;
    let taus = [0.70, 0.80, 0.85, 0.90, 0.95];
    let jobs: Vec<_> = taus
        .iter()
        .map(|&tau| {
            move || {
                let params = paper_params(corpus, PAPER_MAX_LABELS);
                run_perfect(
                    corpus,
                    EnsembleSvmStrategy::new(SvmTrainer::default(), tau),
                    params,
                    RUN_SEED,
                )
            }
        })
        .collect();
    let runs = run_parallel(jobs);
    TableReport {
        id: "ablation_tau".into(),
        title: "Active-ensemble precision threshold τ (Abt-Buy)".into(),
        header: vec![
            "τ".into(),
            "Best F1".into(),
            "Final F1".into(),
            "#Accepted SVMs".into(),
            "#Labels".into(),
        ],
        rows: taus
            .iter()
            .zip(&runs)
            .map(|(&tau, r)| {
                let accepted = r
                    .iterations
                    .last()
                    .and_then(|s| s.accepted_models)
                    .unwrap_or(0);
                vec![
                    format!("{tau:.2}"),
                    format!("{:.3}", r.best_f1()),
                    format!("{:.3}", r.final_f1()),
                    format!("{accepted}"),
                    format!("{}", r.total_labels()),
                ]
            })
            .collect(),
    }
}

/// Ablation: labels queried per iteration. Smaller batches converge in
/// fewer labels (fresher models pick better examples) but cost more
/// iterations of user wait.
pub fn ablation_batch(cfg: ExpConfig) -> TableReport {
    let p = prepare(PaperDataset::DblpAcm, cfg.scale);
    let corpus = &p.corpus;
    let batches = [1usize, 5, 10, 25, 50];
    let jobs: Vec<_> = batches
        .iter()
        .map(|&batch| {
            move || {
                let params = LoopParams {
                    batch_size: batch,
                    ..paper_params(corpus, 600)
                };
                run_perfect(corpus, Spec::TreeQbc(10).build(), params, RUN_SEED)
            }
        })
        .collect();
    let runs = run_parallel(jobs);
    TableReport {
        id: "ablation_batch".into(),
        title: "Batch size per iteration, Trees(10) (DBLP-ACM)".into(),
        header: vec![
            "Batch".into(),
            "Best F1".into(),
            "#Labels to converge".into(),
            "#Iterations".into(),
            "Total wait (s)".into(),
        ],
        rows: batches
            .iter()
            .zip(&runs)
            .map(|(&b, r)| {
                vec![
                    format!("{b}"),
                    format!("{:.3}", r.best_f1()),
                    format!("{}", r.labels_to_convergence(0.005)),
                    format!("{}", r.iterations.len()),
                    format!("{:.2}", r.total_user_wait_secs()),
                ]
            })
            .collect(),
    }
}

/// Ablation: per-split feature subset for random forests — Corleone's
/// `log2(D+1)` (the paper's setting) vs `sqrt(D)` vs all features.
pub fn ablation_feature_subset(cfg: ExpConfig) -> TableReport {
    use mlcore::forest::ForestConfig;
    use mlcore::tree::{FeatureSubset, TreeConfig};
    let p = prepare(PaperDataset::AbtBuy, cfg.scale);
    let corpus = &p.corpus;
    let variants: [(&str, FeatureSubset); 3] = [
        ("log2(D+1) [Corleone]", FeatureSubset::Log2),
        ("sqrt(D)", FeatureSubset::Sqrt),
        ("all D", FeatureSubset::All),
    ];
    let jobs: Vec<_> = variants
        .iter()
        .map(|&(_, subset)| {
            move || {
                let trainer = ForestTrainer(ForestConfig {
                    n_trees: 20,
                    tree: TreeConfig {
                        max_depth: None,
                        min_samples_split: 2,
                        feature_subset: subset,
                    },
                    bootstrap: true,
                });
                let params = paper_params(corpus, PAPER_MAX_LABELS);
                run_perfect(
                    corpus,
                    TreeQbcStrategy::builder().trainer(trainer).build(),
                    params,
                    RUN_SEED,
                )
            }
        })
        .collect();
    let runs = run_parallel(jobs);
    TableReport {
        id: "ablation_feature_subset".into(),
        title: "Forest feature-subset policy, Trees(20) (Abt-Buy)".into(),
        header: vec![
            "Subset".into(),
            "Best F1".into(),
            "#Labels to converge".into(),
            "Train time total (s)".into(),
        ],
        rows: variants
            .iter()
            .zip(&runs)
            .map(|((name, _), r)| {
                let train: f64 = r.iterations.iter().map(|s| s.train_secs).sum();
                vec![
                    (*name).to_owned(),
                    format!("{:.3}", r.best_f1()),
                    format!("{}", r.labels_to_convergence(0.005)),
                    format!("{train:.2}"),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.03,
            noise_seeds: 2,
        }
    }

    #[test]
    fn table1_has_nine_rows() {
        let t = table1(tiny());
        assert_eq!(t.rows.len(), 9);
        assert_eq!(t.header.len(), 6);
    }

    #[test]
    fn spec_builds_every_strategy() {
        for spec in [
            Spec::TreeQbc(2),
            Spec::QbcSvm(2),
            Spec::QbcNn(2),
            Spec::MarginSvm,
            Spec::MarginSvmBlocking(1),
            Spec::MarginNn,
            Spec::EnsembleSvm,
            Spec::Rules,
            Spec::SupervisedTrees(2),
            Spec::DeepMatcherProxy,
        ] {
            let s = spec.build();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn fig18_emits_atoms_and_depth() {
        let figs = fig18(tiny());
        assert_eq!(figs.len(), 2);
        assert_eq!(figs[0].series.len(), 4);
        assert_eq!(figs[1].series.len(), 3);
        // Tree atom counts grow with labels.
        let trees20 = &figs[0].series[2];
        assert!(trees20.y.last().unwrap() > &0.0);
    }

    #[test]
    fn ablation_tables_have_expected_shape() {
        let t = ablation_tau(tiny());
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.header.len(), 5);
        let t = ablation_batch(tiny());
        assert_eq!(t.rows.len(), 5);
        let t = ablation_feature_subset(tiny());
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn ext_voting_emits_three_series() {
        let f = ext_voting(tiny());
        assert_eq!(f.series.len(), 3);
        assert_eq!(f.series[0].label, "1 vote(s)");
    }

    #[test]
    fn fault_sweep_covers_grid_and_completes_budget() {
        let t = fault_sweep(tiny());
        assert_eq!(t.rows.len(), FAULT_NOISE_LEVELS.len() * FAILURE_RATES.len());
        assert_eq!(t.header.len(), 6);
        // The 20% failure-rate rows retried their way to the full budget:
        // every row labels the same number of examples as the fault-free one.
        let labels: Vec<&str> = t.rows.iter().map(|r| r[5].as_str()).collect();
        assert!(labels.iter().all(|&l| l == labels[0]), "rows: {labels:?}");
        // Failures were actually injected at non-zero rates.
        let failures: usize = t.rows.iter().map(|r| r[2].parse::<usize>().unwrap()).sum();
        assert!(failures > 0);
    }

    #[test]
    fn best_variants_match_paper_legend() {
        let v = best_variants(PaperDataset::Cora);
        assert_eq!(v[0], Spec::QbcNn(2));
        let v = best_variants(PaperDataset::AbtBuy);
        assert_eq!(v[0], Spec::MarginNn);
        assert_eq!(v[1], Spec::EnsembleSvm);
    }
}
