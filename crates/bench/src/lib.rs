//! `alem-bench` — the benchmark harness that regenerates every table and
//! figure of the paper's evaluation (§6).
//!
//! The `figures` binary is the entry point:
//!
//! ```text
//! cargo run --release -p alem-bench --bin figures -- table1
//! cargo run --release -p alem-bench --bin figures -- fig8 --scale 0.25
//! cargo run --release -p alem-bench --bin figures -- all --json results.json
//! ```
//!
//! `--scale` shrinks the synthetic corpora (1.0 ≈ paper sizes; the default
//! 0.25 reproduces every shape in minutes). Criterion micro-benchmarks for
//! selection latency and the ablation studies live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod experiments;
pub mod runner;
