//! Parallel execution of independent active-learning runs.
//!
//! Every figure involves several independent runs (strategies × datasets ×
//! noise levels × seeds). Runs share only immutable corpora, so they
//! parallelize trivially across threads.

use alem_core::corpus::Corpus;
use alem_core::evaluator::RunResult;
use alem_core::loop_::{ActiveLearner, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::strategy::Strategy;

/// Base RNG seed for active-learning runs (distinct from the data seed).
pub const RUN_SEED: u64 = 1729;

/// Execute a batch of independent jobs on worker threads, preserving input
/// order in the output.
pub fn run_parallel<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    alem_par::Parallelism::default().run(jobs)
}

/// Run one strategy on a corpus with a perfect Oracle.
pub fn run_perfect<S: Strategy>(
    corpus: &Corpus,
    strategy: S,
    params: LoopParams,
    seed: u64,
) -> RunResult {
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    ActiveLearner::new(strategy, params)
        .run(corpus, &oracle, seed)
        // alem-lint: allow(panic-reach) -- experiment harness aborts on run failure; specs are validated by the caller
        .unwrap_or_else(|e| panic!("benchmark run failed: {e}"))
}

/// Run one strategy on a corpus with a noisy Oracle.
pub fn run_noisy<S: Strategy>(
    corpus: &Corpus,
    strategy: S,
    params: LoopParams,
    noise: f64,
    seed: u64,
) -> RunResult {
    let oracle = Oracle::noisy(corpus.truths().to_vec(), noise, seed ^ 0x9e37_79b9)
        // alem-lint: allow(panic-reach) -- experiment harness aborts on invalid oracle config; fatal by contract
        .unwrap_or_else(|e| panic!("invalid oracle configuration: {e}"));
    ActiveLearner::new(strategy, params)
        .run(corpus, &oracle, seed)
        // alem-lint: allow(panic-reach) -- experiment harness aborts on run failure; specs are validated by the caller
        .unwrap_or_else(|e| panic!("benchmark run failed: {e}"))
}

/// Loop parameters for a corpus: paper settings (seed 30, batch 10) with a
/// label budget capped by pool size.
pub fn paper_params(corpus: &Corpus, max_labels: usize) -> LoopParams {
    LoopParams {
        seed_size: 30.min(corpus.len().saturating_sub(1)).max(1),
        batch_size: 10,
        max_labels: max_labels.min(corpus.len()),
        ..LoopParams::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alem_core::learner::SvmTrainer;
    use alem_core::strategy::MarginSvmStrategy;

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..40usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = run_parallel(jobs);
        assert_eq!(out, (0..40).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn perfect_run_works() {
        let feats: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let truth: Vec<bool> = (0..100).map(|i| i >= 60).collect();
        let corpus = Corpus::from_features(feats, truth);
        let params = paper_params(&corpus, 80);
        let r = run_perfect(
            &corpus,
            MarginSvmStrategy::new(SvmTrainer::default()),
            params,
            1,
        );
        assert!(r.best_f1() > 0.8);
    }
}
