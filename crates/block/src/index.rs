//! Shared inverted-index machinery behind [`TokenIndex`](crate::TokenIndex)
//! and [`QGramIndex`](crate::QGramIndex): a parallel index build over the
//! right table and a blocked, parallel probe over the left table that
//! emits candidate pairs in strictly increasing `(left, right)` order.
//!
//! Determinism: the index is an ordered `BTreeMap` whose posting lists
//! are ascending by construction (chunks are merged in chunk order, and
//! chunk ranges ascend); the probe visits left records in order and sorts
//! each record's candidates before the accept test. Thread count only
//! moves chunk boundaries, never the emitted sequence.

use alem_core::error::AlemError;
use alem_core::schema::{Pair, Table};
use alem_obs::Registry;
use alem_par::{chunks, Parallelism};
use std::collections::BTreeMap;
use std::ops::Range;

/// Record-key extractor: the sorted, deduplicated index keys of one
/// record (tokens for [`TokenIndex`](crate::TokenIndex), q-grams for
/// [`QGramIndex`](crate::QGramIndex)).
pub(crate) type KeyFn<'a> = &'a (dyn Fn(&Table, usize) -> Vec<String> + Sync);

/// Accept test: `(overlap, left_key_count, right_key_count)` → keep pair.
/// `right_key_count` is the record's *full* distinct-key count, including
/// keys whose posting lists were skipped by the frequency cap — so
/// Jaccard denominators stay exact and capping can only lose candidates,
/// never invent them.
pub(crate) type AcceptFn<'a> = &'a (dyn Fn(u32, usize, u32) -> bool + Sync);

/// One worker's slice of the index build: its postings plus the
/// per-record distinct-key counts for its range.
type IndexPartial = (BTreeMap<String, Vec<u32>>, Vec<u32>);

/// Inverted index over the right table's record keys.
pub(crate) struct InvertedIndex {
    /// Key → ascending right-record ids.
    postings: BTreeMap<String, Vec<u32>>,
    /// Full distinct-key count per right record (union denominator).
    key_count: Vec<u32>,
    /// Posting lists dropped by the frequency cap.
    skipped: u64,
}

impl InvertedIndex {
    /// Build the index in parallel. Posting lists longer than
    /// `max_postings` (stop-tokens, ultra-frequent q-grams) are dropped
    /// deterministically — length is a pure function of the data.
    pub(crate) fn build(
        right: &Table,
        keys: KeyFn<'_>,
        par: &Parallelism,
        max_postings: usize,
    ) -> Self {
        let ranges = chunks(right.len(), par.threads());
        let partials: Vec<IndexPartial> = par.map(&ranges, |range| {
            let mut postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
            let mut key_count = Vec::with_capacity(range.len());
            for r in range.clone() {
                let ks = keys(right, r);
                key_count.push(ks.len() as u32);
                for k in ks {
                    postings.entry(k).or_default().push(r as u32);
                }
            }
            (postings, key_count)
        });
        let mut postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        let mut key_count: Vec<u32> = Vec::with_capacity(right.len());
        for (part, counts) in partials {
            for (k, mut ids) in part {
                postings.entry(k).or_default().append(&mut ids);
            }
            key_count.extend(counts);
        }
        let mut skipped = 0u64;
        if max_postings < usize::MAX {
            postings.retain(|_, ids| {
                if ids.len() > max_postings {
                    skipped += 1;
                    false
                } else {
                    true
                }
            });
        }
        InvertedIndex {
            postings,
            key_count,
            skipped,
        }
    }

    /// Number of distinct keys indexed (after capping).
    pub(crate) fn keys_indexed(&self) -> usize {
        self.postings.len()
    }

    /// Posting lists dropped by the frequency cap.
    pub(crate) fn keys_skipped(&self) -> u64 {
        self.skipped
    }

    /// Probe every left record against the index in blocks of
    /// `probe_block` records, fanning each block out over `par` and
    /// emitting one sink chunk per block. The pair sequence is strictly
    /// increasing in `(left, right)` for any thread count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_stream(
        &self,
        left: &Table,
        keys: KeyFn<'_>,
        accept: AcceptFn<'_>,
        par: &Parallelism,
        probe_block: usize,
        obs: &Registry,
        sink: &mut dyn FnMut(&[Pair]) -> Result<(), AlemError>,
    ) -> Result<(), AlemError> {
        let n_left = left.len();
        let n_right = self.key_count.len();
        let block = probe_block.max(1);
        let mut start = 0usize;
        let mut block_pairs: Vec<Pair> = Vec::new();
        while start < n_left {
            let end = (start + block).min(n_left);
            let span = obs.span("block.probe");
            let sub: Vec<Range<usize>> = chunks(end - start, par.threads())
                .into_iter()
                .map(|r| r.start + start..r.end + start)
                .collect();
            let parts: Vec<Vec<Pair>> = par.map(&sub, |range| {
                // Per-worker dense overlap counts, reset via the
                // `touched` list: O(|right|) once per chunk, no hashing
                // in the hot loop.
                let mut out = Vec::new();
                let mut overlap = vec![0u32; n_right];
                let mut touched: Vec<u32> = Vec::new();
                for l in range.clone() {
                    let lkeys = keys(left, l);
                    if lkeys.is_empty() {
                        continue;
                    }
                    for k in &lkeys {
                        if let Some(rs) = self.postings.get(k.as_str()) {
                            for &r in rs {
                                if overlap[r as usize] == 0 {
                                    touched.push(r);
                                }
                                overlap[r as usize] += 1;
                            }
                        }
                    }
                    // Ascending right ids keep the whole stream sorted
                    // without a global sort.
                    touched.sort_unstable();
                    for &r in &touched {
                        let inter = overlap[r as usize];
                        overlap[r as usize] = 0;
                        if accept(inter, lkeys.len(), self.key_count[r as usize]) {
                            out.push((l as u32, r));
                        }
                    }
                    touched.clear();
                }
                out
            });
            span.finish();
            block_pairs.clear();
            for part in parts {
                block_pairs.extend(part);
            }
            obs.counter_add("block.records_probed", (end - start) as u64);
            obs.counter_add("block.pairs_emitted", block_pairs.len() as u64);
            if !block_pairs.is_empty() {
                sink(&block_pairs)?;
            }
            start = end;
        }
        Ok(())
    }
}
