//! `alem-block` — streaming candidate generation from raw tables.
//!
//! The active-learning loop of `alem-core` consumes a *candidate pool*;
//! this crate produces one at scale, straight from the two record tables
//! of an [`EmDataset`](alem_core::schema::EmDataset). Every strategy
//! implements the [`CandidateSource`] seam (deterministic, chunked,
//! sorted pair streaming), so `Corpus::from_candidates` — and anything
//! else downstream — is agnostic to how the pairs were generated:
//!
//! * [`TokenIndex`] — a parallel token inverted index with a Jaccard
//!   accept threshold: the scale-out generalization of the paper's §6
//!   blocking filter (the sequential original,
//!   [`BlockingConfig`], is re-exported here and remains the
//!   paper-faithful baseline). An optional posting-length cap skips
//!   stop-tokens so probe cost stays near-linear on skewed vocabularies.
//! * [`QGramIndex`] — a character q-gram inverted index with an absolute
//!   shared-gram threshold; robust to typos that break whole-token
//!   overlap.
//! * [`SortedNeighborhood`] — classic sorted-neighborhood blocking: both
//!   tables merged into one key-sorted sequence, candidates drawn from a
//!   sliding window.
//! * [`MinHashLsh`] — minhash signatures over record token sets, banded
//!   LSH-style; collision in any band makes a candidate.
//!
//! All four are **deterministic** (seeded hashing, ordered maps, no
//! ambient RNG or time), **parallelized** via `alem-par` (index build and
//! probe fan out over fixed chunks; thread count can only change
//! wall-clock time, never the pair stream), and **instrumented** via
//! `alem-obs` under the `block.*` family. Blocking quality — recall,
//! reduction ratio, and group-wise recall — is measured per config with
//! [`BlockingReport`]; the `bench_blocking` binary in `alem-bench` sweeps
//! all strategies over the scaled social corpus.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod index;
mod minhash;
mod qgram;
mod sorted;
mod token;

pub use alem_core::blocking::BlockingConfig;
pub use alem_core::candidates::{
    collect_validated, BlockingReport, CandidateSource, GroupRecall, PairHasher, DEFAULT_CHUNK,
};
pub use minhash::{MinHashLsh, MinHashLshBuilder};
pub use qgram::{QGramIndex, QGramIndexBuilder};
pub use sorted::{SortedNeighborhood, SortedNeighborhoodBuilder};
pub use token::{TokenIndex, TokenIndexBuilder};

use alem_core::schema::Table;

/// Sorted, deduplicated token set over the selected attributes of a
/// record (all attributes when `attr` is `None`). Single-character
/// tokens are dropped — they collide across unrelated records and would
/// swamp any inverted index. Mirrors the tokenization of the core
/// Jaccard filter so `TokenIndex` without a posting cap reproduces
/// `BlockingConfig` exactly.
pub(crate) fn record_tokens(table: &Table, idx: usize, attr: Option<usize>) -> Vec<String> {
    let mut toks: Vec<String> = Vec::new();
    let record = table.record(idx);
    let values: Vec<Option<&str>> = match attr {
        Some(a) => vec![record.value(a)],
        None => record.values().iter().map(|v| v.as_deref()).collect(),
    };
    for v in values.into_iter().flatten() {
        let norm = textsim::tokenize::normalize(v);
        toks.extend(
            textsim::tokenize::tokens(&norm)
                .into_iter()
                .filter(|t| t.chars().count() >= 2),
        );
    }
    toks.sort_unstable();
    toks.dedup();
    toks
}

/// Normalized concatenation of the selected attributes of a record (all
/// when `attr` is `None`) — the sort key of [`SortedNeighborhood`].
pub(crate) fn record_text(table: &Table, idx: usize, attr: Option<usize>) -> String {
    let record = table.record(idx);
    let values: Vec<Option<&str>> = match attr {
        Some(a) => vec![record.value(a)],
        None => record.values().iter().map(|v| v.as_deref()).collect(),
    };
    let mut out = String::new();
    for v in values.into_iter().flatten() {
        let norm = textsim::tokenize::normalize(v);
        if norm.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&norm);
    }
    out
}

/// Render an optional attribute selector for `describe()` strings.
pub(crate) fn attr_label(attr: Option<usize>) -> String {
    match attr {
        Some(a) => format!("attr={a}"),
        None => "attr=all".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alem_core::schema::{AttrKind, Record, Schema, Table};

    fn table() -> Table {
        let schema = Schema::new(vec![("name", AttrKind::Text), ("city", AttrKind::Text)]);
        Table::new(
            "t",
            schema,
            vec![Record::new(vec![
                Some("Apple iPod-Nano".into()),
                Some("NYC city".into()),
            ])],
        )
    }

    #[test]
    fn record_tokens_all_attrs_sorted_dedup() {
        let t = table();
        let toks = record_tokens(&t, 0, None);
        assert_eq!(toks, vec!["apple", "city", "ipod", "nano", "nyc"]);
    }

    #[test]
    fn record_tokens_single_attr() {
        let t = table();
        assert_eq!(record_tokens(&t, 0, Some(1)), vec!["city", "nyc"]);
    }

    #[test]
    fn record_text_concatenates_normalized() {
        let t = table();
        assert_eq!(record_text(&t, 0, None), "apple ipod nano nyc city");
        assert_eq!(record_text(&t, 0, Some(0)), "apple ipod nano");
    }
}
