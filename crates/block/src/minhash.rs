//! Minhash-LSH blocking: seeded minhash signatures over record token
//! sets, banded so that a collision in any band makes a candidate pair.

use crate::{attr_label, record_tokens};
use alem_core::candidates::{CandidateSource, DEFAULT_CHUNK};
use alem_core::error::AlemError;
use alem_core::schema::{EmDataset, Pair, Table};
use alem_obs::Registry;
use alem_par::Parallelism;
use std::collections::BTreeMap;

/// 64-bit finalizer (splitmix64): bijective, avalanching — one
/// evaluation per token per hash function.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string — the stable base hash of a token.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Minhash-LSH blocking.
///
/// Each record's token set is summarized by `bands × rows` minhash
/// values (seeded, data-independent hash family — fully deterministic);
/// the signature is cut into `bands` bands of `rows` values, and two
/// records collide when any band hashes identically. The standard LSH
/// S-curve applies: more rows per band → precision, more bands →
/// recall. Buckets larger than `max_bucket` on either side are skipped
/// (they pair everything with everything and carry no signal).
///
/// ```
/// use alem_block::{CandidateSource, MinHashLsh};
/// let src = MinHashLsh::builder().bands(8).rows(2).seed(7).build();
/// assert!(src.describe().starts_with("minhash-lsh"));
/// ```
#[derive(Clone)]
pub struct MinHashLsh {
    bands: usize,
    rows: usize,
    seed: u64,
    attr: Option<usize>,
    max_bucket: usize,
    par: Parallelism,
    obs: Registry,
}

/// Builder for [`MinHashLsh`]; start from [`MinHashLsh::builder`].
#[derive(Clone)]
pub struct MinHashLshBuilder {
    inner: MinHashLsh,
}

impl MinHashLshBuilder {
    /// Number of bands (default 8; minimum 1).
    pub fn bands(mut self, b: usize) -> Self {
        self.inner.bands = b.max(1);
        self
    }

    /// Minhash values per band (default 2; minimum 1).
    pub fn rows(mut self, r: usize) -> Self {
        self.inner.rows = r.max(1);
        self
    }

    /// Seed of the hash family (default 0). Different seeds give
    /// different — equally valid — candidate sets.
    pub fn seed(mut self, s: u64) -> Self {
        self.inner.seed = s;
        self
    }

    /// Hash only this attribute index instead of all attributes.
    pub fn attr(mut self, attr: usize) -> Self {
        self.inner.attr = Some(attr);
        self
    }

    /// Skip band buckets holding more than `cap` records on either side
    /// (default 1024).
    pub fn max_bucket(mut self, cap: usize) -> Self {
        self.inner.max_bucket = cap.max(1);
        self
    }

    /// Thread configuration for signature computation (default: auto).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.inner.par = par;
        self
    }

    /// Observability registry for `block.*` spans and counters
    /// (default: disabled).
    pub fn obs(mut self, obs: Registry) -> Self {
        self.inner.obs = obs;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> MinHashLsh {
        self.inner
    }
}

impl MinHashLsh {
    /// Start a builder: 8 bands × 2 rows, seed 0, all attributes,
    /// bucket cap 1024.
    pub fn builder() -> MinHashLshBuilder {
        MinHashLshBuilder {
            inner: MinHashLsh {
                bands: 8,
                rows: 2,
                seed: 0,
                attr: None,
                max_bucket: 1024,
                par: Parallelism::auto(),
                obs: Registry::disabled(),
            },
        }
    }

    /// Minhash signature of one record, `None` when it has no tokens
    /// (empty records collide with everything and must not hash).
    fn signature(&self, table: &Table, idx: usize) -> Option<Vec<u64>> {
        let toks = record_tokens(table, idx, self.attr);
        if toks.is_empty() {
            return None;
        }
        let k = self.bands * self.rows;
        let base: Vec<u64> = toks.iter().map(|t| fnv1a(t.as_bytes())).collect();
        let mut sig = Vec::with_capacity(k);
        for i in 0..k {
            let salt = mix64(self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let m = base
                .iter()
                .map(|&h| mix64(h ^ salt))
                .min()
                .unwrap_or(u64::MAX);
            sig.push(m);
        }
        Some(sig)
    }

    /// Hash one band of a signature into a bucket key, salted by the
    /// band index so identical value runs in different bands don't
    /// collide.
    fn band_key(band: usize, values: &[u64]) -> u64 {
        let mut h = mix64(0x42 ^ band as u64);
        for &v in values {
            h = mix64(h ^ v);
        }
        h
    }
}

impl CandidateSource for MinHashLsh {
    fn describe(&self) -> String {
        format!(
            "minhash-lsh(bands={},rows={},seed={},{},bucket<={})",
            self.bands,
            self.rows,
            self.seed,
            attr_label(self.attr),
            self.max_bucket
        )
    }

    fn size_hint(&self, ds: &EmDataset) -> (usize, Option<usize>) {
        (0, usize::try_from(ds.total_pairs()).ok())
    }

    fn stream(
        &self,
        ds: &EmDataset,
        sink: &mut dyn FnMut(&[Pair]) -> Result<(), AlemError>,
    ) -> Result<(), AlemError> {
        let span = self.obs.span("block.signatures");
        let left_ids: Vec<u32> = (0..ds.left.len() as u32).collect();
        let right_ids: Vec<u32> = (0..ds.right.len() as u32).collect();
        let left_sigs: Vec<Option<Vec<u64>>> = self
            .par
            .map(&left_ids, |&i| self.signature(&ds.left, i as usize));
        let right_sigs: Vec<Option<Vec<u64>>> = self
            .par
            .map(&right_ids, |&i| self.signature(&ds.right, i as usize));
        span.finish();

        let span = self.obs.span("block.banding");
        let mut pairs: Vec<Pair> = Vec::new();
        let mut skipped_buckets = 0u64;
        for band in 0..self.bands {
            let lo = band * self.rows;
            let hi = lo + self.rows;
            // Bucket key → (left ids, right ids), ascending by
            // construction: ids are pushed in id order.
            let mut buckets: BTreeMap<u64, (Vec<u32>, Vec<u32>)> = BTreeMap::new();
            for (i, sig) in left_sigs.iter().enumerate() {
                if let Some(sig) = sig {
                    let key = Self::band_key(band, &sig[lo..hi]);
                    buckets.entry(key).or_default().0.push(i as u32);
                }
            }
            for (i, sig) in right_sigs.iter().enumerate() {
                if let Some(sig) = sig {
                    let key = Self::band_key(band, &sig[lo..hi]);
                    buckets.entry(key).or_default().1.push(i as u32);
                }
            }
            for (_, (ls, rs)) in buckets {
                if ls.is_empty() || rs.is_empty() {
                    continue;
                }
                if ls.len() > self.max_bucket || rs.len() > self.max_bucket {
                    skipped_buckets += 1;
                    continue;
                }
                for &l in &ls {
                    for &r in &rs {
                        pairs.push((l, r));
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        span.finish();
        self.obs
            .counter_add("block.buckets_skipped", skipped_buckets);
        self.obs
            .counter_add("block.pairs_emitted", pairs.len() as u64);

        for chunk in pairs.chunks(DEFAULT_CHUNK) {
            sink(chunk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alem_core::schema::{AttrKind, Record, Schema};

    fn table(name: &str, vals: &[&str]) -> Table {
        let schema = Schema::new(vec![("name", AttrKind::Text)]);
        let records = vals
            .iter()
            .map(|v| Record::new(vec![Some((*v).to_owned())]))
            .collect();
        Table::new(name, schema, records)
    }

    fn dataset() -> EmDataset {
        EmDataset {
            left: table(
                "l",
                &["apple ipod nano 4gb silver", "sony walkman mp3 player"],
            ),
            right: table(
                "r",
                &["apple ipod nano 4gb silver", "completely different thing"],
            ),
            matches: [(0, 0)].into_iter().collect(),
            name: "toy".into(),
        }
    }

    #[test]
    fn identical_records_always_collide() {
        let ds = dataset();
        let pairs = MinHashLsh::builder()
            .bands(4)
            .rows(2)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        // Identical token sets hash identically in every band.
        assert!(pairs.contains(&(0, 0)));
    }

    #[test]
    fn seed_changes_candidates_deterministically() {
        let ds = dataset();
        let a = MinHashLsh::builder().seed(1).build();
        let b = MinHashLsh::builder().seed(1).build();
        assert_eq!(a.fingerprint(&ds).unwrap(), b.fingerprint(&ds).unwrap());
    }

    #[test]
    fn thread_count_does_not_change_stream() {
        let ds = dataset();
        let fp1 = MinHashLsh::builder()
            .parallelism(Parallelism::sequential())
            .build()
            .fingerprint(&ds)
            .unwrap();
        let fp4 = MinHashLsh::builder()
            .parallelism(Parallelism::fixed(4))
            .build()
            .fingerprint(&ds)
            .unwrap();
        assert_eq!(fp1, fp4);
    }

    #[test]
    fn empty_records_never_pair() {
        let mut ds = dataset();
        ds.left = table("l", &["", "sony walkman"]);
        let pairs = MinHashLsh::builder().build().collect_pairs(&ds).unwrap();
        assert!(pairs.iter().all(|&(l, _)| l != 0));
    }
}
