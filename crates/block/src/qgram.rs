//! Character q-gram inverted-index blocking: keep a pair when the two
//! records share at least `min_shared` distinct q-grams. Robust to
//! typos and token-boundary noise that break whole-token overlap.

use crate::index::InvertedIndex;
use crate::token::DEFAULT_PROBE_BLOCK;
use crate::{attr_label, record_text};
use alem_core::candidates::CandidateSource;
use alem_core::error::AlemError;
use alem_core::schema::{EmDataset, Pair, Table};
use alem_obs::Registry;
use alem_par::Parallelism;

/// Distinct, sorted q-grams of a record's normalized text.
fn record_qgrams(table: &Table, idx: usize, attr: Option<usize>, q: usize) -> Vec<String> {
    let text = record_text(table, idx, attr);
    let mut grams = textsim::tokenize::qgrams(&text, q);
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// Q-gram inverted-index blocking.
///
/// Records are normalized, concatenated, and split into overlapping
/// character q-grams; a pair survives when the two records share at
/// least `min_shared` *distinct* grams. Because a single typo destroys
/// at most `q` grams, near-duplicates keep passing where token-level
/// Jaccard would drop to zero.
///
/// Frequent grams (posting list longer than `max_postings`) are skipped
/// during indexing — on natural text the gram distribution is heavily
/// skewed and the cap is what keeps probing near-linear.
///
/// ```
/// use alem_block::{CandidateSource, QGramIndex};
/// let src = QGramIndex::builder().q(3).min_shared(4).build();
/// assert!(src.describe().starts_with("qgram-index"));
/// ```
#[derive(Clone)]
pub struct QGramIndex {
    q: usize,
    min_shared: u32,
    attr: Option<usize>,
    max_postings: usize,
    probe_block: usize,
    par: Parallelism,
    obs: Registry,
}

/// Builder for [`QGramIndex`]; start from [`QGramIndex::builder`].
#[derive(Clone)]
pub struct QGramIndexBuilder {
    inner: QGramIndex,
}

impl QGramIndexBuilder {
    /// Gram length (default 3).
    pub fn q(mut self, q: usize) -> Self {
        self.inner.q = q.max(1);
        self
    }

    /// Minimum shared distinct grams for a pair to survive (default 4).
    pub fn min_shared(mut self, n: u32) -> Self {
        self.inner.min_shared = n.max(1);
        self
    }

    /// Gram only this attribute index instead of all attributes.
    pub fn attr(mut self, attr: usize) -> Self {
        self.inner.attr = Some(attr);
        self
    }

    /// Skip grams whose posting list exceeds `cap` right records
    /// (default 4096).
    pub fn max_postings(mut self, cap: usize) -> Self {
        self.inner.max_postings = cap;
        self
    }

    /// Left records probed per parallel round (default 8192).
    pub fn probe_block(mut self, n: usize) -> Self {
        self.inner.probe_block = n;
        self
    }

    /// Thread configuration for index build and probe (default: auto).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.inner.par = par;
        self
    }

    /// Observability registry for `block.*` spans and counters
    /// (default: disabled).
    pub fn obs(mut self, obs: Registry) -> Self {
        self.inner.obs = obs;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> QGramIndex {
        self.inner
    }
}

impl QGramIndex {
    /// Start a builder: trigrams, 4 shared grams, all attributes,
    /// posting cap 4096.
    pub fn builder() -> QGramIndexBuilder {
        QGramIndexBuilder {
            inner: QGramIndex {
                q: 3,
                min_shared: 4,
                attr: None,
                max_postings: 4096,
                probe_block: DEFAULT_PROBE_BLOCK,
                par: Parallelism::auto(),
                obs: Registry::disabled(),
            },
        }
    }
}

impl CandidateSource for QGramIndex {
    fn describe(&self) -> String {
        format!(
            "qgram-index(q={},shared>={},{},cap={})",
            self.q,
            self.min_shared,
            attr_label(self.attr),
            self.max_postings
        )
    }

    fn size_hint(&self, ds: &EmDataset) -> (usize, Option<usize>) {
        (0, usize::try_from(ds.total_pairs()).ok())
    }

    fn stream(
        &self,
        ds: &EmDataset,
        sink: &mut dyn FnMut(&[Pair]) -> Result<(), AlemError>,
    ) -> Result<(), AlemError> {
        let (attr, q) = (self.attr, self.q);
        let keys = move |t: &Table, i: usize| record_qgrams(t, i, attr, q);
        let span = self.obs.span("block.index_build");
        let index = InvertedIndex::build(&ds.right, &keys, &self.par, self.max_postings);
        span.finish();
        self.obs
            .counter_add("block.index_keys", index.keys_indexed() as u64);
        self.obs
            .counter_add("block.index_keys_skipped", index.keys_skipped());
        let min_shared = self.min_shared;
        let accept = move |inter: u32, _lk: usize, _rk: u32| inter >= min_shared;
        index.probe_stream(
            &ds.left,
            &keys,
            &accept,
            &self.par,
            self.probe_block,
            &self.obs,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alem_core::schema::{AttrKind, Record, Schema};

    fn table(name: &str, vals: &[&str]) -> Table {
        let schema = Schema::new(vec![("name", AttrKind::Text)]);
        let records = vals
            .iter()
            .map(|v| Record::new(vec![Some((*v).to_owned())]))
            .collect();
        Table::new(name, schema, records)
    }

    fn dataset() -> EmDataset {
        EmDataset {
            // "walkmann" is a typo of "walkman": zero token overlap,
            // plenty of shared trigrams.
            left: table("l", &["sony walkmann", "dell laptop"]),
            right: table("r", &["sony walkman mp3", "hp printer"]),
            matches: [(0, 0)].into_iter().collect(),
            name: "toy".into(),
        }
    }

    #[test]
    fn survives_typos_that_break_tokens() {
        let ds = dataset();
        let pairs = QGramIndex::builder()
            .q(3)
            .min_shared(4)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        assert!(pairs.contains(&(0, 0)));
        assert!(!pairs.contains(&(1, 1)));
    }

    #[test]
    fn min_shared_monotone() {
        let ds = dataset();
        let loose = QGramIndex::builder()
            .min_shared(2)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        let tight = QGramIndex::builder()
            .min_shared(8)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        assert!(tight.iter().all(|p| loose.contains(p)));
    }

    #[test]
    fn thread_count_does_not_change_stream() {
        let ds = dataset();
        let fp1 = QGramIndex::builder()
            .parallelism(Parallelism::sequential())
            .build()
            .fingerprint(&ds)
            .unwrap();
        let fp4 = QGramIndex::builder()
            .parallelism(Parallelism::fixed(4))
            .probe_block(1)
            .build()
            .fingerprint(&ds)
            .unwrap();
        assert_eq!(fp1, fp4);
    }
}
