//! Sorted-neighborhood blocking: both tables merged into one key-sorted
//! sequence, candidate pairs drawn from a sliding window.

use crate::{attr_label, record_text};
use alem_core::candidates::{CandidateSource, DEFAULT_CHUNK};
use alem_core::error::AlemError;
use alem_core::schema::{EmDataset, Pair};
use alem_obs::Registry;
use alem_par::{chunks, Parallelism};

/// Classic sorted-neighborhood blocking (Hernández & Stolfo).
///
/// Every record of both tables is given a sort key (the normalized
/// concatenation of the selected attributes); the merged sequence is
/// sorted by `(key, side, id)` and every left/right pair within a
/// sliding window of `window` consecutive entries becomes a candidate.
/// Cost is `O(n log n + n·window)` — linear in the data for a fixed
/// window, independent of any similarity threshold, which makes it the
/// strategy of choice when index-based probing degenerates on skewed
/// vocabularies.
///
/// ```
/// use alem_block::{CandidateSource, SortedNeighborhood};
/// let src = SortedNeighborhood::builder().window(10).build();
/// assert!(src.describe().starts_with("sorted-neighborhood"));
/// ```
#[derive(Clone)]
pub struct SortedNeighborhood {
    window: usize,
    attr: Option<usize>,
    par: Parallelism,
    obs: Registry,
}

/// Builder for [`SortedNeighborhood`]; start from
/// [`SortedNeighborhood::builder`].
#[derive(Clone)]
pub struct SortedNeighborhoodBuilder {
    inner: SortedNeighborhood,
}

impl SortedNeighborhoodBuilder {
    /// Window width in merged-sequence entries (default 10; minimum 2).
    pub fn window(mut self, w: usize) -> Self {
        self.inner.window = w.max(2);
        self
    }

    /// Sort on this attribute index only instead of all attributes.
    pub fn attr(mut self, attr: usize) -> Self {
        self.inner.attr = Some(attr);
        self
    }

    /// Thread configuration for key extraction and window scan
    /// (default: auto).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.inner.par = par;
        self
    }

    /// Observability registry for `block.*` spans and counters
    /// (default: disabled).
    pub fn obs(mut self, obs: Registry) -> Self {
        self.inner.obs = obs;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> SortedNeighborhood {
        self.inner
    }
}

impl SortedNeighborhood {
    /// Start a builder: window 10, all attributes as the sort key.
    pub fn builder() -> SortedNeighborhoodBuilder {
        SortedNeighborhoodBuilder {
            inner: SortedNeighborhood {
                window: 10,
                attr: None,
                par: Parallelism::auto(),
                obs: Registry::disabled(),
            },
        }
    }
}

/// One entry of the merged sequence: sort key, side (0 = left,
/// 1 = right), record id. Side breaks key ties deterministically.
type Entry = (String, u8, u32);

impl CandidateSource for SortedNeighborhood {
    fn describe(&self) -> String {
        format!(
            "sorted-neighborhood(w={},{})",
            self.window,
            attr_label(self.attr)
        )
    }

    fn size_hint(&self, ds: &EmDataset) -> (usize, Option<usize>) {
        // Each merged entry pairs with at most `window - 1` neighbors.
        let n = ds.left.len() + ds.right.len();
        (0, n.checked_mul(self.window.saturating_sub(1)))
    }

    fn stream(
        &self,
        ds: &EmDataset,
        sink: &mut dyn FnMut(&[Pair]) -> Result<(), AlemError>,
    ) -> Result<(), AlemError> {
        let attr = self.attr;
        let span = self.obs.span("block.sort_keys");
        let left_ids: Vec<u32> = (0..ds.left.len() as u32).collect();
        let right_ids: Vec<u32> = (0..ds.right.len() as u32).collect();
        let mut entries: Vec<Entry> = self
            .par
            .map(&left_ids, |&i| {
                (record_text(&ds.left, i as usize, attr), 0u8, i)
            })
            .into_iter()
            .chain(self.par.map(&right_ids, |&i| {
                (record_text(&ds.right, i as usize, attr), 1u8, i)
            }))
            .collect();
        entries.sort_unstable();
        span.finish();

        let span = self.obs.span("block.window_scan");
        let n = entries.len();
        let w = self.window;
        let ranges = chunks(n, self.par.threads());
        let parts: Vec<Vec<Pair>> = self.par.map(&ranges, |range| {
            let mut out = Vec::new();
            for i in range.clone() {
                let (side_i, id_i) = (entries[i].1, entries[i].2);
                let hi = (i + w).min(n);
                for entry in &entries[i + 1..hi] {
                    let (side_j, id_j) = (entry.1, entry.2);
                    if side_i != side_j {
                        let (l, r) = if side_i == 0 {
                            (id_i, id_j)
                        } else {
                            (id_j, id_i)
                        };
                        out.push((l, r));
                    }
                }
            }
            out
        });
        let mut pairs: Vec<Pair> = parts.into_iter().flatten().collect();
        pairs.sort_unstable();
        pairs.dedup();
        span.finish();
        self.obs
            .counter_add("block.pairs_emitted", pairs.len() as u64);

        for chunk in pairs.chunks(DEFAULT_CHUNK) {
            sink(chunk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alem_core::schema::{AttrKind, Record, Schema, Table};

    fn table(name: &str, vals: &[&str]) -> Table {
        let schema = Schema::new(vec![("name", AttrKind::Text)]);
        let records = vals
            .iter()
            .map(|v| Record::new(vec![Some((*v).to_owned())]))
            .collect();
        Table::new(name, schema, records)
    }

    fn dataset() -> EmDataset {
        EmDataset {
            left: table("l", &["anna schmidt", "karl weber", "zoe young"]),
            right: table("r", &["anna schmit", "karl webber", "max muster"]),
            matches: [(0, 0), (1, 1)].into_iter().collect(),
            name: "toy".into(),
        }
    }

    #[test]
    fn window_pairs_adjacent_keys() {
        let ds = dataset();
        let pairs = SortedNeighborhood::builder()
            .window(2)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        // "anna schmidt"/"anna schmit" and "karl weber"/"karl webber"
        // sort adjacently.
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(1, 1)));
    }

    #[test]
    fn wider_window_is_superset() {
        let ds = dataset();
        let narrow = SortedNeighborhood::builder()
            .window(2)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        let wide = SortedNeighborhood::builder()
            .window(4)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        assert!(narrow.iter().all(|p| wide.contains(p)));
        assert!(wide.len() >= narrow.len());
    }

    #[test]
    fn full_window_is_cartesian_product() {
        let ds = dataset();
        let all = SortedNeighborhood::builder()
            .window(6)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn thread_count_does_not_change_stream() {
        let ds = dataset();
        let fp1 = SortedNeighborhood::builder()
            .window(3)
            .parallelism(Parallelism::sequential())
            .build()
            .fingerprint(&ds)
            .unwrap();
        let fp4 = SortedNeighborhood::builder()
            .window(3)
            .parallelism(Parallelism::fixed(4))
            .build()
            .fingerprint(&ds)
            .unwrap();
        assert_eq!(fp1, fp4);
    }
}
