//! Parallel token inverted-index blocking with a Jaccard accept
//! threshold — the scale-out generalization of the core
//! [`BlockingConfig`](alem_core::blocking::BlockingConfig) filter.

use crate::index::InvertedIndex;
use crate::{attr_label, record_tokens};
use alem_core::candidates::CandidateSource;
use alem_core::error::AlemError;
use alem_core::schema::{EmDataset, Pair};
use alem_obs::Registry;
use alem_par::Parallelism;

/// Default left-record block size per probe round: large enough to
/// amortize fan-out, small enough that one block's candidates fit
/// comfortably in memory.
pub(crate) const DEFAULT_PROBE_BLOCK: usize = 8192;

/// Token inverted-index blocking: keep a pair when the Jaccard
/// similarity of the two records' token sets reaches `threshold`.
///
/// With no posting cap this yields exactly the pairs of
/// [`BlockingConfig`](alem_core::blocking::BlockingConfig) at the same
/// threshold; `max_postings` additionally skips stop-tokens (posting
/// lists longer than the cap) so probe cost stays near-linear on skewed
/// vocabularies — at the price of possibly losing pairs whose only
/// shared tokens are ubiquitous.
///
/// ```
/// use alem_block::{CandidateSource, TokenIndex};
/// let src = TokenIndex::builder()
///     .threshold(0.25)
///     .max_postings(1024)
///     .build();
/// assert!(src.describe().starts_with("token-index"));
/// ```
#[derive(Clone)]
pub struct TokenIndex {
    threshold: f64,
    attr: Option<usize>,
    max_postings: usize,
    probe_block: usize,
    par: Parallelism,
    obs: Registry,
}

/// Builder for [`TokenIndex`]; start from [`TokenIndex::builder`].
#[derive(Clone)]
pub struct TokenIndexBuilder {
    inner: TokenIndex,
}

impl TokenIndexBuilder {
    /// Jaccard threshold in `[0, 1]` (default: the paper's 0.1875).
    pub fn threshold(mut self, t: f64) -> Self {
        self.inner.threshold = t;
        self
    }

    /// Tokenize only this attribute index instead of all attributes.
    pub fn attr(mut self, attr: usize) -> Self {
        self.inner.attr = Some(attr);
        self
    }

    /// Skip tokens whose posting list exceeds `cap` right records
    /// (default: uncapped).
    pub fn max_postings(mut self, cap: usize) -> Self {
        self.inner.max_postings = cap;
        self
    }

    /// Left records probed per parallel round (default 8192).
    pub fn probe_block(mut self, n: usize) -> Self {
        self.inner.probe_block = n;
        self
    }

    /// Thread configuration for index build and probe (default: auto).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.inner.par = par;
        self
    }

    /// Observability registry for `block.*` spans and counters
    /// (default: disabled).
    pub fn obs(mut self, obs: Registry) -> Self {
        self.inner.obs = obs;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> TokenIndex {
        self.inner
    }
}

impl TokenIndex {
    /// Start a builder with the paper's default threshold (0.1875), all
    /// attributes, no posting cap.
    pub fn builder() -> TokenIndexBuilder {
        TokenIndexBuilder {
            inner: TokenIndex {
                threshold: 0.1875,
                attr: None,
                max_postings: usize::MAX,
                probe_block: DEFAULT_PROBE_BLOCK,
                par: Parallelism::auto(),
                obs: Registry::disabled(),
            },
        }
    }
}

impl CandidateSource for TokenIndex {
    fn describe(&self) -> String {
        let cap = if self.max_postings == usize::MAX {
            "none".to_owned()
        } else {
            self.max_postings.to_string()
        };
        format!(
            "token-index(t={},{},cap={})",
            self.threshold,
            attr_label(self.attr),
            cap
        )
    }

    fn size_hint(&self, ds: &EmDataset) -> (usize, Option<usize>) {
        (0, usize::try_from(ds.total_pairs()).ok())
    }

    fn stream(
        &self,
        ds: &EmDataset,
        sink: &mut dyn FnMut(&[Pair]) -> Result<(), AlemError>,
    ) -> Result<(), AlemError> {
        let attr = self.attr;
        let keys = move |t: &alem_core::schema::Table, i: usize| record_tokens(t, i, attr);
        let span = self.obs.span("block.index_build");
        let index = InvertedIndex::build(&ds.right, &keys, &self.par, self.max_postings);
        span.finish();
        self.obs
            .counter_add("block.index_keys", index.keys_indexed() as u64);
        self.obs
            .counter_add("block.index_keys_skipped", index.keys_skipped());
        let threshold = self.threshold;
        let accept = move |inter: u32, lkeys: usize, rkeys: u32| {
            let union = lkeys + rkeys as usize - inter as usize;
            union > 0 && f64::from(inter) / union as f64 >= threshold
        };
        index.probe_stream(
            &ds.left,
            &keys,
            &accept,
            &self.par,
            self.probe_block,
            &self.obs,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alem_core::blocking::BlockingConfig;
    use alem_core::schema::{AttrKind, Record, Schema, Table};

    fn table(name: &str, vals: &[&str]) -> Table {
        let schema = Schema::new(vec![("name", AttrKind::Text)]);
        let records = vals
            .iter()
            .map(|v| Record::new(vec![Some((*v).to_owned())]))
            .collect();
        Table::new(name, schema, records)
    }

    fn dataset() -> EmDataset {
        EmDataset {
            left: table("l", &["apple ipod nano", "sony walkman", "dell laptop"]),
            right: table(
                "r",
                &["apple ipod nano silver", "sony walkman mp3", "hp printer"],
            ),
            matches: [(0, 0), (1, 1)].into_iter().collect(),
            name: "toy".into(),
        }
    }

    #[test]
    fn uncapped_matches_core_blocking() {
        let ds = dataset();
        for t in [0.0, 0.1, 0.4, 0.99] {
            let core = BlockingConfig {
                jaccard_threshold: t,
            }
            .block(&ds);
            let ours = TokenIndex::builder()
                .threshold(t)
                .build()
                .collect_pairs(&ds)
                .unwrap();
            assert_eq!(ours, core, "threshold {t}");
        }
    }

    #[test]
    fn posting_cap_only_removes_pairs() {
        let ds = dataset();
        let full = TokenIndex::builder()
            .threshold(0.1)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        let capped = TokenIndex::builder()
            .threshold(0.1)
            .max_postings(1)
            .build()
            .collect_pairs(&ds)
            .unwrap();
        assert!(capped.iter().all(|p| full.contains(p)));
    }

    #[test]
    fn thread_count_does_not_change_stream() {
        let ds = dataset();
        let fp1 = TokenIndex::builder()
            .threshold(0.1)
            .parallelism(Parallelism::sequential())
            .probe_block(2)
            .build()
            .fingerprint(&ds)
            .unwrap();
        let fp4 = TokenIndex::builder()
            .threshold(0.1)
            .parallelism(Parallelism::fixed(4))
            .probe_block(1)
            .build()
            .fingerprint(&ds)
            .unwrap();
        assert_eq!(fp1, fp4);
    }

    #[test]
    fn single_attr_restricts_tokens() {
        let ds = dataset();
        let src = TokenIndex::builder().threshold(0.1).attr(0).build();
        assert!(src.describe().contains("attr=0"));
        let pairs = src.collect_pairs(&ds).unwrap();
        assert!(pairs.contains(&(0, 0)));
    }
}
