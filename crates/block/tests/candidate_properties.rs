//! Contract tests for every `CandidateSource` in `alem-block`: streams
//! are sorted, deduplicated, in-bounds, and byte-identical at 1/2/8
//! threads; plus golden blocking-quality numbers on the smoke-scale
//! social corpus.

use alem_block::{
    collect_validated, BlockingConfig, BlockingReport, CandidateSource, MinHashLsh, QGramIndex,
    SortedNeighborhood, TokenIndex,
};
use alem_core::schema::{AttrKind, EmDataset, Record, Schema, Table};
use alem_par::Parallelism;
use datagen::SocialConfig;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Small word vocabulary: guarantees plenty of token collisions, the
/// regime where blocking strategies actually do work.
const WORDS: [&str; 20] = [
    "apple", "ipod", "nano", "silver", "sony", "walkman", "mp3", "player", "dell", "laptop",
    "printer", "canon", "camera", "lens", "zoom", "phone", "case", "black", "white", "pro",
];

fn table(name: &str, rows: &[Vec<usize>]) -> Table {
    let schema = Schema::new(vec![("desc", AttrKind::Text)]);
    let records = rows
        .iter()
        .map(|ws| {
            let text = ws
                .iter()
                .map(|&w| WORDS[w % WORDS.len()])
                .collect::<Vec<_>>()
                .join(" ");
            Record::new(vec![Some(text)])
        })
        .collect();
    Table::new(name, schema, records)
}

fn dataset(left: &[Vec<usize>], right: &[Vec<usize>]) -> EmDataset {
    EmDataset {
        left: table("l", left),
        right: table("r", right),
        matches: BTreeSet::new(),
        name: "prop".into(),
    }
}

/// Every strategy in the crate, built at a given thread count.
fn sources(par: Parallelism) -> Vec<Box<dyn CandidateSource>> {
    vec![
        Box::new(
            TokenIndex::builder()
                .threshold(0.2)
                .parallelism(par)
                .probe_block(3)
                .build(),
        ),
        Box::new(
            TokenIndex::builder()
                .threshold(0.1)
                .max_postings(4)
                .parallelism(par)
                .build(),
        ),
        Box::new(
            QGramIndex::builder()
                .q(3)
                .min_shared(3)
                .parallelism(par)
                .probe_block(5)
                .build(),
        ),
        Box::new(
            SortedNeighborhood::builder()
                .window(4)
                .parallelism(par)
                .build(),
        ),
        Box::new(
            MinHashLsh::builder()
                .bands(4)
                .rows(2)
                .seed(9)
                .parallelism(par)
                .build(),
        ),
        Box::new(BlockingConfig {
            jaccard_threshold: 0.2,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `collect_validated` accepts every strategy's stream: strictly
    /// increasing `(left, right)`, all ids in bounds.
    #[test]
    fn streams_are_sorted_deduplicated_in_bounds(
        left in prop::collection::vec(prop::collection::vec(0usize..20, 1..5), 1..25),
        right in prop::collection::vec(prop::collection::vec(0usize..20, 1..5), 1..25),
    ) {
        let ds = dataset(&left, &right);
        for source in sources(Parallelism::sequential()) {
            let pairs = collect_validated(source.as_ref(), &ds);
            prop_assert!(pairs.is_ok(), "{} violated the stream contract: {:?}",
                source.describe(), pairs.err());
        }
    }

    /// Thread count never changes the emitted pair sequence: the
    /// fingerprints at 1, 2 and 8 threads are identical per strategy.
    #[test]
    fn streams_are_thread_count_invariant(
        left in prop::collection::vec(prop::collection::vec(0usize..20, 1..5), 1..25),
        right in prop::collection::vec(prop::collection::vec(0usize..20, 1..5), 1..25),
    ) {
        let ds = dataset(&left, &right);
        let baseline: Vec<u64> = sources(Parallelism::fixed(1))
            .iter()
            .map(|s| s.fingerprint(&ds).unwrap())
            .collect();
        for threads in [2usize, 8] {
            let fps: Vec<u64> = sources(Parallelism::fixed(threads))
                .iter()
                .map(|s| s.fingerprint(&ds).unwrap())
                .collect();
            prop_assert_eq!(&fps, &baseline, "divergence at {} threads", threads);
        }
    }

    /// Rerunning the same strategy on the same data always fingerprints
    /// identically (no ambient randomness anywhere on the path).
    #[test]
    fn streams_are_rerun_deterministic(
        left in prop::collection::vec(prop::collection::vec(0usize..20, 1..5), 1..15),
        right in prop::collection::vec(prop::collection::vec(0usize..20, 1..5), 1..15),
    ) {
        let ds = dataset(&left, &right);
        for source in sources(Parallelism::auto()) {
            let a = source.fingerprint(&ds).unwrap();
            let b = source.fingerprint(&ds).unwrap();
            prop_assert_eq!(a, b, "{} not rerun-deterministic", source.describe());
        }
    }
}

/// An uncapped `TokenIndex` is pair-for-pair the core `BlockingConfig`
/// filter at the same threshold — the redesign changed the engine, not
/// the candidates.
#[test]
fn token_index_reproduces_core_baseline_on_social_smoke() {
    let ds = datagen::generate_social(&SocialConfig::scaled(0.25), 42);
    let core = BlockingConfig {
        jaccard_threshold: 0.1875,
    }
    .block(&ds);
    let ours = TokenIndex::builder()
        .threshold(0.1875)
        .parallelism(Parallelism::fixed(4))
        .build()
        .collect_pairs(&ds)
        .unwrap();
    assert_eq!(ours, core);
}

/// Golden blocking-quality numbers on the smoke-scale social corpus
/// (100 employees × 1000 profiles, seed 42). These pin the exact
/// candidate counts and recalls: any change to tokenization, hashing,
/// window or banding logic shows up here before it shows up in a
/// benchmark regression.
#[test]
fn golden_blocking_quality_on_social_smoke() {
    let ds = datagen::generate_social(&SocialConfig::scaled(0.25), 42);
    let golden: Vec<(Box<dyn CandidateSource>, u64, f64)> = vec![
        (
            Box::new(TokenIndex::builder().threshold(0.1875).build()),
            GOLDEN[0].1,
            GOLDEN[0].2,
        ),
        (
            Box::new(QGramIndex::builder().q(3).min_shared(12).build()),
            GOLDEN[1].1,
            GOLDEN[1].2,
        ),
        (
            Box::new(SortedNeighborhood::builder().window(10).build()),
            GOLDEN[2].1,
            GOLDEN[2].2,
        ),
        (
            Box::new(MinHashLsh::builder().bands(8).rows(2).seed(42).build()),
            GOLDEN[3].1,
            GOLDEN[3].2,
        ),
    ];
    for (source, want_candidates, want_recall) in golden {
        let r = BlockingReport::compute(source.as_ref(), &ds, None).unwrap();
        assert_eq!(
            r.candidates, want_candidates,
            "candidate count drifted for {}",
            r.source
        );
        assert!(
            (r.recall - want_recall).abs() < 1e-9,
            "recall drifted for {}: got {}, want {}",
            r.source,
            r.recall,
            want_recall
        );
        let expected_rr = 1.0 - r.candidates as f64 / r.total_pairs as f64;
        assert!((r.reduction_ratio - expected_rr).abs() < 1e-12);
    }
}

/// `(label, candidates, recall)` pinned from the first full run.
#[allow(clippy::excessive_precision)]
const GOLDEN: [(&str, u64, f64); 4] = [
    ("token", 3438, 0.975_609_756_097_561_0),
    ("qgram", 25_246, 1.0),
    ("sorted-w10", 1649, 0.878_048_780_487_804_9),
    ("minhash", 2488, 0.878_048_780_487_804_9),
];
