//! Minimal RFC-4180 CSV reading and writing.
//!
//! Handles quoted fields, escaped quotes (`""`), embedded commas and
//! newlines inside quotes, and both LF and CRLF row endings. Deliberately
//! small — just what the CLI needs to round-trip tables — and fully
//! tested, including a property test that `parse(render(rows)) == rows`.

use std::fmt;

/// A CSV parse failure with row context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based row where the problem was found.
    pub row: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV error at row {}: {}", self.row, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parse CSV text into rows of fields.
///
/// Every row must have the same number of fields as the first row. A
/// trailing newline is allowed; empty input yields no rows.
pub fn parse(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut row: Vec<String> = Vec::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut row_no = 1usize;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(CsvError {
                        row: row_no,
                        message: "quote inside unquoted field".into(),
                    });
                }
                in_quotes = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Only meaningful before \n; stray \r is kept literal.
                if chars.peek() == Some(&'\n') {
                    continue;
                }
                field.push('\r');
            }
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                row_no += 1;
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError {
            row: row_no,
            message: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }

    if let Some(first) = rows.first() {
        let arity = first.len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != arity {
                return Err(CsvError {
                    row: i + 1,
                    message: format!("expected {arity} fields, found {}", r.len()),
                });
            }
        }
    }
    Ok(rows)
}

/// True when a field needs quoting.
fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

/// Render rows as CSV text (LF line endings, minimal quoting).
pub fn render(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, field) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if needs_quoting(field) {
                out.push('"');
                out.push_str(&field.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(field);
            }
        }
        out.push('\n');
    }
    out
}

/// A parsed CSV table: header plus data rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvTable {
    /// Column names from the first row.
    pub header: Vec<String>,
    /// Data rows (header excluded).
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Parse text whose first row is the header.
    pub fn parse(input: &str) -> Result<Self, CsvError> {
        let mut all = parse(input)?;
        if all.is_empty() {
            return Err(CsvError {
                row: 1,
                message: "missing header row".into(),
            });
        }
        let header = all.remove(0);
        Ok(CsvTable { header, rows: all })
    }

    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Match-based success accessor: the CLI crate bans panicking
    /// accessors so that any remaining site is intentional and visible.
    fn ok<T>(r: Result<T, CsvError>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected CSV error in row {}: {}", e.row, e.message),
        }
    }

    #[test]
    fn parses_simple_rows() {
        let rows = ok(parse("a,b,c\n1,2,3\n"));
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parses_quotes_commas_newlines() {
        let input = "name,desc\n\"ipod, nano\",\"he said \"\"hi\"\"\"\n\"multi\nline\",x\n";
        let rows = ok(parse(input));
        assert_eq!(rows[1][0], "ipod, nano");
        assert_eq!(rows[1][1], "he said \"hi\"");
        assert_eq!(rows[2][0], "multi\nline");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let rows = ok(parse("a,b\r\n1,2"));
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse("a,b\n1\n").unwrap_err();
        assert_eq!(err.row, 2);
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(parse("a,\"b\n").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(ok(parse("")).is_empty());
    }

    #[test]
    fn table_header_lookup() {
        let t = ok(CsvTable::parse("id,name,price\n1,ipod,99\n"));
        assert_eq!(t.column("price"), Some(2));
        assert_eq!(t.column("missing"), None);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn render_quotes_when_needed() {
        let rows = vec![vec![
            "a,b".to_owned(),
            "plain".to_owned(),
            "q\"q".to_owned(),
        ]];
        assert_eq!(render(&rows), "\"a,b\",plain,\"q\"\"q\"\n");
    }

    proptest! {
        /// parse ∘ render is the identity on arbitrary field contents.
        #[test]
        fn roundtrip(rows in prop::collection::vec(
            prop::collection::vec(".{0,20}", 1..6), 1..20)
        ) {
            // Normalize arity: truncate every row to the first row's len.
            let arity = rows[0].len();
            let rows: Vec<Vec<String>> = rows
                .into_iter()
                .map(|mut r| {
                    r.resize(arity, String::new());
                    r
                })
                .collect();
            let text = render(&rows);
            let parsed = ok(parse(&text));
            prop_assert_eq!(parsed, rows);
        }
    }
}
