//! `alem` — command-line active-learning entity matcher.
//!
//! ```text
//! alem match    --left a.csv --right b.csv [--columns name,price]
//!               (--truth truth.csv | --interactive)
//!               [--strategy trees20] [--budget 500] [--threshold 0.1875]
//!               [--output matches.csv] [--seed 42] [--threads N]
//!               [--lazy-topk K] [--refresh-frac F]
//!               [--checkpoint-every N] [--checkpoint ckpt.json]
//!               [--resume ckpt.json]
//!               [--metrics-out metrics.jsonl] [--trace-out trace.json]
//!               [--trace-id ID]
//! alem predict  --model model.json --left a.csv --right b.csv
//!               [--threshold 0.1875] [--output matches.csv]
//! alem block    --left a.csv --right b.csv [--threshold 0.1875]
//! alem generate --dataset abt-buy [--scale 0.25] [--out-dir DIR] [--seed 42]
//! ```
//!
//! `match` runs the full pipeline on two CSV files with aligned columns:
//! blocking, featurization, then active learning driven either by a
//! ground-truth file (pairs of `left_row,right_row`, 0-based data rows)
//! or by *you*, answering y/n in the terminal. Predicted matches are
//! written as CSV.

#![forbid(unsafe_code)]

mod csv;
mod pipeline;

use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  alem match    --left L.csv --right R.csv (--truth T.csv | --interactive)\n\
         \x20                [--columns a,b,c] [--strategy trees20|trees10|margin|margin1dim|\n\
         \x20                 qbc10|ensemble|rules|nn] [--budget N] [--threshold J]\n\
         \x20                [--output OUT.csv] [--save-model M.json] [--seed N] [--threads N]\n\
         \x20                [--lazy-topk K] [--refresh-frac F]\n\
         \x20                [--checkpoint-every N] [--checkpoint C.json] [--resume C.json]\n\
         \x20                [--metrics-out M.jsonl] [--trace-out T.json] [--trace-id ID]\n\
         \x20 alem predict  --model M.json --left L.csv --right R.csv [--output OUT.csv]\n\
         \x20 alem block    --left L.csv --right R.csv [--threshold J] [--columns a,b,c]\n\
         \x20 alem generate --dataset abt-buy|amazon-google|dblp-acm|dblp-scholar|cora|\n\
         \x20                walmart-amazon|amazon-bestbuy|beer|baby\n\
         \x20                [--scale S] [--out-dir DIR] [--seed N]"
    );
    exit(2);
}

/// Parsed `--flag value` arguments.
#[allow(dead_code)]
pub(crate) struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    pub(crate) fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if matches!(name, "interactive") {
                    switches.push(name.to_owned());
                    i += 1;
                } else {
                    let Some(value) = argv.get(i + 1) else {
                        usage()
                    };
                    flags.push((name.to_owned(), value.clone()));
                    i += 2;
                }
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Args {
            positional,
            flags,
            switches,
        }
    }

    pub(crate) fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    pub(crate) fn require(&self, name: &str) -> &str {
        self.get(name).unwrap_or_else(|| {
            eprintln!("missing required --{name}");
            usage()
        })
    }

    pub(crate) fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    let Some(cmd) = args.positional.first() else {
        usage()
    };
    let result = match cmd.as_str() {
        "match" => pipeline::cmd_match(&args),
        "predict" => pipeline::cmd_predict(&args),
        "block" => pipeline::cmd_block(&args),
        "generate" => pipeline::cmd_generate(&args),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}
