//! CLI subcommand implementations: CSV tables → alem pipeline.

use crate::csv::{render, CsvTable};
use crate::Args;
use alem_core::blocking::{stats, BlockingConfig};
use alem_core::corpus::Corpus;
use alem_core::ensemble::EnsembleSvmStrategy;
use alem_core::learner::{DnfTrainer, NnTrainer, SvmTrainer};
use alem_core::loop_::{ActiveLearner, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::schema::{AttrKind, EmDataset, Record, Schema, Table};
use alem_core::session::{Checkpoint, SessionConfig};
use alem_core::strategy::{
    LfpLfnStrategy, MarginNnStrategy, MarginSvmStrategy, QbcStrategy, Strategy, TreeQbcStrategy,
};
use alem_obs::Registry;
use alem_par::Parallelism;
use datagen::PaperDataset;
use std::collections::BTreeSet;
use std::error::Error;
use std::io::Write as _;
use std::path::{Path, PathBuf};

type CliResult = Result<(), Box<dyn Error>>;

/// Load a CSV file restricted to `columns` (or all shared columns when
/// empty) as an alem table.
fn load_table(
    path: &str,
    name: &str,
    columns: &[String],
) -> Result<(CsvTable, Vec<String>), Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let table = CsvTable::parse(&text).map_err(|e| format!("{name}: {e}"))?;
    let cols: Vec<String> = if columns.is_empty() {
        table.header.clone()
    } else {
        for c in columns {
            if table.column(c).is_none() {
                return Err(format!("{name}: column {c:?} not found").into());
            }
        }
        columns.to_vec()
    };
    Ok((table, cols))
}

/// Project a parsed CSV onto the aligned schema columns.
fn to_alem_table(csv: &CsvTable, cols: &[String], name: &str) -> Table {
    let schema = Schema::new(cols.iter().map(|c| (c.as_str(), AttrKind::Text)).collect());
    // Columns were validated against the header in `load_table`.
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| {
            csv.column(c)
                .unwrap_or_else(|| unreachable!("column {c:?} validated in load_table"))
        })
        .collect();
    let records = csv
        .rows
        .iter()
        .map(|row| {
            Record::new(
                idx.iter()
                    .map(|&i| {
                        let v = row[i].trim();
                        if v.is_empty() {
                            None
                        } else {
                            Some(v.to_owned())
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    Table::new(name, schema, records)
}

fn shared_columns(left: &CsvTable, right: &CsvTable) -> Vec<String> {
    left.header
        .iter()
        .filter(|h| right.column(h).is_some())
        .cloned()
        .collect()
}

fn parse_columns(args: &Args) -> Vec<String> {
    args.get("columns")
        .map(|s| s.split(',').map(|c| c.trim().to_owned()).collect())
        .unwrap_or_default()
}

fn build_dataset(args: &Args) -> Result<EmDataset, Box<dyn Error>> {
    let left_path = args.require("left");
    let right_path = args.require("right");
    let mut columns = parse_columns(args);
    let (lcsv, _) = load_table(left_path, "left", &columns)?;
    let (rcsv, _) = load_table(right_path, "right", &columns)?;
    if columns.is_empty() {
        columns = shared_columns(&lcsv, &rcsv);
        if columns.is_empty() {
            return Err("tables share no columns; pass --columns".into());
        }
    } else if columns.iter().any(|c| rcsv.column(c).is_none()) {
        return Err("right table is missing one of --columns".into());
    }
    let left = to_alem_table(&lcsv, &columns, "left");
    let right = to_alem_table(&rcsv, &columns, "right");
    let truth = match args.get("truth") {
        Some(path) => load_truth(path)?,
        None => BTreeSet::new(),
    };
    Ok(EmDataset {
        left,
        right,
        matches: truth,
        name: "cli".into(),
    })
}

/// A truth file is a headerless (or `left,right`-headed) CSV of 0-based
/// row-index pairs.
fn load_truth(path: &str) -> Result<BTreeSet<(u32, u32)>, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rows = crate::csv::parse(&text)?;
    let mut out = BTreeSet::new();
    for (i, row) in rows.iter().enumerate() {
        if row.len() < 2 {
            return Err(format!("truth row {} needs two columns", i + 1).into());
        }
        if i == 0 && row[0].parse::<u32>().is_err() {
            continue; // header
        }
        let l: u32 = row[0]
            .trim()
            .parse()
            .map_err(|_| format!("bad left id at row {}", i + 1))?;
        let r: u32 = row[1]
            .trim()
            .parse()
            .map_err(|_| format!("bad right id at row {}", i + 1))?;
        out.insert((l, r));
    }
    Ok(out)
}

fn blocking_threshold(args: &Args) -> Result<f64, Box<dyn Error>> {
    match args.get("threshold") {
        Some(s) => Ok(s.parse::<f64>().map_err(|_| "bad --threshold")?),
        None => Ok(0.1875),
    }
}

/// Hot-path tuning knobs shared by `alem match` and the benches:
/// `--lazy-topk K` (two-phase lazy selection + warm-started Pegasos on
/// the margin strategies) and `--refresh-frac F` (partial forest refresh
/// on the tree strategies).
#[derive(Debug, Clone, Copy, Default)]
pub struct StrategyTuning {
    /// Phase-1 dimension count for lazy margin selection; also enables
    /// warm-started SVM training.
    pub lazy_topk: Option<usize>,
    /// Fraction of forest members retrained per warm round.
    pub refresh_frac: Option<f64>,
}

impl StrategyTuning {
    fn parse(args: &Args) -> Result<Self, Box<dyn Error>> {
        let lazy_topk = args
            .get("lazy-topk")
            .map(|s| s.parse::<usize>().map_err(|_| "bad --lazy-topk"))
            .transpose()?;
        if lazy_topk == Some(0) {
            return Err("--lazy-topk must be at least 1".into());
        }
        let refresh_frac = args
            .get("refresh-frac")
            .map(|s| s.parse::<f64>().map_err(|_| "bad --refresh-frac"))
            .transpose()?;
        if let Some(f) = refresh_frac {
            if !(f > 0.0 && f <= 1.0) {
                return Err("--refresh-frac must be in (0, 1]".into());
            }
        }
        Ok(StrategyTuning {
            lazy_topk,
            refresh_frac,
        })
    }
}

fn build_strategy(
    name: &str,
    tuning: StrategyTuning,
) -> Result<Box<dyn Strategy + Send>, Box<dyn Error>> {
    let trees = |n: usize| -> Box<dyn Strategy + Send> {
        let mut b = TreeQbcStrategy::builder().trees(n);
        if let Some(f) = tuning.refresh_frac {
            b = b.refresh_frac(f);
        }
        Box::new(b.build())
    };
    let margin = || -> Box<dyn Strategy + Send> {
        let mut b = MarginSvmStrategy::builder().trainer(SvmTrainer::default());
        if let Some(k) = tuning.lazy_topk {
            b = b.lazy_topk(k).warm_start();
        }
        Box::new(b.build())
    };
    let s: Box<dyn Strategy + Send> = match name {
        "trees20" => trees(20),
        "trees10" => trees(10),
        "margin" => margin(),
        "margin1dim" => Box::new(MarginSvmStrategy::builder().blocking_dims(1).build()),
        "qbc10" => Box::new(QbcStrategy::new(SvmTrainer::default(), 10)),
        "ensemble" => Box::new(EnsembleSvmStrategy::new(SvmTrainer::default(), 0.85)),
        "rules" => Box::new(LfpLfnStrategy::new(DnfTrainer::default(), 0.85)),
        "nn" => Box::new(MarginNnStrategy::new(NnTrainer::default())),
        other => return Err(format!("unknown strategy {other:?}").into()),
    };
    if tuning.lazy_topk.is_some() && !matches!(name, "margin") {
        eprintln!("[alem] note: --lazy-topk only affects the 'margin' strategy (ignored)");
    }
    if tuning.refresh_frac.is_some() && !matches!(name, "trees10" | "trees20") {
        eprintln!("[alem] note: --refresh-frac only affects the tree strategies (ignored)");
    }
    Ok(s)
}

/// `alem block`: report blocking statistics.
pub fn cmd_block(args: &Args) -> CliResult {
    let ds = build_dataset(args)?;
    let threshold = blocking_threshold(args)?;
    let pairs = BlockingConfig {
        jaccard_threshold: threshold,
    }
    .block(&ds);
    let s = stats(&ds, &pairs);
    println!(
        "left records:        {}\nright records:       {}\ncartesian pairs:     {}",
        ds.left.len(),
        ds.right.len(),
        s.total_pairs
    );
    println!(
        "post-blocking pairs: {} (threshold {threshold})",
        s.post_blocking_pairs
    );
    if !ds.matches.is_empty() {
        println!(
            "truth matches kept:  {}/{} (class skew {:.3})",
            s.matches_retained, s.matches_total, s.class_skew
        );
    }
    Ok(())
}

/// `alem match`: run active learning and emit predicted matches.
pub fn cmd_match(args: &Args) -> CliResult {
    let interactive = args.has("interactive");
    if !interactive && args.get("truth").is_none() {
        return Err("pass --truth T.csv or --interactive".into());
    }
    // Telemetry sinks (--metrics-out FILE.jsonl / --trace-out FILE.json).
    // Either flag enables the registry; both sinks read the same events.
    let metrics_out = args.get("metrics-out").map(PathBuf::from);
    let trace_out = args.get("trace-out").map(PathBuf::from);
    let obs = if metrics_out.is_some() || trace_out.is_some() {
        Registry::enabled()
    } else {
        Registry::disabled()
    };
    // `--trace-id ID` stamps every event this run emits, so a CLI run can
    // be correlated with server-side traces (or across a batch of runs)
    // in the JSONL/Chrome sinks. Purely observational: the guard holds
    // the id for the duration of the pipeline and never touches results.
    let _trace = alem_obs::trace_scope(args.get("trace-id"));

    // Thread-count policy for featurization, committee training, and pool
    // scoring. Results are byte-identical for any value; `--threads 1`
    // reproduces the sequential path exactly.
    let parallelism = match args.get("threads") {
        Some(s) => Parallelism::fixed(s.parse().map_err(|_| "bad --threads")?),
        None => Parallelism::default(),
    };

    let ds = build_dataset(args)?;
    let threshold = blocking_threshold(args)?;
    let blocking = BlockingConfig {
        jaccard_threshold: threshold,
    };
    let blocking_span = obs.span("blocking");
    let pairs = blocking.block(&ds);
    blocking_span.finish();
    if pairs.is_empty() {
        return Err("blocking produced no candidate pairs; lower --threshold".into());
    }
    eprintln!("[alem] {} candidate pairs after blocking", pairs.len());
    let featurize_span = obs.span("featurize");
    let (corpus, _fx) = Corpus::from_candidates_with(&ds, &blocking, &parallelism)?;
    featurize_span.finish();

    let budget: usize = args
        .get("budget")
        .map(|s| s.parse().map_err(|_| "bad --budget"))
        .transpose()?
        .unwrap_or(300);
    let seed: u64 = args
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(42);
    let strategy_name = args.get("strategy").unwrap_or("trees20");
    let strategy = build_strategy(strategy_name, StrategyTuning::parse(args)?)?;
    obs.set_run_id(&format!("alem-match-{strategy_name}-seed{seed}"));

    let oracle = if interactive {
        let prompts: Vec<String> = (0..corpus.len())
            .map(|i| {
                let (l, r) = corpus.pair(i);
                format!(
                    "  left[{l}]:  {}\n  right[{r}]: {}",
                    describe(&ds.left, l as usize),
                    describe(&ds.right, r as usize)
                )
            })
            .collect();
        Oracle::from_fn(corpus.len(), move |i| ask_human(&prompts[i]))
    } else {
        Oracle::perfect(corpus.truths().to_vec())
    };

    let params = LoopParams {
        max_labels: budget,
        stop_at_f1: if interactive { None } else { Some(0.99) },
        ..LoopParams::default()
    };

    // Checkpoint/resume plumbing.
    let checkpoint_every: Option<usize> = args
        .get("checkpoint-every")
        .map(|s| s.parse().map_err(|_| "bad --checkpoint-every"))
        .transpose()?;
    let resume = args.get("resume");
    let checkpoint_path: Option<PathBuf> = args
        .get("checkpoint")
        .or(resume)
        .map(PathBuf::from)
        .or_else(|| checkpoint_every.map(|_| PathBuf::from("alem-checkpoint.json")));
    let config = SessionConfig {
        checkpoint_every,
        checkpoint_path,
        obs: obs.clone(),
        parallelism,
        ..SessionConfig::default()
    };

    let mut al = ActiveLearner::new(strategy, params);
    let outcome = match resume {
        Some(path) => {
            let ckpt = Checkpoint::load(Path::new(path))?;
            eprintln!(
                "[alem] resuming from {path}: iteration {}, {} labels so far",
                ckpt.iter_no,
                ckpt.labeled.len()
            );
            al.resume_session(&corpus, &oracle, ckpt, &config)?
        }
        None => al.run_session(&corpus, &oracle, seed, &config)?,
    };
    let run = outcome
        .run_result()
        .ok_or("session halted before completing")?;
    let strategy = al.into_strategy();

    if !ds.matches.is_empty() {
        eprintln!(
            "[alem] {}: best F1 {:.3} after {} labels",
            run.strategy,
            run.best_f1(),
            run.total_labels()
        );
    } else {
        eprintln!(
            "[alem] {}: trained on {} human labels",
            run.strategy,
            run.total_labels()
        );
    }

    // Flush telemetry sinks and show the phase summary.
    if let Some(path) = &metrics_out {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        obs.write_jsonl(&mut f)?;
        f.flush()?;
        eprintln!("[alem] telemetry events written to {}", path.display());
    }
    if let Some(path) = &trace_out {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        obs.write_chrome_trace(&mut f)?;
        f.flush()?;
        eprintln!(
            "[alem] chrome://tracing trace written to {}",
            path.display()
        );
    }
    if obs.is_enabled() {
        eprint!("{}", obs.summary());
    }

    // Persist the reusable model, if requested (§2: the point of learning
    // an EM model is not paying for labels again next time).
    if let Some(path) = args.get("save-model") {
        match strategy.saved_model() {
            Some(model) => {
                let js = serde_json::to_string(&model)?;
                std::fs::write(path, js)?;
                eprintln!("[alem] {} model saved to {path}", model.kind());
            }
            None => eprintln!("[alem] this strategy's model type is not persistable"),
        }
    }

    // Emit predicted matches.
    let mut out_rows = vec![vec!["left_row".to_owned(), "right_row".to_owned()]];
    for i in 0..corpus.len() {
        if strategy.predict(&corpus, i) {
            let (l, r) = corpus.pair(i);
            out_rows.push(vec![l.to_string(), r.to_string()]);
        }
    }
    let text = render(&out_rows);
    match args.get("output") {
        Some(path) => {
            std::fs::write(path, text)?;
            eprintln!(
                "[alem] {} predicted matches written to {path}",
                out_rows.len() - 1
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `alem predict`: apply a saved model to new tables — no labels needed.
pub fn cmd_predict(args: &Args) -> CliResult {
    let model_path = args.require("model");
    let js = std::fs::read_to_string(model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let model: alem_core::model_io::SavedModel = serde_json::from_str(&js)
        .map_err(|e| format!("{model_path}: not a saved alem model: {e}"))?;

    let ds = build_dataset(args)?;
    let threshold = blocking_threshold(args)?;
    let blocking = BlockingConfig {
        jaccard_threshold: threshold,
    };
    let pairs = blocking.block(&ds);
    eprintln!(
        "[alem] applying saved {} model to {} candidate pairs",
        model.kind(),
        pairs.len()
    );
    let (corpus, _fx) = Corpus::from_candidates(&ds, &blocking)?;

    let mut out_rows = vec![vec!["left_row".to_owned(), "right_row".to_owned()]];
    for i in 0..corpus.len() {
        let x: &[f64] = if model.wants_bool_features() {
            &corpus
                .bool_features()
                .ok_or("corpus has no Boolean features for a rule model")?[i]
        } else {
            corpus.x(i)
        };
        if model.predict(x) {
            let (l, r) = corpus.pair(i);
            out_rows.push(vec![l.to_string(), r.to_string()]);
        }
    }
    if !ds.matches.is_empty() {
        // Ground truth supplied: report quality too.
        let mut confusion = mlcore::metrics::Confusion::default();
        for i in 0..corpus.len() {
            let x: &[f64] = if model.wants_bool_features() {
                &corpus
                    .bool_features()
                    .ok_or("corpus has no Boolean features for a rule model")?[i]
            } else {
                corpus.x(i)
            };
            confusion.record(model.predict(x), corpus.truth(i));
        }
        eprintln!(
            "[alem] P {:.3} / R {:.3} / F1 {:.3} against the supplied truth",
            confusion.precision(),
            confusion.recall(),
            confusion.f1()
        );
    }
    let text = render(&out_rows);
    match args.get("output") {
        Some(path) => {
            std::fs::write(path, text)?;
            eprintln!(
                "[alem] {} predicted matches written to {path}",
                out_rows.len() - 1
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn describe(table: &Table, row: usize) -> String {
    table
        .schema()
        .attributes()
        .iter()
        .enumerate()
        .map(|(a, def)| format!("{}={}", def.name, table.record(row).value(a).unwrap_or("∅")))
        .collect::<Vec<_>>()
        .join(" | ")
}

fn ask_human(prompt: &str) -> bool {
    loop {
        eprintln!("\nDo these records match?\n{prompt}");
        eprint!("  [y/n] > ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        if std::io::stdin().read_line(&mut line).is_err() {
            return false;
        }
        match line.trim().to_ascii_lowercase().as_str() {
            "y" | "yes" => return true,
            "n" | "no" => return false,
            _ => eprintln!("  please answer y or n"),
        }
    }
}

/// `alem generate`: write a synthetic benchmark dataset as CSVs.
pub fn cmd_generate(args: &Args) -> CliResult {
    let dataset = match args.require("dataset") {
        "abt-buy" => PaperDataset::AbtBuy,
        "amazon-google" => PaperDataset::AmazonGoogle,
        "dblp-acm" => PaperDataset::DblpAcm,
        "dblp-scholar" => PaperDataset::DblpScholar,
        "cora" => PaperDataset::Cora,
        "walmart-amazon" => PaperDataset::WalmartAmazon,
        "amazon-bestbuy" => PaperDataset::AmazonBestBuy,
        "beer" => PaperDataset::Beer,
        "baby" => PaperDataset::BabyProducts,
        other => return Err(format!("unknown dataset {other:?}").into()),
    };
    let scale: f64 = args
        .get("scale")
        .map(|s| s.parse().map_err(|_| "bad --scale"))
        .transpose()?
        .unwrap_or(0.25);
    let seed: u64 = args
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(42);
    let out_dir = args.get("out-dir").unwrap_or(".");
    std::fs::create_dir_all(out_dir)?;

    let cfg = dataset.config(scale);
    let ds = datagen::generate(&cfg, seed);

    let table_csv = |t: &Table| -> String {
        let mut rows = vec![t
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.clone())
            .collect::<Vec<_>>()];
        for i in 0..t.len() {
            rows.push(
                (0..t.schema().len())
                    .map(|a| t.record(i).value(a).unwrap_or("").to_owned())
                    .collect(),
            );
        }
        render(&rows)
    };
    std::fs::write(format!("{out_dir}/left.csv"), table_csv(&ds.left))?;
    std::fs::write(format!("{out_dir}/right.csv"), table_csv(&ds.right))?;
    let mut truth_rows = vec![vec!["left".to_owned(), "right".to_owned()]];
    let mut matches: Vec<_> = ds.matches.iter().copied().collect();
    matches.sort_unstable();
    for (l, r) in matches {
        truth_rows.push(vec![l.to_string(), r.to_string()]);
    }
    std::fs::write(format!("{out_dir}/truth.csv"), render(&truth_rows))?;
    eprintln!(
        "[alem] wrote {out_dir}/left.csv ({} rows), right.csv ({} rows), truth.csv ({} matches); blocking threshold {}",
        ds.left.len(),
        ds.right.len(),
        ds.matches.len(),
        cfg.blocking_threshold
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Match-based success accessor: the CLI crate bans panicking
    /// accessors so that any remaining site is intentional and visible.
    fn ok<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn strategy_names_resolve() {
        for n in [
            "trees20",
            "trees10",
            "margin",
            "margin1dim",
            "qbc10",
            "ensemble",
            "rules",
            "nn",
        ] {
            assert!(build_strategy(n, StrategyTuning::default()).is_ok(), "{n}");
        }
        assert!(build_strategy("bogus", StrategyTuning::default()).is_err());
    }

    #[test]
    fn tuning_flags_apply_without_renaming_strategies() {
        // Lazy/warm tuning must not change strategy names: fingerprints
        // embed the name, and lazy-vs-eager runs must stay comparable.
        let tuned = StrategyTuning {
            lazy_topk: Some(6),
            refresh_frac: Some(0.25),
        };
        let m = ok(build_strategy("margin", tuned));
        assert_eq!(m.name(), "Linear-Margin");
        let t = ok(build_strategy("trees20", tuned));
        assert_eq!(t.name(), "Trees(20)");
    }

    #[test]
    fn truth_parser_accepts_header_and_bare() {
        let dir = std::env::temp_dir().join("alem_cli_test_truth");
        ok(std::fs::create_dir_all(&dir));
        let p = dir.join("t.csv");
        ok(std::fs::write(&p, "left,right\n0,1\n2,3\n"));
        let t = ok(load_truth(&p.to_string_lossy()));
        assert!(t.contains(&(0, 1)) && t.contains(&(2, 3)));
        ok(std::fs::write(&p, "5,6\n"));
        let t = ok(load_truth(&p.to_string_lossy()));
        assert!(t.contains(&(5, 6)));
    }

    #[test]
    fn describe_formats_missing_values() {
        let schema = Schema::new(vec![("name", AttrKind::Text), ("price", AttrKind::Text)]);
        let t = Table::new(
            "t",
            schema,
            vec![Record::new(vec![Some("ipod".into()), None])],
        );
        assert_eq!(describe(&t, 0), "name=ipod | price=∅");
    }
}
