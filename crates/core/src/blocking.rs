//! Offline blocking: prune the Cartesian product of record pairs down to
//! candidate pairs with a Jaccard token filter.
//!
//! The paper (§6) blocks with "Jaccard similarity ... with a numerical
//! threshold ... on the tokenized attributes from each pair" — threshold
//! 0.1875 on Abt-Buy/DBLP-ACM/DBLP-Scholar, 0.12 on Amazon-GoogleProducts
//! and 0.16 on Cora/Walmart-Amazon. An inverted index over tokens avoids
//! materializing the Cartesian product (DBLP-Scholar's is 168M pairs).
//!
//! [`BlockingConfig`] is *one* implementation of the
//! [`CandidateSource`](crate::candidates::CandidateSource) seam — the
//! paper-faithful baseline. The scale-out strategies (parallel token
//! index, q-gram index, sorted-neighborhood, minhash-LSH) live in the
//! `alem-block` crate, which re-exports this type for convenience.

use crate::candidates::{CandidateSource, DEFAULT_CHUNK};
use crate::error::AlemError;
use crate::schema::{EmDataset, Pair, Table};
use std::collections::BTreeMap;
use std::convert::Infallible;

/// Configuration of the offline blocking step.
#[derive(Debug, Clone, Copy)]
pub struct BlockingConfig {
    /// Keep pairs with record-level token Jaccard ≥ this threshold.
    pub jaccard_threshold: f64,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        // The paper's most common setting.
        BlockingConfig {
            jaccard_threshold: 0.1875,
        }
    }
}

/// Sorted, deduplicated token set over all attribute values of a record.
/// Single-character tokens (initials, lone digits) are ignored — they
/// collide across unrelated records and would swamp the inverted index.
fn record_tokens(table: &Table, idx: usize) -> Vec<String> {
    let mut toks: Vec<String> = Vec::new();
    for v in table.record(idx).values().iter().flatten() {
        let norm = textsim::tokenize::normalize(v);
        toks.extend(
            textsim::tokenize::tokens(&norm)
                .into_iter()
                .filter(|t| t.chars().count() >= 2),
        );
    }
    toks.sort_unstable();
    toks.dedup();
    toks
}

/// Inverted index over right-table tokens plus per-record token counts —
/// everything a Jaccard probe needs to score a left record without the
/// right side's token vectors staying resident.
struct RightIndex {
    /// Token → sorted right-record ids. Ordered map: candidate generation
    /// iterates it indirectly, and hash-ordered iteration anywhere on
    /// this path would make the pair list (and with it every downstream
    /// fingerprint) depend on hasher state.
    postings: BTreeMap<String, Vec<u32>>,
    /// Distinct-token count per right record (the union denominator).
    token_count: Vec<u32>,
}

impl RightIndex {
    fn build(right: &Table) -> Self {
        let mut postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        let mut token_count = Vec::with_capacity(right.len());
        for r in 0..right.len() {
            let toks = record_tokens(right, r);
            token_count.push(toks.len() as u32);
            for t in toks {
                postings.entry(t).or_default().push(r as u32);
            }
        }
        RightIndex {
            postings,
            token_count,
        }
    }
}

impl BlockingConfig {
    /// Compute the post-blocking candidate pairs of `ds`.
    ///
    /// Returns pairs sorted by `(left, right)` for reproducibility. The
    /// left table is tokenized one record at a time during the probe —
    /// peak memory is the right-side index, never both sides' token
    /// vectors (see [`BlockingConfig::stream`] for the chunked form).
    pub fn block(&self, ds: &EmDataset) -> Vec<Pair> {
        let mut pairs: Vec<Pair> = Vec::new();
        match self.probe_each::<Infallible>(ds, &mut |p| {
            pairs.push(p);
            Ok(())
        }) {
            Ok(()) => pairs,
            Err(e) => match e {},
        }
    }

    /// Probe every left record against the right-side inverted index,
    /// emitting surviving pairs in strictly increasing `(left, right)`
    /// order. Generic over the emitter's error so the infallible
    /// [`BlockingConfig::block`] pays no error-handling tax.
    fn probe_each<E>(
        &self,
        ds: &EmDataset,
        emit: &mut dyn FnMut(Pair) -> Result<(), E>,
    ) -> Result<(), E> {
        let index = RightIndex::build(&ds.right);
        // Dense per-left-record overlap counts, reset via the `touched`
        // list: O(|right|) memory once, no hashing in the hot loop.
        let mut overlap: Vec<u32> = vec![0; ds.right.len()];
        let mut touched: Vec<u32> = Vec::new();
        for l in 0..ds.left.len() {
            // Left-side tokenization is streamed per record: tokens live
            // only for the duration of this probe.
            let ltoks = record_tokens(&ds.left, l);
            if ltoks.is_empty() {
                continue;
            }
            for t in &ltoks {
                if let Some(rs) = index.postings.get(t.as_str()) {
                    for &r in rs {
                        if overlap[r as usize] == 0 {
                            touched.push(r);
                        }
                        overlap[r as usize] += 1;
                    }
                }
            }
            // Candidates are emitted in ascending right-id order so the
            // overall stream is sorted without a global sort at the end.
            touched.sort_unstable();
            for &r in &touched {
                let inter = overlap[r as usize];
                overlap[r as usize] = 0;
                let union = ltoks.len() + index.token_count[r as usize] as usize - inter as usize;
                if union > 0 && f64::from(inter) / union as f64 >= self.jaccard_threshold {
                    emit((l as u32, r))?;
                }
            }
            touched.clear();
        }
        Ok(())
    }
}

impl CandidateSource for BlockingConfig {
    fn describe(&self) -> String {
        format!("token-jaccard(t={})", self.jaccard_threshold)
    }

    fn size_hint(&self, ds: &EmDataset) -> (usize, Option<usize>) {
        // No candidate count is known without probing; the Cartesian
        // product bounds it from above when it fits in a usize.
        (0, usize::try_from(ds.total_pairs()).ok())
    }

    fn stream(
        &self,
        ds: &EmDataset,
        sink: &mut dyn FnMut(&[Pair]) -> Result<(), AlemError>,
    ) -> Result<(), AlemError> {
        let mut buf: Vec<Pair> = Vec::with_capacity(DEFAULT_CHUNK);
        self.probe_each::<AlemError>(ds, &mut |p| {
            buf.push(p);
            if buf.len() == DEFAULT_CHUNK {
                let out = sink(&buf);
                buf.clear();
                out
            } else {
                Ok(())
            }
        })?;
        if buf.is_empty() {
            Ok(())
        } else {
            sink(&buf)
        }
    }
}

/// Summary statistics of a blocked dataset — one row of the paper's
/// Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingStats {
    /// Size of the full Cartesian product.
    pub total_pairs: u64,
    /// Candidate pairs surviving blocking.
    pub post_blocking_pairs: usize,
    /// True matches among post-blocking pairs.
    pub matches_retained: usize,
    /// Total true matches in the dataset.
    pub matches_total: usize,
    /// Class skew: matches / post-blocking pairs.
    pub class_skew: f64,
}

/// Compute Table 1-style statistics for a blocked pair set.
pub fn stats(ds: &EmDataset, pairs: &[Pair]) -> BlockingStats {
    let matches_retained = pairs.iter().filter(|&&p| ds.is_match(p)).count();
    let post = pairs.len();
    BlockingStats {
        total_pairs: ds.total_pairs(),
        post_blocking_pairs: post,
        matches_retained,
        matches_total: ds.matches.len(),
        class_skew: if post == 0 {
            0.0
        } else {
            matches_retained as f64 / post as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrKind, Record, Schema};

    fn table(name: &str, vals: &[&str]) -> Table {
        let schema = Schema::new(vec![("name", AttrKind::Text)]);
        let records = vals
            .iter()
            .map(|v| Record::new(vec![Some((*v).to_owned())]))
            .collect();
        Table::new(name, schema, records)
    }

    fn dataset() -> EmDataset {
        EmDataset {
            left: table("l", &["apple ipod nano", "sony walkman", "dell laptop"]),
            right: table(
                "r",
                &["apple ipod nano silver", "sony walkman mp3", "hp printer"],
            ),
            matches: [(0, 0), (1, 1)].into_iter().collect(),
            name: "toy".into(),
        }
    }

    #[test]
    fn keeps_overlapping_pairs_only() {
        let pairs = BlockingConfig {
            jaccard_threshold: 0.4,
        }
        .block(&dataset());
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(1, 1)));
        // "dell laptop" and "hp printer" share no tokens with anything.
        assert!(pairs.iter().all(|&(l, r)| !(l == 2 || r == 2)));
    }

    #[test]
    fn zero_threshold_keeps_all_token_sharing_pairs() {
        let pairs = BlockingConfig {
            jaccard_threshold: 0.0,
        }
        .block(&dataset());
        // Every pair sharing ≥ 1 token survives.
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(1, 1)));
        assert!(!pairs.contains(&(2, 2)));
    }

    #[test]
    fn high_threshold_prunes_everything_nonidentical() {
        let pairs = BlockingConfig {
            jaccard_threshold: 0.99,
        }
        .block(&dataset());
        assert!(pairs.is_empty());
    }

    #[test]
    fn stats_reports_skew() {
        let ds = dataset();
        let pairs = BlockingConfig {
            jaccard_threshold: 0.4,
        }
        .block(&ds);
        let s = stats(&ds, &pairs);
        assert_eq!(s.total_pairs, 9);
        assert_eq!(s.matches_total, 2);
        assert_eq!(s.matches_retained, 2);
        assert!(s.class_skew > 0.0);
        assert_eq!(s.post_blocking_pairs, pairs.len());
    }

    #[test]
    fn stream_concatenates_to_block() {
        let ds = dataset();
        let cfg = BlockingConfig {
            jaccard_threshold: 0.1,
        };
        let mut streamed: Vec<Pair> = Vec::new();
        let mut chunks = 0usize;
        cfg.stream(&ds, &mut |chunk| {
            assert!(!chunk.is_empty());
            streamed.extend_from_slice(chunk);
            chunks += 1;
            Ok(())
        })
        .unwrap();
        assert!(chunks >= 1);
        assert_eq!(streamed, cfg.block(&ds));
        assert_eq!(
            CandidateSource::collect_pairs(&cfg, &ds).unwrap(),
            cfg.block(&ds)
        );
    }

    #[test]
    fn fingerprint_tracks_threshold() {
        let ds = dataset();
        let lo = BlockingConfig {
            jaccard_threshold: 0.1,
        };
        let hi = BlockingConfig {
            jaccard_threshold: 0.9,
        };
        assert_ne!(lo.fingerprint(&ds).unwrap(), hi.fingerprint(&ds).unwrap());
        assert_eq!(lo.fingerprint(&ds).unwrap(), lo.fingerprint(&ds).unwrap());
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let pairs = BlockingConfig {
            jaccard_threshold: 0.1,
        }
        .block(&dataset());
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
    }
}
