//! The candidate-generation seam: [`CandidateSource`].
//!
//! Real entity matching starts from two raw tables, not a materialized
//! pair list. A `CandidateSource` is anything that can *stream* the
//! candidate pairs of an [`EmDataset`] — the core Jaccard filter
//! ([`crate::blocking::BlockingConfig`]), the scale-out index strategies
//! of `alem-block` (token/q-gram inverted indexes, sorted-neighborhood,
//! minhash-LSH), or a replayed pair file. [`crate::corpus::Corpus`]
//! consumes the trait via `Corpus::from_candidates`, so the active-learning
//! layer never needs to know (or hold in one `Vec`) how candidates were
//! produced.
//!
//! The contract every implementation must honor:
//!
//! * **Deterministic** — the emitted pair sequence is a pure function of
//!   the source's configuration and the dataset. No ambient RNG, time, or
//!   hash-iteration order; thread counts may only change wall-clock time.
//! * **Chunked** — pairs arrive at the sink in consecutive chunks whose
//!   concatenation is the full candidate sequence; no chunk is empty.
//!   Chunk *boundaries* are unspecified (callers must not fingerprint
//!   them), only the concatenated sequence is.
//! * **Sorted and deduplicated** — the concatenated sequence is strictly
//!   increasing in `(left, right)`, with both indices in bounds.
//!
//! [`BlockingReport`] measures a source against a dataset's hidden ground
//! truth — blocking recall, reduction ratio, and *group-wise* recall (the
//! skew diagnostic of "Evaluating Blocking Biases in Entity Matching") —
//! in one streaming pass, without materializing the candidate set.

use crate::error::AlemError;
use crate::schema::{EmDataset, Pair};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Default chunk size sources should aim for when buffering emissions.
pub const DEFAULT_CHUNK: usize = 4096;

/// FNV-1a accumulator over a candidate-pair stream. Identical pair
/// sequences hash identically regardless of chunk boundaries or thread
/// count — the quantity `bench_blocking` diffs across `--threads`.
#[derive(Debug, Clone)]
pub struct PairHasher {
    h: u64,
    n: u64,
}

impl Default for PairHasher {
    fn default() -> Self {
        PairHasher::new()
    }
}

impl PairHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh accumulator.
    pub fn new() -> Self {
        PairHasher {
            h: Self::OFFSET,
            n: 0,
        }
    }

    /// Feed one pair.
    pub fn eat(&mut self, (l, r): Pair) {
        for byte in u64::from(l)
            .to_le_bytes()
            .into_iter()
            .chain(u64::from(r).to_le_bytes())
        {
            self.h ^= u64::from(byte);
            self.h = self.h.wrapping_mul(Self::PRIME);
        }
        self.n += 1;
    }

    /// Feed a chunk of pairs.
    pub fn eat_chunk(&mut self, pairs: &[Pair]) {
        for &p in pairs {
            self.eat(p);
        }
    }

    /// Number of pairs eaten so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Final fingerprint (also mixes in the pair count, so a truncated
    /// stream never collides with its prefix).
    pub fn finish(&self) -> u64 {
        let mut h = self.h;
        for byte in self.n.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(Self::PRIME);
        }
        h
    }
}

/// A deterministic, chunked producer of candidate record pairs.
///
/// See the [module docs](self) for the streaming contract. Implementors
/// provide [`describe`](CandidateSource::describe),
/// [`size_hint`](CandidateSource::size_hint) and
/// [`stream`](CandidateSource::stream); collection and fingerprinting are
/// derived.
pub trait CandidateSource {
    /// Human-readable strategy label including its parameters, e.g.
    /// `"token-jaccard(t=0.1875)"`. Used in reports and benchmarks.
    fn describe(&self) -> String;

    /// `(lower, upper)` bounds on the number of candidate pairs this
    /// source will emit for `ds`, before running it. `None` means no
    /// upper bound cheaper than streaming. Used to pre-size collectors.
    fn size_hint(&self, ds: &EmDataset) -> (usize, Option<usize>);

    /// Stream the candidate pairs of `ds` into `sink` in consecutive
    /// chunks. A sink error aborts the stream and is returned verbatim.
    fn stream(
        &self,
        ds: &EmDataset,
        sink: &mut dyn FnMut(&[Pair]) -> Result<(), AlemError>,
    ) -> Result<(), AlemError>;

    /// Materialize the full candidate list (pre-sized from
    /// [`size_hint`](CandidateSource::size_hint)). Prefer
    /// [`stream`](CandidateSource::stream) when the consumer can work in
    /// chunks.
    fn collect_pairs(&self, ds: &EmDataset) -> Result<Vec<Pair>, AlemError> {
        let (lower, _) = self.size_hint(ds);
        let mut out: Vec<Pair> = Vec::with_capacity(lower);
        self.stream(ds, &mut |chunk| {
            out.extend_from_slice(chunk);
            Ok(())
        })?;
        Ok(out)
    }

    /// Fingerprint of the emitted pair sequence (chunk-boundary and
    /// thread-count invariant). Streams the source; does not materialize.
    fn fingerprint(&self, ds: &EmDataset) -> Result<u64, AlemError> {
        let mut hasher = PairHasher::new();
        self.stream(ds, &mut |chunk| {
            hasher.eat_chunk(chunk);
            Ok(())
        })?;
        Ok(hasher.finish())
    }
}

/// Collect a source's pairs while *verifying* the streaming contract:
/// strictly increasing `(left, right)` order (which implies deduplication)
/// and in-bounds indices. Returns `AlemError::InvalidConfig` naming the
/// source and the first offending pair otherwise. Property tests and the
/// corpus builder use this so a buggy source fails loudly instead of
/// corrupting fingerprints downstream.
pub fn collect_validated(
    source: &dyn CandidateSource,
    ds: &EmDataset,
) -> Result<Vec<Pair>, AlemError> {
    let (lower, _) = source.size_hint(ds);
    let mut out: Vec<Pair> = Vec::with_capacity(lower);
    let n_left = ds.left.len();
    let n_right = ds.right.len();
    let mut bad: Option<String> = None;
    source.stream(ds, &mut |chunk| {
        for &(l, r) in chunk {
            if l as usize >= n_left || r as usize >= n_right {
                bad = Some(format!("out-of-bounds pair ({l}, {r})"));
            } else if let Some(&last) = out.last() {
                if last >= (l, r) {
                    bad = Some(format!(
                        "unsorted or duplicate pair ({l}, {r}) after ({}, {})",
                        last.0, last.1
                    ));
                }
            }
            if let Some(why) = bad.take() {
                return Err(AlemError::InvalidConfig(format!(
                    "candidate source {} violated the streaming contract: {why}",
                    source.describe()
                )));
            }
            out.push((l, r));
        }
        Ok(())
    })?;
    Ok(out)
}

/// Recall of one group of true matches (grouped by an attribute of the
/// left record), the skew diagnostic of group-wise blocking evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRecall {
    /// Group key: the left record's attribute value (`"(missing)"` when
    /// null).
    pub group: String,
    /// True matches whose left record falls in this group.
    pub matches_total: usize,
    /// Of those, matches surviving candidate generation.
    pub matches_retained: usize,
    /// `matches_retained / matches_total`.
    pub recall: f64,
}

/// Quality report of one [`CandidateSource`] on one dataset: the blocking
/// metrics of "Evaluating Blocking Biases in Entity Matching" computed in
/// a single streaming pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingReport {
    /// [`CandidateSource::describe`] of the measured source.
    pub source: String,
    /// Candidate pairs emitted.
    pub candidates: u64,
    /// Size of the full Cartesian product.
    pub total_pairs: u64,
    /// `1 - candidates / total_pairs`: how much of the Cartesian product
    /// the source pruned away.
    pub reduction_ratio: f64,
    /// True matches in the dataset.
    pub matches_total: usize,
    /// True matches surviving candidate generation.
    pub matches_retained: usize,
    /// Blocking recall: `matches_retained / matches_total`.
    pub recall: f64,
    /// Per-group recall (groups keyed by a left-record attribute), sorted
    /// by group key. Empty when no grouping attribute was requested.
    pub group_recall: Vec<GroupRecall>,
    /// Fingerprint of the emitted pair sequence (see [`PairHasher`]).
    pub fingerprint: u64,
}

impl BlockingReport {
    /// Measure `source` against `ds` in one streaming pass. `group_attr`
    /// names a left-table schema attribute to bucket true matches by
    /// (e.g. `gender` on the social corpus); `None` skips group-wise
    /// recall. Memory stays `O(matches)` — the candidate set itself is
    /// never materialized.
    pub fn compute(
        source: &dyn CandidateSource,
        ds: &EmDataset,
        group_attr: Option<usize>,
    ) -> Result<Self, AlemError> {
        if let Some(a) = group_attr {
            if a >= ds.left.schema().len() {
                return Err(AlemError::InvalidConfig(format!(
                    "group attribute index {a} out of range for schema of arity {}",
                    ds.left.schema().len()
                )));
            }
        }
        let mut hasher = PairHasher::new();
        let mut retained: BTreeSet<Pair> = BTreeSet::new();
        source.stream(ds, &mut |chunk| {
            hasher.eat_chunk(chunk);
            for &p in chunk {
                if ds.is_match(p) {
                    retained.insert(p);
                }
            }
            Ok(())
        })?;

        let total_pairs = ds.total_pairs();
        let candidates = hasher.count();
        let matches_total = ds.matches.len();
        let matches_retained = retained.len();
        let recall = if matches_total == 0 {
            1.0
        } else {
            matches_retained as f64 / matches_total as f64
        };
        let reduction_ratio = if total_pairs == 0 {
            0.0
        } else {
            1.0 - candidates as f64 / total_pairs as f64
        };

        let mut group_recall = Vec::new();
        if let Some(attr) = group_attr {
            let mut groups: BTreeMap<String, (usize, usize)> = BTreeMap::new();
            for &m in &ds.matches {
                let key = ds
                    .left
                    .record(m.0 as usize)
                    .value(attr)
                    .unwrap_or("(missing)")
                    .to_owned();
                let entry = groups.entry(key).or_insert((0, 0));
                entry.0 += 1;
                if retained.contains(&m) {
                    entry.1 += 1;
                }
            }
            group_recall = groups
                .into_iter()
                .map(|(group, (total, kept))| GroupRecall {
                    group,
                    matches_total: total,
                    matches_retained: kept,
                    recall: if total == 0 {
                        1.0
                    } else {
                        kept as f64 / total as f64
                    },
                })
                .collect();
        }

        Ok(BlockingReport {
            source: source.describe(),
            candidates,
            total_pairs,
            reduction_ratio,
            matches_total,
            matches_retained,
            recall,
            group_recall,
            fingerprint: hasher.finish(),
        })
    }

    /// Smallest per-group recall minus the overall recall — a negative
    /// value means at least one group is blocked *worse* than average
    /// (the skew signal). `0.0` when no grouping was computed.
    pub fn worst_group_gap(&self) -> f64 {
        self.group_recall
            .iter()
            .map(|g| g.recall - self.recall)
            .fold(0.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrKind, Record, Schema, Table};

    /// A source that replays a fixed pair list in fixed-size chunks.
    struct Fixed(Vec<Pair>, usize);

    impl CandidateSource for Fixed {
        fn describe(&self) -> String {
            format!("fixed({} pairs)", self.0.len())
        }
        fn size_hint(&self, _ds: &EmDataset) -> (usize, Option<usize>) {
            (self.0.len(), Some(self.0.len()))
        }
        fn stream(
            &self,
            _ds: &EmDataset,
            sink: &mut dyn FnMut(&[Pair]) -> Result<(), AlemError>,
        ) -> Result<(), AlemError> {
            for chunk in self.0.chunks(self.1.max(1)) {
                sink(chunk)?;
            }
            Ok(())
        }
    }

    fn dataset() -> EmDataset {
        let schema = Schema::new(vec![("name", AttrKind::Text), ("group", AttrKind::Text)]);
        let rec = |n: &str, g: &str| Record::new(vec![Some(n.into()), Some(g.into())]);
        EmDataset {
            left: Table::new(
                "l",
                schema.clone(),
                vec![rec("a", "x"), rec("b", "x"), rec("c", "y")],
            ),
            right: Table::new(
                "r",
                schema,
                vec![rec("a", "x"), rec("b", "x"), rec("c", "y"), rec("d", "y")],
            ),
            matches: [(0, 0), (1, 1), (2, 2)].into_iter().collect(),
            name: "toy".into(),
        }
    }

    #[test]
    fn fingerprint_is_chunk_boundary_invariant() {
        let ds = dataset();
        let pairs = vec![(0, 0), (0, 1), (1, 1), (2, 3)];
        let a = Fixed(pairs.clone(), 1).fingerprint(&ds).unwrap();
        let b = Fixed(pairs.clone(), 3).fingerprint(&ds).unwrap();
        let c = Fixed(pairs, 64).fingerprint(&ds).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn fingerprint_distinguishes_prefix_from_full_stream() {
        let ds = dataset();
        let full = Fixed(vec![(0, 0), (1, 1)], 8).fingerprint(&ds).unwrap();
        let prefix = Fixed(vec![(0, 0)], 8).fingerprint(&ds).unwrap();
        assert_ne!(full, prefix);
    }

    #[test]
    fn report_metrics() {
        let ds = dataset();
        // Retains matches (0,0) and (1,1) but loses (2,2): recall 2/3.
        let src = Fixed(vec![(0, 0), (0, 3), (1, 1)], 2);
        let rep = BlockingReport::compute(&src, &ds, Some(1)).unwrap();
        assert_eq!(rep.candidates, 3);
        assert_eq!(rep.total_pairs, 12);
        assert_eq!(rep.matches_total, 3);
        assert_eq!(rep.matches_retained, 2);
        assert!((rep.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((rep.reduction_ratio - (1.0 - 3.0 / 12.0)).abs() < 1e-12);
        // Group x keeps both its matches; group y loses its only one.
        assert_eq!(rep.group_recall.len(), 2);
        assert_eq!(rep.group_recall[0].group, "x");
        assert_eq!(rep.group_recall[0].recall, 1.0);
        assert_eq!(rep.group_recall[1].group, "y");
        assert_eq!(rep.group_recall[1].recall, 0.0);
        assert!((rep.worst_group_gap() - (0.0 - rep.recall)).abs() < 1e-12);
    }

    #[test]
    fn report_rejects_bad_group_attr() {
        let ds = dataset();
        let src = Fixed(vec![(0, 0)], 2);
        assert!(BlockingReport::compute(&src, &ds, Some(9)).is_err());
    }

    #[test]
    fn collect_validated_accepts_sorted_and_rejects_violations() {
        let ds = dataset();
        let ok = Fixed(vec![(0, 0), (0, 1), (2, 3)], 2);
        assert_eq!(
            collect_validated(&ok, &ds).unwrap(),
            vec![(0, 0), (0, 1), (2, 3)]
        );

        let dup = Fixed(vec![(0, 0), (0, 0)], 2);
        assert!(collect_validated(&dup, &ds).is_err());

        let unsorted = Fixed(vec![(1, 0), (0, 0)], 2);
        assert!(collect_validated(&unsorted, &ds).is_err());

        let oob = Fixed(vec![(0, 17)], 2);
        assert!(collect_validated(&oob, &ds).is_err());
    }
}
