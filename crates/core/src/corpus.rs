//! [`Corpus`]: the post-blocking pair universe an active-learning run
//! operates on — feature vectors, optional Boolean predicate vectors, and
//! the hidden ground truth consulted by the Oracle and the evaluator.
//!
//! Feature rows live in a [`FeatureStore`](crate::featurestore::FeatureStore)
//! — flat and contiguous when built eagerly, memoized on-demand when built
//! with [`Corpus::from_candidates_lazy_with`]. Boolean predicate rows are
//! derived lazily from the continuous rows on first use, so runs that never
//! touch the rule learner never pay for a second full matrix.

use crate::blocking::BlockingConfig;
use crate::candidates::CandidateSource;
use crate::error::AlemError;
use crate::features::FeatureExtractor;
use crate::featurestore::FeatureStore;
use crate::schema::{EmDataset, Pair};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::{Arc, OnceLock};

/// Boolean predicate rows: absent, attached verbatim, or derived on
/// demand from the continuous rows (and then memoized).
#[derive(Debug, Clone)]
enum BoolFeatures {
    None,
    // alem-lint: allow(flat-feature-store) -- verbatim caller-attached predicate rows, the rule-learner ingestion seam
    Eager(Vec<Vec<f64>>),
    Derived {
        fx: Arc<FeatureExtractor>,
        // alem-lint: allow(flat-feature-store) -- memo cell for rows derived via FeatureExtractor::booleanize
        cell: OnceLock<Vec<Vec<f64>>>,
    },
}

/// A fully featurized set of candidate pairs with hidden ground truth.
#[derive(Debug, Clone)]
pub struct Corpus {
    name: String,
    pairs: Vec<Pair>,
    store: FeatureStore,
    bool_features: BoolFeatures,
    truth: Vec<bool>,
    /// True when every feature value is guaranteed to lie in `[0, 1]`
    /// (extractor-built corpora: similarities clamp, sanitize maps
    /// non-finite to 0). Interval-bound lazy selection requires this.
    bounded01: bool,
}

impl Corpus {
    /// Build a corpus from any [`CandidateSource`] — the paper's Jaccard
    /// filter ([`BlockingConfig`]), an `alem-block` index strategy, or
    /// anything else that streams deterministic sorted pairs — featurize
    /// eagerly, and attach ground truth. Returns the corpus and the
    /// (shared) extractor, whose feature descriptions the
    /// interpretability reports need.
    pub fn from_candidates(
        ds: &EmDataset,
        source: &dyn CandidateSource,
    ) -> Result<(Self, Arc<FeatureExtractor>), AlemError> {
        Corpus::from_candidates_with(ds, source, &alem_par::Parallelism::default())
    }

    /// [`Corpus::from_candidates`] with an explicit thread-count policy
    /// for the feature-extraction fan-out. Output is byte-identical for
    /// any `par` (rows merge in pair order); only build wall-clock
    /// changes.
    ///
    /// Boolean predicate rows are *not* built here: they derive from the
    /// continuous rows on the first [`Corpus::bool_features`] call, so
    /// strategies that never use them never pay the second matrix.
    pub fn from_candidates_with(
        ds: &EmDataset,
        source: &dyn CandidateSource,
        par: &alem_par::Parallelism,
    ) -> Result<(Self, Arc<FeatureExtractor>), AlemError> {
        let pairs = source.collect_pairs(ds)?;
        Ok(Corpus::from_pairs_eager(ds, pairs, par))
    }

    /// Fully lazy corpus from any [`CandidateSource`]: candidate pairs
    /// and ground truth are computed up front but no feature row is
    /// extracted until a learner or selector first reads it, after which
    /// the row is memoized for the corpus lifetime. Rows are
    /// bit-identical to the eager build; see
    /// [`Corpus::content_fingerprint`] for the one observable difference.
    pub fn from_candidates_lazy_with(
        ds: &EmDataset,
        source: &dyn CandidateSource,
        _par: &alem_par::Parallelism,
    ) -> Result<(Self, Arc<FeatureExtractor>), AlemError> {
        let pairs = source.collect_pairs(ds)?;
        Ok(Corpus::from_pairs_lazy(ds, pairs))
    }

    /// Build a corpus from an [`EmDataset`]: block, featurize, and attach
    /// ground truth.
    #[deprecated(
        note = "use Corpus::from_candidates(ds, &blocking) — any CandidateSource \
                (see the alem-block strategies) can feed a corpus now"
    )]
    pub fn from_dataset(
        ds: &EmDataset,
        blocking: &BlockingConfig,
    ) -> (Self, Arc<FeatureExtractor>) {
        Corpus::from_pairs_eager(ds, blocking.block(ds), &alem_par::Parallelism::default())
    }

    /// Blocking-config corpus with an explicit thread-count policy.
    #[deprecated(
        note = "use Corpus::from_candidates_with(ds, &blocking, par) — any CandidateSource \
                (see the alem-block strategies) can feed a corpus now"
    )]
    pub fn from_dataset_with(
        ds: &EmDataset,
        blocking: &BlockingConfig,
        par: &alem_par::Parallelism,
    ) -> (Self, Arc<FeatureExtractor>) {
        Corpus::from_pairs_eager(ds, blocking.block(ds), par)
    }

    /// Lazy blocking-config corpus.
    #[deprecated(
        note = "use Corpus::from_candidates_lazy_with(ds, &blocking, par) — any CandidateSource \
                (see the alem-block strategies) can feed a corpus now"
    )]
    pub fn from_dataset_lazy_with(
        ds: &EmDataset,
        blocking: &BlockingConfig,
        _par: &alem_par::Parallelism,
    ) -> (Self, Arc<FeatureExtractor>) {
        Corpus::from_pairs_lazy(ds, blocking.block(ds))
    }

    /// Eagerly featurized corpus over an already-materialized pair list.
    fn from_pairs_eager(
        ds: &EmDataset,
        pairs: Vec<Pair>,
        par: &alem_par::Parallelism,
    ) -> (Self, Arc<FeatureExtractor>) {
        let fx = Arc::new(FeatureExtractor::new(ds));
        let store = FeatureStore::from_rows(fx.extract_all_with(&pairs, par));
        let truth = pairs.iter().map(|&p| ds.is_match(p)).collect();
        (
            Corpus {
                name: ds.name.clone(),
                pairs,
                store,
                bool_features: BoolFeatures::Derived {
                    fx: Arc::clone(&fx),
                    cell: OnceLock::new(),
                },
                truth,
                bounded01: true,
            },
            fx,
        )
    }

    /// Lazily featurized corpus over an already-materialized pair list.
    fn from_pairs_lazy(ds: &EmDataset, pairs: Vec<Pair>) -> (Self, Arc<FeatureExtractor>) {
        let fx = Arc::new(FeatureExtractor::new(ds));
        let store = FeatureStore::lazy(Arc::clone(&fx), pairs.clone());
        let truth = pairs.iter().map(|&p| ds.is_match(p)).collect();
        (
            Corpus {
                name: ds.name.clone(),
                pairs,
                store,
                bool_features: BoolFeatures::Derived {
                    fx: Arc::clone(&fx),
                    cell: OnceLock::new(),
                },
                truth,
                bounded01: true,
            },
            fx,
        )
    }

    /// Build a corpus directly from feature vectors and labels (tests,
    /// docs, and workloads that skip the table layer).
    // alem-lint: allow(flat-feature-store) -- caller-facing ingestion seam; rows are flattened into the store here
    pub fn from_features(features: Vec<Vec<f64>>, truth: Vec<bool>) -> Self {
        assert_eq!(features.len(), truth.len(), "feature/label mismatch");
        let pairs = (0..features.len() as u32).map(|i| (i, 0)).collect();
        Corpus {
            name: "anonymous".into(),
            pairs,
            store: FeatureStore::from_rows(features),
            bool_features: BoolFeatures::None,
            truth,
            bounded01: false,
        }
    }

    /// Attach Boolean predicate vectors (needed by the rule learner).
    // alem-lint: allow(flat-feature-store) -- caller-facing ingestion seam for pre-built predicate rows
    pub fn with_bool_features(mut self, bool_features: Vec<Vec<f64>>) -> Self {
        assert_eq!(bool_features.len(), self.len(), "bool feature mismatch");
        self.bool_features = BoolFeatures::Eager(bool_features);
        self
    }

    /// Set the dataset name (reports group results by it).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of post-blocking pairs.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the corpus has no pairs.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Continuous feature dimensionality.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// The record pair behind example `i`.
    pub fn pair(&self, i: usize) -> Pair {
        self.pairs[i]
    }

    /// Continuous feature row of example `i`. On a lazy corpus this
    /// materializes (and memoizes) the row on first read.
    pub fn x(&self, i: usize) -> &[f64] {
        self.store.row(i)
    }

    /// The backing feature store (flat eager matrix or memoized lazy
    /// rows). Selectors use this for partial, selected-dims reads.
    pub fn store(&self) -> &FeatureStore {
        &self.store
    }

    /// True when every feature value is guaranteed to lie in `[0, 1]`.
    /// Extractor-built corpora always qualify (similarity functions clamp
    /// their output and sanitization maps non-finite values to 0); a
    /// [`Corpus::from_features`] corpus only after
    /// [`Corpus::with_bounded_features`]. Two-phase lazy selection keys
    /// off this: its pruning bounds are only sound for bounded features.
    pub fn features_bounded_01(&self) -> bool {
        self.bounded01
    }

    /// Declare that every feature value lies in `[0, 1]`, enabling
    /// interval-bound lazy selection on hand-built corpora. Debug builds
    /// verify the claim against already-materialized rows.
    pub fn with_bounded_features(mut self) -> Self {
        #[cfg(debug_assertions)]
        if let Some(flat) = self.store.flat() {
            debug_assert!(
                flat.iter().all(|v| (0.0..=1.0).contains(v)),
                "with_bounded_features: a feature value lies outside [0, 1]"
            );
        }
        self.bounded01 = true;
        self
    }

    /// Boolean predicate rows. Rows attached via
    /// [`Corpus::with_bool_features`] are returned verbatim; corpora built
    /// from datasets derive them from the continuous rows on first call
    /// (memoized thereafter). Returns `None` only for
    /// [`Corpus::from_features`] corpora with nothing attached.
    pub fn bool_features(&self) -> Option<&[Vec<f64>]> {
        match &self.bool_features {
            BoolFeatures::None => None,
            BoolFeatures::Eager(rows) => Some(rows),
            BoolFeatures::Derived { fx, cell } => Some(cell.get_or_init(|| {
                (0..self.store.len())
                    .map(|i| fx.booleanize(self.store.row(i)))
                    .collect()
            })),
        }
    }

    /// Ground-truth label of example `i` (hidden from learners; only the
    /// Oracle and evaluator read it).
    pub fn truth(&self, i: usize) -> bool {
        self.truth[i]
    }

    /// All ground-truth labels.
    pub fn truths(&self) -> &[bool] {
        &self.truth
    }

    /// Non-finite feature values (NaN/±∞) sanitized to 0 so far. Eager
    /// corpora count at construction; lazy corpora count as rows
    /// materialize. The session layer logs this once per run.
    pub fn sanitized_features(&self) -> usize {
        self.store.sanitized_count() as usize
    }

    /// Cumulative feature-cache traffic `(hits, misses)` of the backing
    /// store. Always `(0, 0)` for eager corpora — eager row reads are
    /// plain slices, not cache lookups.
    pub fn feature_cache_stats(&self) -> (u64, u64) {
        (self.store.cache_hits(), self.store.cache_misses())
    }

    /// Content fingerprint: FNV-1a over every feature bit pattern, truth
    /// label, and Boolean predicate row. Two corpora with the same length
    /// but different contents fingerprint differently, which is what lets
    /// [`crate::session::Checkpoint`] reject a resume against the wrong
    /// data (same-length corpora previously slipped through silently).
    /// Pair ids and the dataset name are deliberately excluded: they don't
    /// affect learning, and the dataset name is checked separately.
    ///
    /// Lazy corpora hash pair identities (plus a lazy marker) instead of
    /// feature bytes — hashing bytes would force full materialization and
    /// defeat laziness. Derived-on-demand Boolean rows hash a marker for
    /// the same reason (they are a pure function of the continuous rows).
    /// Consequence: a checkpoint written against a lazy corpus must be
    /// resumed against a lazy corpus, and likewise for eager.
    pub fn content_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        fn eat(h: &mut u64, byte: u8) {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(PRIME);
        }
        fn eat_u64(h: &mut u64, v: u64) {
            for byte in v.to_le_bytes() {
                eat(h, byte);
            }
        }
        eat_u64(&mut h, self.store.len() as u64);
        eat_u64(&mut h, self.dim() as u64);
        match self.store.flat() {
            Some(flat) => {
                for v in flat {
                    eat_u64(&mut h, v.to_bits());
                }
            }
            None => {
                // Lazy marker, then pair identities: content is defined by
                // what would be extracted, not what has been.
                eat_u64(&mut h, 0x4c41_5a59); // "LAZY"
                for &(l, r) in self.store.lazy_pairs().unwrap_or(&[]) {
                    eat_u64(&mut h, u64::from(l));
                    eat_u64(&mut h, u64::from(r));
                }
            }
        }
        for &t in &self.truth {
            eat(&mut h, u8::from(t));
        }
        match &self.bool_features {
            BoolFeatures::None => {}
            BoolFeatures::Eager(rows) => {
                for row in rows {
                    for v in row {
                        eat_u64(&mut h, v.to_bits());
                    }
                }
            }
            BoolFeatures::Derived { .. } => {
                // Derived rows add no information over the continuous rows
                // already hashed; a marker keeps the stream deterministic
                // regardless of whether derivation has happened yet.
                eat_u64(&mut h, 0x4445_5249); // "DERI"
            }
        }
        h
    }

    /// Class skew: fraction of true matches among pairs.
    pub fn skew(&self) -> f64 {
        if self.truth.is_empty() {
            return 0.0;
        }
        self.truth.iter().filter(|&&t| t).count() as f64 / self.truth.len() as f64
    }

    /// Stratified hold-out split preserving class skew (the conventional
    /// 80/20 supervised split of §6.2). Returns `(train_pool, test)`
    /// example indices, shuffled.
    pub fn split_holdout<R: Rng>(&self, test_frac: f64, rng: &mut R) -> (Vec<usize>, Vec<usize>) {
        assert!(
            (0.0..1.0).contains(&test_frac),
            "test_frac must be in [0,1)"
        );
        let mut pos: Vec<usize> = (0..self.len()).filter(|&i| self.truth[i]).collect();
        let mut neg: Vec<usize> = (0..self.len()).filter(|&i| !self.truth[i]).collect();
        pos.shuffle(rng);
        neg.shuffle(rng);
        let pos_test = (pos.len() as f64 * test_frac).round() as usize;
        let neg_test = (neg.len() as f64 * test_frac).round() as usize;
        let mut test: Vec<usize> = pos[..pos_test].to_vec();
        test.extend(&neg[..neg_test]);
        let mut train: Vec<usize> = pos[pos_test..].to_vec();
        train.extend(&neg[neg_test..]);
        train.shuffle(rng);
        test.shuffle(rng);
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Corpus {
        let features = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let truth = (0..n).map(|i| i % 5 == 0).collect();
        Corpus::from_features(features, truth)
    }

    #[test]
    fn accessors() {
        let c = toy(50);
        assert_eq!(c.len(), 50);
        assert_eq!(c.dim(), 1);
        assert!(c.truth(0));
        assert!(!c.truth(1));
        assert!((c.skew() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn holdout_preserves_skew() {
        let c = toy(100);
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = c.split_holdout(0.2, &mut rng);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 20);
        let skew =
            |idx: &[usize]| idx.iter().filter(|&&i| c.truth(i)).count() as f64 / idx.len() as f64;
        assert!((skew(&test) - 0.2).abs() < 0.05);
        assert!((skew(&train) - 0.2).abs() < 0.05);
    }

    #[test]
    fn holdout_disjoint_and_complete() {
        let c = toy(60);
        let mut rng = StdRng::seed_from_u64(6);
        let (train, test) = c.split_holdout(0.25, &mut rng);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 60);
    }

    #[test]
    #[should_panic(expected = "feature/label mismatch")]
    fn rejects_mismatch() {
        Corpus::from_features(vec![vec![0.0]], vec![true, false]);
    }

    #[test]
    fn content_fingerprint_tracks_contents_not_length() {
        let a = toy(40);
        let b = toy(40);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());

        // Same length, one feature bit different: fingerprints diverge.
        let mut feats: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        feats[17][0] += 1e-12;
        let c = Corpus::from_features(feats, (0..40).map(|i| i % 5 == 0).collect());
        assert_ne!(a.content_fingerprint(), c.content_fingerprint());

        // Same features, one truth label different: fingerprints diverge.
        let feats: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let mut truth: Vec<bool> = (0..40).map(|i| i % 5 == 0).collect();
        truth[3] = !truth[3];
        let d = Corpus::from_features(feats, truth);
        assert_ne!(a.content_fingerprint(), d.content_fingerprint());

        // Attaching bool features changes the fingerprint (it is part of
        // what the learner sees).
        let e = toy(40).with_bool_features(vec![vec![1.0]; 40]);
        assert_ne!(a.content_fingerprint(), e.content_fingerprint());

        // Renaming does not (identity is content, not label).
        let f = toy(40).with_name("renamed");
        assert_eq!(a.content_fingerprint(), f.content_fingerprint());
    }

    #[test]
    fn non_finite_features_are_sanitized() {
        let c = Corpus::from_features(
            vec![
                vec![0.5, f64::NAN],
                vec![f64::INFINITY, 1.0],
                vec![0.1, f64::NEG_INFINITY],
            ],
            vec![true, false, true],
        );
        assert_eq!(c.sanitized_features(), 3);
        assert!((0..c.len()).all(|i| c.x(i).iter().all(|v| v.is_finite())));
        assert_eq!(c.x(0), &[0.5, 0.0]);
        assert_eq!(c.x(1), &[0.0, 1.0]);
    }
}
