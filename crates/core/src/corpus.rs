//! [`Corpus`]: the post-blocking pair universe an active-learning run
//! operates on — feature vectors, optional Boolean predicate vectors, and
//! the hidden ground truth consulted by the Oracle and the evaluator.

use crate::blocking::BlockingConfig;
use crate::features::FeatureExtractor;
use crate::schema::{EmDataset, Pair};
use rand::seq::SliceRandom;
use rand::Rng;

/// A fully featurized set of candidate pairs with hidden ground truth.
#[derive(Debug, Clone)]
pub struct Corpus {
    name: String,
    pairs: Vec<Pair>,
    features: Vec<Vec<f64>>,
    bool_features: Option<Vec<Vec<f64>>>,
    truth: Vec<bool>,
    /// Non-finite feature values replaced with 0 at construction.
    sanitized: usize,
}

/// Replace NaN/±∞ with 0.0 in place, returning how many values changed.
/// Broken similarity functions (divide-by-zero on empty strings, overflow
/// on pathological inputs) must not poison a whole training run.
fn sanitize(features: &mut [Vec<f64>]) -> usize {
    let mut fixed = 0;
    for row in features.iter_mut() {
        for v in row.iter_mut() {
            if !v.is_finite() {
                *v = 0.0;
                fixed += 1;
            }
        }
    }
    fixed
}

impl Corpus {
    /// Build a corpus from an [`EmDataset`]: block, featurize, and attach
    /// ground truth. Returns the corpus and the extractor (whose feature
    /// descriptions the interpretability reports need).
    pub fn from_dataset(ds: &EmDataset, blocking: &BlockingConfig) -> (Self, FeatureExtractor) {
        Corpus::from_dataset_with(ds, blocking, &alem_par::Parallelism::default())
    }

    /// [`Corpus::from_dataset`] with an explicit thread-count policy for
    /// the feature-extraction fan-out. Output is byte-identical for any
    /// `par` (rows merge in pair order); only build wall-clock changes.
    pub fn from_dataset_with(
        ds: &EmDataset,
        blocking: &BlockingConfig,
        par: &alem_par::Parallelism,
    ) -> (Self, FeatureExtractor) {
        let pairs = blocking.block(ds);
        let fx = FeatureExtractor::new(ds);
        let mut features = fx.extract_all_with(&pairs, par);
        let sanitized = sanitize(&mut features);
        let bool_features = fx.booleanize_all(&features);
        let truth = pairs.iter().map(|&p| ds.is_match(p)).collect();
        (
            Corpus {
                name: ds.name.clone(),
                pairs,
                features,
                bool_features: Some(bool_features),
                truth,
                sanitized,
            },
            fx,
        )
    }

    /// Build a corpus directly from feature vectors and labels (tests,
    /// docs, and workloads that skip the table layer).
    pub fn from_features(mut features: Vec<Vec<f64>>, truth: Vec<bool>) -> Self {
        assert_eq!(features.len(), truth.len(), "feature/label mismatch");
        let sanitized = sanitize(&mut features);
        let pairs = (0..features.len() as u32).map(|i| (i, 0)).collect();
        Corpus {
            name: "anonymous".into(),
            pairs,
            features,
            bool_features: None,
            truth,
            sanitized,
        }
    }

    /// Attach Boolean predicate vectors (needed by the rule learner).
    pub fn with_bool_features(mut self, bool_features: Vec<Vec<f64>>) -> Self {
        assert_eq!(bool_features.len(), self.len(), "bool feature mismatch");
        self.bool_features = Some(bool_features);
        self
    }

    /// Set the dataset name (reports group results by it).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of post-blocking pairs.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the corpus has no pairs.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Continuous feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// The record pair behind example `i`.
    pub fn pair(&self, i: usize) -> Pair {
        self.pairs[i]
    }

    /// Continuous feature row of example `i`.
    pub fn x(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// All continuous feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Boolean predicate rows, if attached.
    pub fn bool_features(&self) -> Option<&[Vec<f64>]> {
        self.bool_features.as_deref()
    }

    /// Ground-truth label of example `i` (hidden from learners; only the
    /// Oracle and evaluator read it).
    pub fn truth(&self, i: usize) -> bool {
        self.truth[i]
    }

    /// All ground-truth labels.
    pub fn truths(&self) -> &[bool] {
        &self.truth
    }

    /// Non-finite feature values (NaN/±∞) that were sanitized to 0 when
    /// the corpus was built. The session layer logs this once per run.
    pub fn sanitized_features(&self) -> usize {
        self.sanitized
    }

    /// Content fingerprint: FNV-1a over every feature bit pattern, truth
    /// label, and Boolean predicate row. Two corpora with the same length
    /// but different contents fingerprint differently, which is what lets
    /// [`crate::session::Checkpoint`] reject a resume against the wrong
    /// data (same-length corpora previously slipped through silently).
    /// Pair ids and the dataset name are deliberately excluded: they don't
    /// affect learning, and the dataset name is checked separately.
    pub fn content_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        fn eat(h: &mut u64, byte: u8) {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(PRIME);
        }
        fn eat_u64(h: &mut u64, v: u64) {
            for byte in v.to_le_bytes() {
                eat(h, byte);
            }
        }
        eat_u64(&mut h, self.features.len() as u64);
        eat_u64(&mut h, self.dim() as u64);
        for row in &self.features {
            for v in row {
                eat_u64(&mut h, v.to_bits());
            }
        }
        for &t in &self.truth {
            eat(&mut h, u8::from(t));
        }
        if let Some(rows) = &self.bool_features {
            for row in rows {
                for v in row {
                    eat_u64(&mut h, v.to_bits());
                }
            }
        }
        h
    }

    /// Class skew: fraction of true matches among pairs.
    pub fn skew(&self) -> f64 {
        if self.truth.is_empty() {
            return 0.0;
        }
        self.truth.iter().filter(|&&t| t).count() as f64 / self.truth.len() as f64
    }

    /// Stratified hold-out split preserving class skew (the conventional
    /// 80/20 supervised split of §6.2). Returns `(train_pool, test)`
    /// example indices, shuffled.
    pub fn split_holdout<R: Rng>(&self, test_frac: f64, rng: &mut R) -> (Vec<usize>, Vec<usize>) {
        assert!(
            (0.0..1.0).contains(&test_frac),
            "test_frac must be in [0,1)"
        );
        let mut pos: Vec<usize> = (0..self.len()).filter(|&i| self.truth[i]).collect();
        let mut neg: Vec<usize> = (0..self.len()).filter(|&i| !self.truth[i]).collect();
        pos.shuffle(rng);
        neg.shuffle(rng);
        let pos_test = (pos.len() as f64 * test_frac).round() as usize;
        let neg_test = (neg.len() as f64 * test_frac).round() as usize;
        let mut test: Vec<usize> = pos[..pos_test].to_vec();
        test.extend(&neg[..neg_test]);
        let mut train: Vec<usize> = pos[pos_test..].to_vec();
        train.extend(&neg[neg_test..]);
        train.shuffle(rng);
        test.shuffle(rng);
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Corpus {
        let features = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let truth = (0..n).map(|i| i % 5 == 0).collect();
        Corpus::from_features(features, truth)
    }

    #[test]
    fn accessors() {
        let c = toy(50);
        assert_eq!(c.len(), 50);
        assert_eq!(c.dim(), 1);
        assert!(c.truth(0));
        assert!(!c.truth(1));
        assert!((c.skew() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn holdout_preserves_skew() {
        let c = toy(100);
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = c.split_holdout(0.2, &mut rng);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 20);
        let skew =
            |idx: &[usize]| idx.iter().filter(|&&i| c.truth(i)).count() as f64 / idx.len() as f64;
        assert!((skew(&test) - 0.2).abs() < 0.05);
        assert!((skew(&train) - 0.2).abs() < 0.05);
    }

    #[test]
    fn holdout_disjoint_and_complete() {
        let c = toy(60);
        let mut rng = StdRng::seed_from_u64(6);
        let (train, test) = c.split_holdout(0.25, &mut rng);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 60);
    }

    #[test]
    #[should_panic(expected = "feature/label mismatch")]
    fn rejects_mismatch() {
        Corpus::from_features(vec![vec![0.0]], vec![true, false]);
    }

    #[test]
    fn content_fingerprint_tracks_contents_not_length() {
        let a = toy(40);
        let b = toy(40);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());

        // Same length, one feature bit different: fingerprints diverge.
        let mut feats: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        feats[17][0] += 1e-12;
        let c = Corpus::from_features(feats, (0..40).map(|i| i % 5 == 0).collect());
        assert_ne!(a.content_fingerprint(), c.content_fingerprint());

        // Same features, one truth label different: fingerprints diverge.
        let feats: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let mut truth: Vec<bool> = (0..40).map(|i| i % 5 == 0).collect();
        truth[3] = !truth[3];
        let d = Corpus::from_features(feats, truth);
        assert_ne!(a.content_fingerprint(), d.content_fingerprint());

        // Attaching bool features changes the fingerprint (it is part of
        // what the learner sees).
        let e = toy(40).with_bool_features(vec![vec![1.0]; 40]);
        assert_ne!(a.content_fingerprint(), e.content_fingerprint());

        // Renaming does not (identity is content, not label).
        let f = toy(40).with_name("renamed");
        assert_eq!(a.content_fingerprint(), f.content_fingerprint());
    }

    #[test]
    fn non_finite_features_are_sanitized() {
        let c = Corpus::from_features(
            vec![
                vec![0.5, f64::NAN],
                vec![f64::INFINITY, 1.0],
                vec![0.1, f64::NEG_INFINITY],
            ],
            vec![true, false, true],
        );
        assert_eq!(c.sanitized_features(), 3);
        assert!(c.features().iter().flatten().all(|v| v.is_finite()));
        assert_eq!(c.x(0), &[0.5, 0.0]);
        assert_eq!(c.x(1), &[0.0, 1.0]);
    }
}
