//! Active ensembles of linear classifiers (§5.2).
//!
//! Instead of refining a single SVM, the ensemble strategy accumulates
//! several *high-precision* SVMs over the course of active learning. When
//! the candidate SVM's precision on the freshly labeled batch reaches the
//! threshold τ (0.85 in the paper), it is accepted into the ensemble and
//! every pair it predicts as a match is removed from both the labeled and
//! the unlabeled pools — the next candidate is then learned on the
//! remaining, uncovered examples. The final matcher is the union of the
//! accepted classifiers' positive predictions, trading a little precision
//! for substantially higher recall (Fig. 11). Pool pruning also makes
//! selection latency fall sharply in later iterations (Fig. 10d).

use crate::corpus::Corpus;
use crate::error::AlemError;
use crate::learner::{SvmTrainer, Trainer};
use crate::selector::{self, Selection};
use crate::strategy::{labeled_rows, Strategy, StrategyStats};
use alem_obs::Registry;
use alem_par::Parallelism;
use mlcore::svm::LinearSvm;
use mlcore::Classifier;
use rand::rngs::StdRng;

/// Linear SVM + margin selection + incremental active ensemble.
pub struct EnsembleSvmStrategy {
    trainer: SvmTrainer,
    /// Precision threshold τ for accepting a candidate (paper: 0.85).
    tau: f64,
    accepted: Vec<LinearSvm>,
    candidate: Option<LinearSvm>,
    par: Parallelism,
}

impl EnsembleSvmStrategy {
    /// Active ensemble with acceptance threshold `tau`.
    pub fn new(trainer: SvmTrainer, tau: f64) -> Self {
        assert!((0.0..=1.0).contains(&tau), "tau must be a probability");
        EnsembleSvmStrategy {
            trainer,
            tau,
            accepted: Vec::new(),
            candidate: None,
            par: Parallelism::sequential(),
        }
    }

    /// The accepted component classifiers ("#AcceptedSVMs" in Fig. 11).
    pub fn accepted(&self) -> &[LinearSvm] {
        &self.accepted
    }

    fn union_predict(&self, x: &[f64]) -> bool {
        self.accepted.iter().any(|m| m.predict(x))
            || self.candidate.as_ref().is_some_and(|m| m.predict(x))
    }
}

impl Strategy for EnsembleSvmStrategy {
    fn name(&self) -> String {
        "Linear-Margin(Ensemble)".to_owned()
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        // Covered examples were pruned from the pools in post_label, so the
        // candidate is trained on exactly the uncovered labeled data.
        let (xs, ys) = labeled_rows(corpus, labeled, false)?;
        self.candidate = Some(self.trainer.train(&xs, &ys, rng));
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let Some(svm) = self.candidate.as_ref() else {
            return Selection::default();
        };
        selector::margin::select(
            |x| svm.margin(x),
            corpus,
            unlabeled,
            batch,
            rng,
            obs,
            &self.par,
        )
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        let svm = self.candidate.as_ref().ok_or_else(|| {
            AlemError::InvalidConfig("ensemble has no candidate yet; call fit first".to_owned())
        })?;
        Ok(selector::margin::score_pool(
            |x| svm.margin(x),
            corpus,
            unlabeled,
            &self.par,
        ))
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        self.union_predict(corpus.x(i))
    }

    fn stats(&self) -> StrategyStats {
        StrategyStats {
            accepted_models: Some(self.accepted.len()),
            ..StrategyStats::default()
        }
    }

    fn saved_model(&self) -> Option<crate::model_io::SavedModel> {
        let mut members = self.accepted.clone();
        members.extend(self.candidate.clone());
        Some(crate::model_io::SavedModel::SvmEnsemble(members))
    }

    fn post_label(
        &mut self,
        corpus: &Corpus,
        new: &[(usize, bool)],
        labeled: &mut Vec<(usize, bool)>,
        unlabeled: &mut Vec<usize>,
        _rng: &mut StdRng,
        obs: &Registry,
    ) {
        let Some(candidate) = &self.candidate else {
            return;
        };
        // Precision of the candidate on the Oracle-labeled batch (§5.2:
        // "the precision is computed on the selected examples in each
        // active learning iteration whose labels are provided by the
        // Oracle").
        let mut claimed = 0usize;
        let mut correct = 0usize;
        for &(i, y) in new {
            if candidate.predict(corpus.x(i)) {
                claimed += 1;
                if y {
                    correct += 1;
                }
            }
        }
        if claimed == 0 || (correct as f64 / claimed as f64) < self.tau {
            if claimed > 0 {
                obs.counter_add("ensemble.rejected", 1);
            }
            return;
        }
        // Accept and prune everything the new member covers.
        let Some(member) = self.candidate.take() else {
            return;
        };
        let before = labeled.len() + unlabeled.len();
        labeled.retain(|&(i, _)| !member.predict(corpus.x(i)));
        unlabeled.retain(|&i| !member.predict(corpus.x(i)));
        obs.counter_add("ensemble.accepted", 1);
        obs.counter_add(
            "ensemble.pruned_pairs",
            (before - labeled.len() - unlabeled.len()) as u64,
        );
        obs.gauge_set("pool.unlabeled", unlabeled.len() as u64);
        self.accepted.push(member);
    }
}

/// Active ensemble generalized over any trainer — the extension the paper
/// sketches at the end of §5.2 ("Active ensemble for neural networks can
/// be applied as discussed in the current section without much of a
/// modification"). Margin selection uses `|decision_value|`, acceptance
/// and pool pruning work exactly as in [`EnsembleSvmStrategy`].
pub struct ActiveEnsembleStrategy<T: Trainer> {
    trainer: T,
    tau: f64,
    accepted: Vec<T::Model>,
    candidate: Option<T::Model>,
    par: Parallelism,
}

impl<T: Trainer> ActiveEnsembleStrategy<T> {
    /// Active ensemble over `trainer` with acceptance threshold `tau`.
    pub fn new(trainer: T, tau: f64) -> Self {
        assert!((0.0..=1.0).contains(&tau), "tau must be a probability");
        ActiveEnsembleStrategy {
            trainer,
            tau,
            accepted: Vec::new(),
            candidate: None,
            par: Parallelism::sequential(),
        }
    }

    /// Number of accepted component models.
    pub fn accepted_len(&self) -> usize {
        self.accepted.len()
    }

    fn union_predict(&self, x: &[f64]) -> bool {
        self.accepted.iter().any(|m| m.predict(x))
            || self.candidate.as_ref().is_some_and(|m| m.predict(x))
    }
}

impl<T: Trainer> Strategy for ActiveEnsembleStrategy<T> {
    fn name(&self) -> String {
        format!("{}-Margin(Ensemble)", self.trainer.name())
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        let (xs, ys) = labeled_rows(corpus, labeled, false)?;
        self.candidate = Some(self.trainer.train(&xs, &ys, rng));
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let Some(model) = self.candidate.as_ref() else {
            return Selection::default();
        };
        selector::margin::select(
            |x| model.decision_value(x).abs(),
            corpus,
            unlabeled,
            batch,
            rng,
            obs,
            &self.par,
        )
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        let model = self.candidate.as_ref().ok_or_else(|| {
            AlemError::InvalidConfig("ensemble has no candidate yet; call fit first".to_owned())
        })?;
        Ok(selector::margin::score_pool(
            |x| model.decision_value(x).abs(),
            corpus,
            unlabeled,
            &self.par,
        ))
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        self.union_predict(corpus.x(i))
    }

    fn stats(&self) -> StrategyStats {
        StrategyStats {
            accepted_models: Some(self.accepted.len()),
            ..StrategyStats::default()
        }
    }

    fn post_label(
        &mut self,
        corpus: &Corpus,
        new: &[(usize, bool)],
        labeled: &mut Vec<(usize, bool)>,
        unlabeled: &mut Vec<usize>,
        _rng: &mut StdRng,
        obs: &Registry,
    ) {
        let Some(candidate) = &self.candidate else {
            return;
        };
        let mut claimed = 0usize;
        let mut correct = 0usize;
        for &(i, y) in new {
            if candidate.predict(corpus.x(i)) {
                claimed += 1;
                if y {
                    correct += 1;
                }
            }
        }
        if claimed == 0 || (correct as f64 / claimed as f64) < self.tau {
            if claimed > 0 {
                obs.counter_add("ensemble.rejected", 1);
            }
            return;
        }
        let Some(member) = self.candidate.take() else {
            return;
        };
        let before = labeled.len() + unlabeled.len();
        labeled.retain(|&(i, _)| !member.predict(corpus.x(i)));
        unlabeled.retain(|&i| !member.predict(corpus.x(i)));
        obs.counter_add("ensemble.accepted", 1);
        obs.counter_add(
            "ensemble.pruned_pairs",
            (before - labeled.len() - unlabeled.len()) as u64,
        );
        obs.gauge_set("pool.unlabeled", unlabeled.len() as u64);
        self.accepted.push(member);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Two disjoint positive clusters: a single linear model can't cover
    /// both without losing precision, an ensemble can.
    fn two_cluster_corpus() -> Corpus {
        let mut feats = Vec::new();
        let mut truth = Vec::new();
        for i in 0..150 {
            let v = i as f64 / 150.0;
            // Positives live in dim0 high OR dim1 high; negatives elsewhere.
            let (x0, x1, t) = match i % 3 {
                0 => (0.8 + v * 0.1, 0.0, true),
                1 => (0.0, 0.8 + v * 0.1, true),
                _ => (0.2 * v, 0.2 * (1.0 - v), false),
            };
            feats.push(vec![x0, x1]);
            truth.push(t);
        }
        Corpus::from_features(feats, truth)
    }

    #[test]
    fn accepts_high_precision_candidates_and_prunes() {
        let c = two_cluster_corpus();
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = EnsembleSvmStrategy::new(SvmTrainer::default(), 0.85);
        let labeled: Vec<(usize, bool)> = (0..30).map(|i| (i, c.truth(i))).collect();
        s.fit(&c, &labeled, &mut rng).unwrap();

        // Build a batch of newly labeled examples the candidate predicts
        // positive and that are truly positive.
        let new: Vec<(usize, bool)> = (30..60)
            .filter(|&i| s.candidate.as_ref().unwrap().predict(c.x(i)))
            .map(|i| (i, c.truth(i)))
            .collect();
        if new.iter().filter(|&&(_, y)| y).count() == new.len() && !new.is_empty() {
            let mut labeled = labeled.clone();
            let mut unlabeled: Vec<usize> = (60..150).collect();
            let before = unlabeled.len();
            s.post_label(
                &c,
                &new,
                &mut labeled,
                &mut unlabeled,
                &mut rng,
                &Registry::disabled(),
            );
            assert_eq!(s.accepted().len(), 1);
            assert!(unlabeled.len() < before, "covered pairs must be pruned");
        }
    }

    #[test]
    fn low_precision_candidate_rejected() {
        let c = two_cluster_corpus();
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = EnsembleSvmStrategy::new(SvmTrainer::default(), 0.99);
        let labeled: Vec<(usize, bool)> = (0..30).map(|i| (i, c.truth(i))).collect();
        s.fit(&c, &labeled, &mut rng).unwrap();
        // A batch labeled all-negative forces precision 0 on claimed pairs.
        let claimed: Vec<(usize, bool)> = (30..90)
            .filter(|&i| s.candidate.as_ref().unwrap().predict(c.x(i)))
            .map(|i| (i, false))
            .collect();
        let mut l = labeled.clone();
        let mut u: Vec<usize> = (90..150).collect();
        s.post_label(
            &c,
            &claimed,
            &mut l,
            &mut u,
            &mut rng,
            &Registry::disabled(),
        );
        assert!(s.accepted().is_empty());
    }

    #[test]
    fn generic_ensemble_over_nn() {
        use crate::learner::NnTrainer;
        let c = two_cluster_corpus();
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = ActiveEnsembleStrategy::new(NnTrainer::default(), 0.85);
        assert_eq!(s.name(), "Non-Convex Non-Linear-Margin(Ensemble)");
        let labeled: Vec<(usize, bool)> = (0..30).map(|i| (i, c.truth(i))).collect();
        s.fit(&c, &labeled, &mut rng).unwrap();
        let sel = s.select(
            &c,
            &labeled,
            &(30..60).collect::<Vec<_>>(),
            5,
            &mut rng,
            &Registry::disabled(),
        );
        assert_eq!(sel.chosen.len(), 5);
        assert_eq!(s.stats().accepted_models, Some(0));
        // Feeding it a perfectly-labeled claimed batch accepts the model
        // and prunes covered pairs.
        let claimed: Vec<(usize, bool)> = (30..90)
            .filter(|&i| s.candidate.as_ref().unwrap().predict(c.x(i)))
            .map(|i| (i, true))
            .collect();
        if !claimed.is_empty() {
            let mut l = labeled.clone();
            let mut u: Vec<usize> = (90..150).collect();
            s.post_label(
                &c,
                &claimed,
                &mut l,
                &mut u,
                &mut rng,
                &Registry::disabled(),
            );
            assert_eq!(s.accepted_len(), 1);
        }
    }

    #[test]
    fn union_prediction_covers_all_accepted() {
        let c = two_cluster_corpus();
        let mut s = EnsembleSvmStrategy::new(SvmTrainer::default(), 0.85);
        // Hand-craft two one-dimensional experts.
        s.accepted.push(LinearSvm::from_parts(vec![4.0, 0.0], -2.0));
        s.accepted.push(LinearSvm::from_parts(vec![0.0, 4.0], -2.0));
        assert!(s.predict(&c, 0)); // dim0-high positive
        assert!(s.predict(&c, 1)); // dim1-high positive
        assert!(!s.predict(&c, 2)); // negative
        assert_eq!(s.stats().accepted_models, Some(2));
    }
}
