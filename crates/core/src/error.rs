//! Structured errors for the fault-tolerant session layer.
//!
//! Every user-reachable failure in the active-learning driver — bad
//! configuration, an Oracle that stops answering, a corrupt checkpoint —
//! surfaces as an [`AlemError`] instead of a panic, so callers (the CLI,
//! the benchmark harness, a long-running service) can report a one-line
//! diagnostic, retry, or resume from a checkpoint.

use std::fmt;

/// All failures the active-learning session layer can report.
#[derive(Debug, Clone, PartialEq)]
pub enum AlemError {
    /// Loop or session parameters are unusable (zero batch size, noise
    /// outside `[0, 1]`, even vote committees, mismatched strategy on
    /// resume, …).
    InvalidConfig(String),

    /// The labeled data cannot train any model and degradation was unable
    /// to repair it (e.g. an empty labeled set after seeding).
    DegenerateLabels(String),

    /// The Oracle failed to answer a query even after the retry policy was
    /// exhausted.
    OracleUnavailable {
        /// Example index that was being labeled.
        example: usize,
        /// Attempts made (including the first).
        attempts: u32,
        /// Human-readable cause ("transient failure", "timed out after …").
        reason: String,
    },

    /// The label budget is exhausted before the session could do any work.
    BudgetExhausted {
        /// Labels already consumed.
        used: usize,
        /// Configured budget.
        budget: usize,
    },

    /// A checkpoint file exists but cannot be trusted: unparsable, wrong
    /// version, or inconsistent with the corpus it is being resumed on.
    CheckpointCorrupt(String),

    /// The loop made no labeling progress for too many consecutive
    /// iterations (every selected example abstained).
    Stalled {
        /// Consecutive zero-progress iterations observed.
        iterations: usize,
    },

    /// Filesystem failure while reading or writing checkpoints/outputs.
    Io(String),
}

impl fmt::Display for AlemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlemError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AlemError::DegenerateLabels(msg) => write!(f, "degenerate labels: {msg}"),
            AlemError::OracleUnavailable {
                example,
                attempts,
                reason,
            } => write!(
                f,
                "oracle unavailable labeling example {example} after {attempts} attempt(s): {reason}"
            ),
            AlemError::BudgetExhausted { used, budget } => {
                write!(f, "label budget exhausted: {used} used of {budget}")
            }
            AlemError::CheckpointCorrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
            AlemError::Stalled { iterations } => write!(
                f,
                "session stalled: no labeling progress for {iterations} consecutive iterations"
            ),
            AlemError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for AlemError {}

impl From<std::io::Error> for AlemError {
    fn from(e: std::io::Error) -> Self {
        AlemError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AlemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_one_line() {
        let errors = [
            AlemError::InvalidConfig("batch_size = 0".into()),
            AlemError::DegenerateLabels("empty seed".into()),
            AlemError::OracleUnavailable {
                example: 7,
                attempts: 5,
                reason: "transient failure".into(),
            },
            AlemError::BudgetExhausted {
                used: 40,
                budget: 40,
            },
            AlemError::CheckpointCorrupt("bad version".into()),
            AlemError::Stalled { iterations: 3 },
            AlemError::Io("disk full".into()),
        ];
        for e in errors {
            let line = e.to_string();
            assert!(!line.is_empty());
            assert!(!line.contains('\n'), "multi-line diagnostic: {line}");
        }
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: AlemError = io.into();
        assert!(matches!(e, AlemError::Io(_)));
    }
}
