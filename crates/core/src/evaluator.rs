//! Per-iteration evaluation and run-level result aggregation.
//!
//! The evaluator (paper §3) scores the refined model after every active
//! learning iteration on quality (precision/recall/F1 over the evaluation
//! pair set), latency (training time plus the committee-creation /
//! example-scoring split), #labels, and — where the strategy supports it —
//! interpretability (#DNF atoms, ensemble depth).

use mlcore::metrics::Confusion;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Everything measured in one active-learning iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (0 = after training on the seed labels).
    pub iteration: usize,
    /// Cumulative labels consumed when the model was trained (#labels).
    pub labels_used: usize,
    /// F1-score on the evaluation set — progressive F1 when evaluating on
    /// all post-blocking pairs.
    pub f1: f64,
    /// Precision on the evaluation set.
    pub precision: f64,
    /// Recall on the evaluation set.
    pub recall: f64,
    /// Model training time in seconds.
    pub train_secs: f64,
    /// Committee-creation part of example selection (QBC only).
    pub committee_secs: f64,
    /// Example-scoring part of example selection.
    pub scoring_secs: f64,
    /// #DNF atoms for interpretable models (rules, trees).
    pub atoms: Option<usize>,
    /// Maximum tree depth for tree ensembles.
    pub depth: Option<usize>,
    /// Accepted component models in an active ensemble.
    pub accepted_models: Option<usize>,
    /// Examples pruned by blocking dimensions this iteration.
    pub pruned: Option<usize>,
}

impl IterationStats {
    /// User wait time: training plus total selection latency (paper §3).
    pub fn user_wait_secs(&self) -> f64 {
        self.train_secs + self.committee_secs + self.scoring_secs
    }

    /// Total example-selection latency.
    pub fn selection_secs(&self) -> f64 {
        self.committee_secs + self.scoring_secs
    }
}

/// Result of one full active-learning run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Strategy description, e.g. `"Trees(20)"` or `"Linear-Margin(1Dim)"`.
    pub strategy: String,
    /// Dataset name.
    pub dataset: String,
    /// Per-iteration measurements, in order.
    pub iterations: Vec<IterationStats>,
}

impl RunResult {
    /// Best F1 achieved across iterations (0 for an empty run).
    pub fn best_f1(&self) -> f64 {
        self.iterations.iter().map(|s| s.f1).fold(0.0, f64::max)
    }

    /// F1 of the final iteration.
    pub fn final_f1(&self) -> f64 {
        self.iterations.last().map_or(0.0, |s| s.f1)
    }

    /// The paper's #labels metric: the minimum cumulative label count at
    /// which the run first reaches within `epsilon` of its best F1 (the
    /// convergent quality).
    pub fn labels_to_convergence(&self, epsilon: f64) -> usize {
        let best = self.best_f1();
        self.iterations
            .iter()
            .find(|s| s.f1 >= best - epsilon)
            .map_or(0, |s| s.labels_used)
    }

    /// Total user wait time across all iterations.
    pub fn total_user_wait_secs(&self) -> f64 {
        self.iterations
            .iter()
            .map(IterationStats::user_wait_secs)
            .sum()
    }

    /// Total labels consumed by the end of the run.
    pub fn total_labels(&self) -> usize {
        self.iterations.last().map_or(0, |s| s.labels_used)
    }

    /// Canonical rendering of every deterministic field — everything
    /// except wall-clock timings, with floats rendered by exact bit
    /// pattern. Two runs with equal fingerprints made identical labeling
    /// and modeling decisions; the session layer's checkpoint/resume tests
    /// assert on this.
    pub fn deterministic_fingerprint(&self) -> String {
        let rows: Vec<String> = self
            .iterations
            .iter()
            .map(|s| {
                format!(
                    "{}|{}|{:016x}|{:016x}|{:016x}|{:?}|{:?}|{:?}|{:?}",
                    s.iteration,
                    s.labels_used,
                    s.f1.to_bits(),
                    s.precision.to_bits(),
                    s.recall.to_bits(),
                    s.atoms,
                    s.depth,
                    s.accepted_models,
                    s.pruned
                )
            })
            .collect();
        format!("{}@{}::{}", self.strategy, self.dataset, rows.join(";"))
    }
}

/// Compute a [`Confusion`] for predictions over `eval_idx` against the
/// ground truth.
pub fn confusion_over(
    predict: impl Fn(usize) -> bool,
    truth: impl Fn(usize) -> bool,
    eval_idx: &[usize],
) -> Confusion {
    let mut c = Confusion::default();
    for &i in eval_idx {
        c.record(predict(i), truth(i));
    }
    c
}

/// Convenience for building an [`IterationStats`] from a confusion and
/// timings; optional fields start as `None`.
pub fn iteration_stats(
    iteration: usize,
    labels_used: usize,
    confusion: &Confusion,
    train: Duration,
    committee: Duration,
    scoring: Duration,
) -> IterationStats {
    IterationStats {
        iteration,
        labels_used,
        f1: confusion.f1(),
        precision: confusion.precision(),
        recall: confusion.recall(),
        train_secs: train.as_secs_f64(),
        committee_secs: committee.as_secs_f64(),
        scoring_secs: scoring.as_secs_f64(),
        atoms: None,
        depth: None,
        accepted_models: None,
        pruned: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with_f1s(f1s: &[f64]) -> RunResult {
        RunResult {
            strategy: "test".into(),
            dataset: "toy".into(),
            iterations: f1s
                .iter()
                .enumerate()
                .map(|(i, &f1)| IterationStats {
                    iteration: i,
                    labels_used: 30 + i * 10,
                    f1,
                    precision: f1,
                    recall: f1,
                    train_secs: 0.1,
                    committee_secs: 0.2,
                    scoring_secs: 0.3,
                    atoms: None,
                    depth: None,
                    accepted_models: None,
                    pruned: None,
                })
                .collect(),
        }
    }

    #[test]
    fn best_and_final() {
        let r = run_with_f1s(&[0.2, 0.8, 0.6]);
        assert_eq!(r.best_f1(), 0.8);
        assert_eq!(r.final_f1(), 0.6);
    }

    #[test]
    fn convergence_labels() {
        let r = run_with_f1s(&[0.2, 0.5, 0.79, 0.8, 0.8]);
        // Within 0.005 of best (0.8) first at iteration 3 → 60 labels.
        assert_eq!(r.labels_to_convergence(0.005), 60);
        // With a loose epsilon, iteration 2 already qualifies.
        assert_eq!(r.labels_to_convergence(0.02), 50);
    }

    #[test]
    fn wait_time_sums() {
        let r = run_with_f1s(&[0.5, 0.5]);
        assert!((r.total_user_wait_secs() - 1.2).abs() < 1e-12);
        assert_eq!(r.total_labels(), 40);
        assert!((r.iterations[0].user_wait_secs() - 0.6).abs() < 1e-12);
        assert!((r.iterations[0].selection_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confusion_over_counts() {
        let preds = [true, false, true, true];
        let truths = [true, false, false, true];
        let c = confusion_over(|i| preds[i], |i| truths[i], &[0, 1, 2, 3]);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 1);
        assert_eq!(c.fn_, 0);
    }

    #[test]
    fn empty_run_defaults() {
        let r = run_with_f1s(&[]);
        assert_eq!(r.best_f1(), 0.0);
        assert_eq!(r.labels_to_convergence(0.01), 0);
        assert_eq!(r.total_labels(), 0);
    }

    #[test]
    fn fingerprint_ignores_timings_but_not_quality() {
        let a = run_with_f1s(&[0.4, 0.6]);
        let mut b = a.clone();
        b.iterations[0].train_secs = 99.0;
        b.iterations[1].committee_secs = 0.0;
        assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        b.iterations[1].f1 += 1e-15;
        assert_ne!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
    }

    #[test]
    fn iteration_stats_roundtrip_json() {
        let r = run_with_f1s(&[0.25, 0.75]);
        let js = serde_json::to_string(&r.iterations).unwrap();
        let back: Vec<IterationStats> = serde_json::from_str(&js).unwrap();
        assert_eq!(back, r.iterations);
    }

    #[test]
    fn serializes_to_json() {
        let r = run_with_f1s(&[0.4]);
        let js = serde_json::to_string(&r).unwrap();
        assert!(js.contains("\"f1\":0.4"));
    }
}
