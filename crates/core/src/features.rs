//! Feature extraction: similarity-based feature vectors for record pairs.
//!
//! Continuous features apply all 21 similarity functions to every pair of
//! aligned attributes (paper §3) — e.g. Abt-Buy's 3 matched columns give 63
//! dimensions (the paper reports 62; the count is 21 × #attrs up to the
//! exact Simmetrics subset). Rule learners instead get Boolean predicate
//! features: the 3 supported functions (equality, Jaro-Winkler, Jaccard)
//! evaluated against thresholds 0.1..1.0.
//!
//! The extractor pre-tokenizes every attribute value once
//! ([`textsim::Prepared`]) so evaluating 21 measures per pair doesn't re-do
//! tokenization.

use crate::schema::{EmDataset, Pair, Table};
use std::fmt;
use textsim::{Prepared, SimilarityFunction};

/// The discrete thresholds rule predicates are evaluated on (paper §3:
/// "a discrete set of thresholds in (0,1] ... with τ from 0.1 to 1.0").
pub const RULE_THRESHOLDS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Description of one continuous feature dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureDesc {
    /// The similarity function applied.
    pub sim: SimilarityFunction,
    /// The aligned attribute name.
    pub attr: String,
}

impl fmt::Display for FeatureDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(left.{attr}, right.{attr})",
            self.sim.name(),
            attr = self.attr
        )
    }
}

/// Description of one Boolean rule predicate (an *atom* in the paper's
/// interpretability metric).
#[derive(Debug, Clone, PartialEq)]
pub struct BoolFeatureDesc {
    /// The similarity function applied.
    pub sim: SimilarityFunction,
    /// The aligned attribute name.
    pub attr: String,
    /// Predicate threshold.
    pub threshold: f64,
}

impl fmt::Display for BoolFeatureDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sim == SimilarityFunction::Identity {
            write!(f, "left.{attr} = right.{attr}", attr = self.attr)
        } else {
            write!(
                f,
                "{}(left.{attr}, right.{attr}) >= {:.1}",
                self.sim.name(),
                self.threshold,
                attr = self.attr
            )
        }
    }
}

/// Pre-tokenized feature extractor over a dataset's two tables.
pub struct FeatureExtractor {
    attr_names: Vec<String>,
    left: Vec<Vec<Prepared>>,  // [record][attr]
    right: Vec<Vec<Prepared>>, // [record][attr]
}

impl fmt::Debug for FeatureExtractor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeatureExtractor")
            .field("attrs", &self.attr_names)
            .field("left_records", &self.left.len())
            .field("right_records", &self.right.len())
            .finish()
    }
}

fn prepare_table(table: &Table) -> Vec<Vec<Prepared>> {
    (0..table.len())
        .map(|i| {
            (0..table.schema().len())
                .map(|a| Prepared::new(table.record(i).value(a).unwrap_or("")))
                .collect()
        })
        .collect()
}

impl FeatureExtractor {
    /// Tokenize every attribute value of both tables.
    pub fn new(ds: &EmDataset) -> Self {
        assert_eq!(
            ds.left.schema(),
            ds.right.schema(),
            "tables must share an aligned schema"
        );
        FeatureExtractor {
            attr_names: ds
                .left
                .schema()
                .attributes()
                .iter()
                .map(|a| a.name.clone())
                .collect(),
            left: prepare_table(&ds.left),
            right: prepare_table(&ds.right),
        }
    }

    /// Number of continuous feature dimensions (21 × #attrs).
    pub fn dim(&self) -> usize {
        self.attr_names.len() * SimilarityFunction::ALL.len()
    }

    /// Descriptions of the continuous dimensions, attribute-major: the
    /// feature at index `a * 21 + s` is similarity `s` on attribute `a`.
    pub fn descriptions(&self) -> Vec<FeatureDesc> {
        let mut out = Vec::with_capacity(self.dim());
        for attr in &self.attr_names {
            for sim in SimilarityFunction::ALL {
                out.push(FeatureDesc {
                    sim,
                    attr: attr.clone(),
                });
            }
        }
        out
    }

    /// Continuous feature vector for one candidate pair.
    pub fn extract_pair(&self, pair: Pair) -> Vec<f64> {
        let l = &self.left[pair.0 as usize];
        let r = &self.right[pair.1 as usize];
        let mut out = Vec::with_capacity(self.dim());
        for a in 0..self.attr_names.len() {
            for sim in SimilarityFunction::ALL {
                out.push(sim.compute_prepared(&l[a], &r[a]));
            }
        }
        out
    }

    /// Continuous feature matrix for a pair list.
    // alem-lint: allow(flat-feature-store) -- extraction seam; rows are flattened into FeatureStore by the corpus builders
    pub fn extract_all(&self, pairs: &[Pair]) -> Vec<Vec<f64>> {
        pairs.iter().map(|&p| self.extract_pair(p)).collect()
    }

    /// [`FeatureExtractor::extract_all`] fanned out over worker threads.
    /// Rows come back in pair order regardless of thread count, so the
    /// resulting corpus (and every fingerprint downstream of it) is
    /// identical to the sequential build.
    // alem-lint: allow(flat-feature-store) -- extraction seam; rows are flattened into FeatureStore by the corpus builders
    pub fn extract_all_with(&self, pairs: &[Pair], par: &alem_par::Parallelism) -> Vec<Vec<f64>> {
        par.map(pairs, |&p| self.extract_pair(p))
    }

    /// Compute a *single* continuous feature dimension on demand.
    ///
    /// This is what makes the §5.1 blocking optimization pay off in its
    /// original setting: checking the one blocking dimension costs one
    /// similarity computation instead of building the full 21×#attrs
    /// vector (see the `lazy_blocking` bench).
    pub fn compute_dim(&self, pair: Pair, dim: usize) -> f64 {
        let n_sims = SimilarityFunction::ALL.len();
        let attr = dim / n_sims;
        let sim = SimilarityFunction::ALL[dim % n_sims];
        let l = &self.left[pair.0 as usize][attr];
        let r = &self.right[pair.1 as usize][attr];
        sim.compute_prepared(l, r)
    }

    /// Partial extraction: compute only the selected dimensions, in the
    /// given order. Each entry matches [`FeatureExtractor::compute_dim`]
    /// (and therefore the full row) bit-for-bit.
    pub fn extract_dims(&self, pair: Pair, dims: &[usize]) -> Vec<f64> {
        dims.iter().map(|&d| self.compute_dim(pair, d)).collect()
    }

    /// [`FeatureExtractor::compute_dim`] batched: compute `dims` for one
    /// pair, emitting `(dim, value)` through `sink` in `dims` order. The
    /// per-attribute `Prepared` lookups are hoisted out of the similarity
    /// loop, so runs of dims sharing an attribute (the common case —
    /// dims are attr-major) pay for the record indexing once, matching
    /// [`FeatureExtractor::extract_pair`]'s per-similarity cost instead
    /// of `compute_dim`'s. Values are bit-identical to `compute_dim`.
    ///
    /// This is the lazy feature store's batch fill path: sorted dim runs
    /// from phase-1 partial reads and row materialization land here.
    pub fn compute_dims_with(&self, pair: Pair, dims: &[usize], mut sink: impl FnMut(usize, f64)) {
        let n_sims = SimilarityFunction::ALL.len();
        let l = &self.left[pair.0 as usize];
        let r = &self.right[pair.1 as usize];
        let mut k = 0;
        while k < dims.len() {
            let attr = dims[k] / n_sims;
            let (la, ra) = (&l[attr], &r[attr]);
            while k < dims.len() && dims[k] / n_sims == attr {
                let d = dims[k];
                sink(
                    d,
                    SimilarityFunction::ALL[d % n_sims].compute_prepared(la, ra),
                );
                k += 1;
            }
        }
    }

    /// Phase 1 of two-phase lazy extraction: compute the `k`
    /// highest-`|weight|` dimensions only, returning `(dim, value)` pairs
    /// in descending `|weight|` order (ties broken by dimension index,
    /// matching `LinearSvm::top_weight_dims`). The caller decides from
    /// these partial sums whether the pair survives into phase 2 — full
    /// materialization via [`FeatureExtractor::extract_pair`].
    pub fn extract_topk(&self, pair: Pair, weights: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut dims: Vec<usize> = (0..weights.len().min(self.dim())).collect();
        dims.sort_by(|&a, &b| {
            weights[b]
                .abs()
                .partial_cmp(&weights[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        dims.truncate(k);
        dims.into_iter()
            .map(|d| (d, self.compute_dim(pair, d)))
            .collect()
    }

    /// Number of Boolean rule-predicate dimensions
    /// (3 functions × 10 thresholds × #attrs).
    pub fn bool_dim(&self) -> usize {
        self.attr_names.len() * SimilarityFunction::RULE_SUBSET.len() * RULE_THRESHOLDS.len()
    }

    /// Descriptions of the Boolean predicate dimensions, attribute-major
    /// then function-major then threshold.
    pub fn bool_descriptions(&self) -> Vec<BoolFeatureDesc> {
        let mut out = Vec::with_capacity(self.bool_dim());
        for attr in &self.attr_names {
            for sim in SimilarityFunction::RULE_SUBSET {
                for &threshold in &RULE_THRESHOLDS {
                    out.push(BoolFeatureDesc {
                        sim,
                        attr: attr.clone(),
                        threshold,
                    });
                }
            }
        }
        out
    }

    /// Derive the Boolean predicate vector from a continuous feature row
    /// (the 3 rule functions are among the 21 continuous ones, so no
    /// similarity needs recomputing). Atoms hold as `1.0`, else `0.0`.
    pub fn booleanize(&self, continuous: &[f64]) -> Vec<f64> {
        assert_eq!(continuous.len(), self.dim(), "row dimensionality mismatch");
        let n_sims = SimilarityFunction::ALL.len();
        let mut out = Vec::with_capacity(self.bool_dim());
        for a in 0..self.attr_names.len() {
            for sim in SimilarityFunction::RULE_SUBSET {
                let sim_idx = SimilarityFunction::ALL
                    .iter()
                    .position(|&s| s == sim)
                    // alem-lint: allow(no-panic) -- RULE_SUBSET is a compile-time subset of ALL, covered by unit tests
                    .expect("rule subset is part of ALL");
                let v = continuous[a * n_sims + sim_idx];
                for &threshold in &RULE_THRESHOLDS {
                    out.push(f64::from(u8::from(v >= threshold - 1e-12)));
                }
            }
        }
        out
    }

    /// Boolean predicate matrix for a whole continuous feature matrix.
    // alem-lint: allow(flat-feature-store) -- predicate rows feed Corpus::bool_features' memo cell, not the hot scoring path
    pub fn booleanize_all(&self, continuous: &[Vec<f64>]) -> Vec<Vec<f64>> {
        continuous.iter().map(|row| self.booleanize(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrKind, EmDataset, Record, Schema};

    fn toy() -> EmDataset {
        let schema = Schema::new(vec![("name", AttrKind::Text), ("price", AttrKind::Numeric)]);
        let l = Table::new(
            "l",
            schema.clone(),
            vec![
                Record::new(vec![Some("apple ipod nano".into()), Some("149".into())]),
                Record::new(vec![Some("sony walkman".into()), None]),
            ],
        );
        let r = Table::new(
            "r",
            schema,
            vec![
                Record::new(vec![Some("apple ipod nano 8gb".into()), Some("149".into())]),
                Record::new(vec![Some("dell monitor".into()), Some("300".into())]),
            ],
        );
        EmDataset {
            left: l,
            right: r,
            matches: [(0u32, 0u32)].into_iter().collect(),
            name: "toy".into(),
        }
    }

    #[test]
    fn dims_are_21_per_attr() {
        let fx = FeatureExtractor::new(&toy());
        assert_eq!(fx.dim(), 42);
        assert_eq!(fx.descriptions().len(), 42);
        assert_eq!(fx.bool_dim(), 60);
        assert_eq!(fx.bool_descriptions().len(), 60);
    }

    #[test]
    fn matching_pair_scores_higher() {
        let fx = FeatureExtractor::new(&toy());
        let m: f64 = fx.extract_pair((0, 0)).iter().sum();
        let n: f64 = fx.extract_pair((0, 1)).iter().sum();
        assert!(m > n, "match {m} vs non-match {n}");
    }

    #[test]
    fn missing_attr_scores_zero() {
        let fx = FeatureExtractor::new(&toy());
        let row = fx.extract_pair((1, 0)); // left price is None
                                           // Price dims are the second attribute block.
        for v in &row[21..42] {
            assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn compute_dim_matches_full_extraction() {
        let fx = FeatureExtractor::new(&toy());
        let full = fx.extract_pair((0, 0));
        for (d, &v) in full.iter().enumerate() {
            assert_eq!(fx.compute_dim((0, 0), d), v, "dim {d}");
        }
    }

    #[test]
    fn extract_dims_matches_full_extraction() {
        let fx = FeatureExtractor::new(&toy());
        let full = fx.extract_pair((0, 0));
        let dims = [7, 0, 33, 21];
        let partial = fx.extract_dims((0, 0), &dims);
        for (j, &d) in dims.iter().enumerate() {
            assert_eq!(partial[j].to_bits(), full[d].to_bits(), "dim {d}");
        }
    }

    #[test]
    fn extract_topk_orders_by_weight_magnitude() {
        let fx = FeatureExtractor::new(&toy());
        let mut weights = vec![0.0; fx.dim()];
        weights[5] = -3.0;
        weights[30] = 2.0;
        weights[11] = 0.5;
        let full = fx.extract_pair((0, 0));
        let top = fx.extract_topk((0, 0), &weights, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 5);
        assert_eq!(top[1].0, 30);
        for &(d, v) in &top {
            assert_eq!(v.to_bits(), full[d].to_bits());
        }
    }

    #[test]
    fn booleanize_thresholds() {
        let fx = FeatureExtractor::new(&toy());
        let row = fx.extract_pair((0, 0));
        let b = fx.booleanize(&row);
        assert_eq!(b.len(), 60);
        assert!(b.iter().all(|&v| v == 0.0 || v == 1.0));
        // Price is exactly equal → Identity atoms hold at every threshold.
        let descs = fx.bool_descriptions();
        for (v, d) in b.iter().zip(&descs) {
            if d.attr == "price" && d.sim == SimilarityFunction::Identity {
                assert_eq!(*v, 1.0, "{d}");
            }
        }
    }

    #[test]
    fn bool_monotone_in_threshold() {
        // If an atom holds at τ it must hold at every smaller τ.
        let fx = FeatureExtractor::new(&toy());
        let b = fx.booleanize(&fx.extract_pair((0, 0)));
        let descs = fx.bool_descriptions();
        for w in 0..b.len() - 1 {
            let (d1, d2) = (&descs[w], &descs[w + 1]);
            if d1.attr == d2.attr && d1.sim == d2.sim {
                assert!(b[w] >= b[w + 1], "{d1} vs {d2}");
            }
        }
    }

    #[test]
    fn display_formats() {
        let fx = FeatureExtractor::new(&toy());
        let d = &fx.descriptions()[0];
        assert_eq!(d.to_string(), "LevenshteinSim(left.name, right.name)");
        let bd = fx
            .bool_descriptions()
            .into_iter()
            .find(|d| d.sim == SimilarityFunction::Jaccard && d.attr == "name")
            .unwrap();
        assert_eq!(bd.to_string(), "JaccardSim(left.name, right.name) >= 0.1");
        let eq = fx
            .bool_descriptions()
            .into_iter()
            .find(|d| d.sim == SimilarityFunction::Identity && d.attr == "price")
            .unwrap();
        assert_eq!(eq.to_string(), "left.price = right.price");
    }
}
