//! Flat, cache-friendly feature storage with per-pair memoization.
//!
//! [`FeatureStore`] is the one place in the workspace allowed to hold a
//! feature matrix. It has two backings behind one accessor surface:
//!
//! * **Eager** — a single contiguous `Vec<f64>` in row-major order with a
//!   fixed `dim` stride. One allocation for the whole corpus instead of
//!   one per pair, and row reads are a pure slice into hot memory.
//! * **Lazy** — rows materialize on first access from a shared
//!   [`FeatureExtractor`] and are memoized per pair for the lifetime of
//!   the store. Features are immutable per pair, so nothing is ever
//!   extracted twice; the memo survives across AL iterations.
//!
//! Both backings sanitize non-finite similarity outputs to `0.0` with the
//! exact rule the eager pipeline has always used, so a lazily materialized
//! row is bit-identical to its eager counterpart. Cache traffic is counted
//! in relaxed atomics (`cache_hits`/`cache_misses`) which the session
//! layer surfaces as `feat.cache_hits`/`feat.cache_misses` telemetry.
//!
//! [`DimsView`] is the sparse companion: a selected-dims projection that
//! reads single dimensions (cached row if present, single-similarity
//! computation otherwise) without forcing full-row materialization —
//! phase 1 of the two-phase lazy selector runs entirely on it.

use crate::features::FeatureExtractor;
use crate::schema::Pair;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Replace NaN/±∞ with 0.0 in place, returning how many values changed.
/// Broken similarity functions (divide-by-zero on empty strings, overflow
/// on pathological inputs) must not poison a whole training run.
fn sanitize_row(row: &mut [f64]) -> u64 {
    let mut fixed = 0;
    for v in row.iter_mut() {
        if !v.is_finite() {
            *v = 0.0;
            fixed += 1;
        }
    }
    fixed
}

enum Backing {
    /// Row-major flat matrix: row `i` lives at `flat[i*dim .. (i+1)*dim]`.
    Eager { flat: Vec<f64> },
    /// Memoized on-demand extraction; `rows[i]` fills on first access.
    Lazy {
        fx: Arc<FeatureExtractor>,
        pairs: Vec<Pair>,
        rows: Vec<OnceLock<Box<[f64]>>>,
        /// Per-(row, dim) memo for partial reads on rows that have never
        /// been fully materialized. A cell holds the sanitized feature's
        /// bit pattern, or [`PARTIAL_EMPTY`] while unset; the per-row
        /// array allocates on that row's first partial read. Races are
        /// benign: every writer stores the same deterministic bits.
        partials: Vec<OnceLock<Box<[AtomicU64]>>>,
    },
}

/// Sentinel bit pattern marking an unfilled partial cell. Stored values
/// are always sanitized to finite floats, so a NaN pattern cannot collide.
const PARTIAL_EMPTY: u64 = 0x7ff8_0000_0000_0000; // f64::NAN bits

/// Flat SoA feature matrix with a per-pair memoization cache.
///
/// See the [module docs](self) for the eager/lazy contract.
pub struct FeatureStore {
    backing: Backing,
    len: usize,
    dim: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    sanitized: AtomicU64,
}

impl FeatureStore {
    /// Build an eager store from per-pair rows, flattening them into one
    /// contiguous allocation and sanitizing non-finite values.
    ///
    /// Every row must share the first row's dimensionality.
    // alem-lint: allow(flat-feature-store) -- the one ingestion seam where nested rows become the flat store
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let len = rows.len();
        let dim = rows.first().map_or(0, Vec::len);
        let mut flat = Vec::with_capacity(len * dim);
        for row in &rows {
            assert_eq!(row.len(), dim, "feature row dimensionality mismatch");
            flat.extend_from_slice(row);
        }
        let sanitized = sanitize_row(&mut flat);
        FeatureStore {
            backing: Backing::Eager { flat },
            len,
            dim,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sanitized: AtomicU64::new(sanitized),
        }
    }

    /// Build a lazy store: no row is extracted until first accessed, and
    /// each materialized row is memoized for the store's lifetime.
    pub fn lazy(fx: Arc<FeatureExtractor>, pairs: Vec<Pair>) -> Self {
        let len = pairs.len();
        let dim = fx.dim();
        let rows = (0..len).map(|_| OnceLock::new()).collect();
        let partials = (0..len).map(|_| OnceLock::new()).collect();
        FeatureStore {
            backing: Backing::Lazy {
                fx,
                pairs,
                rows,
                partials,
            },
            len,
            dim,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sanitized: AtomicU64::new(0),
        }
    }

    /// Number of rows (pairs).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row stride: the continuous feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True for the memoized on-demand backing.
    pub fn is_lazy(&self) -> bool {
        matches!(self.backing, Backing::Lazy { .. })
    }

    /// Full feature row of pair `i`, materializing (and memoizing) it on
    /// the lazy backing. Exactly one cache miss is counted per row per
    /// store lifetime; every later access is a hit.
    ///
    /// Materialization reuses every partial cell already memoized by
    /// [`FeatureStore::dim_value`] and computes only the missing dims, so
    /// phase-1 work is never paid twice when a pair later survives into
    /// phase 2. Cells hold sanitized values, so the assembled row is
    /// bit-identical to a from-scratch extraction.
    pub fn row(&self, i: usize) -> &[f64] {
        match &self.backing {
            Backing::Eager { flat } => &flat[i * self.dim..(i + 1) * self.dim],
            Backing::Lazy {
                fx,
                pairs,
                rows,
                partials,
            } => {
                let mut fresh = false;
                let row = rows[i].get_or_init(|| {
                    fresh = true;
                    match partials[i].get() {
                        Some(cells) => {
                            let mut v = vec![0.0f64; self.dim].into_boxed_slice();
                            let mut missing: Vec<usize> = Vec::new();
                            for (d, out) in v.iter_mut().enumerate() {
                                // alem-lint: allow(determinism-taint) -- write-once cell; racing writers store the identical deterministic value
                                let bits = cells[d].load(Ordering::Relaxed);
                                if bits != PARTIAL_EMPTY {
                                    *out = f64::from_bits(bits);
                                } else {
                                    missing.push(d);
                                }
                            }
                            fx.compute_dims_with(pairs[i], &missing, |d, raw| {
                                v[d] = if raw.is_finite() {
                                    raw
                                } else {
                                    self.sanitized.fetch_add(1, Ordering::Relaxed);
                                    0.0
                                };
                            });
                            v
                        }
                        None => {
                            let mut v = fx.extract_pair(pairs[i]).into_boxed_slice();
                            let fixed = sanitize_row(&mut v);
                            if fixed > 0 {
                                self.sanitized.fetch_add(fixed, Ordering::Relaxed);
                            }
                            v
                        }
                    }
                });
                if fresh {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                row
            }
        }
    }

    /// One dimension of row `i` *without* forcing materialization: reads
    /// the memoized row when present, otherwise computes the single
    /// similarity (sanitized with the same non-finite → 0.0 rule) and
    /// memoizes it in the row's partial-cell plane — a dimension is
    /// computed at most once per (row, dim) for the store's lifetime,
    /// so recurring phase-1 scans cost cache lookups after the first
    /// iteration. Does not touch the hit/miss counters — partial reads
    /// are phase-1 traffic, accounted by the selector's
    /// `feat.phase1_only`.
    pub fn dim_value(&self, i: usize, d: usize) -> f64 {
        match &self.backing {
            Backing::Eager { flat } => flat[i * self.dim + d],
            Backing::Lazy {
                fx,
                pairs,
                rows,
                partials,
            } => match rows[i].get() {
                Some(row) => row[d],
                None => {
                    let cells = partials[i].get_or_init(|| {
                        (0..self.dim)
                            .map(|_| AtomicU64::new(PARTIAL_EMPTY))
                            .collect()
                    });
                    // alem-lint: allow(determinism-taint) -- write-once cell; racing writers store the identical deterministic value
                    let bits = cells[d].load(Ordering::Relaxed);
                    if bits != PARTIAL_EMPTY {
                        return f64::from_bits(bits);
                    }
                    let raw = fx.compute_dim(pairs[i], d);
                    let v = if raw.is_finite() { raw } else { 0.0 };
                    cells[d].store(v.to_bits(), Ordering::Relaxed);
                    v
                }
            },
        }
    }

    /// The memoized row for `i` if it has been materialized (always
    /// `Some` on the eager backing). Never counts cache traffic.
    pub fn peek_row(&self, i: usize) -> Option<&[f64]> {
        match &self.backing {
            Backing::Eager { flat } => Some(&flat[i * self.dim..(i + 1) * self.dim]),
            Backing::Lazy { rows, .. } => rows[i].get().map(|r| &**r),
        }
    }

    /// Partial cells memoized so far on never-materialized rows (eager
    /// stores: always 0). Each counted cell is one single-similarity
    /// computation that recurring phase-1 scans no longer repeat.
    pub fn partial_cells_filled(&self) -> usize {
        match &self.backing {
            Backing::Eager { .. } => 0,
            Backing::Lazy { partials, .. } => partials
                .iter()
                .filter_map(|p| p.get())
                .map(|cells| {
                    cells
                        .iter()
                        // alem-lint: allow(determinism-taint) -- telemetry snapshot; never enters state, seeds, or fingerprints
                        .filter(|c| c.load(Ordering::Relaxed) != PARTIAL_EMPTY)
                        .count()
                })
                .sum(),
        }
    }

    /// How many rows are currently materialized (eager: all of them).
    pub fn materialized_rows(&self) -> usize {
        match &self.backing {
            Backing::Eager { .. } => self.len,
            Backing::Lazy { rows, .. } => rows.iter().filter(|r| r.get().is_some()).count(),
        }
    }

    /// Memoized full-row reads served from the cache (lazy backing only).
    pub fn cache_hits(&self) -> u64 {
        // alem-lint: allow(determinism-taint) -- monotone telemetry counter; never enters state, seeds, or fingerprints
        self.hits.load(Ordering::Relaxed)
    }

    /// Full-row materializations (lazy backing only): exactly one per
    /// distinct row ever read.
    pub fn cache_misses(&self) -> u64 {
        // alem-lint: allow(determinism-taint) -- monotone telemetry counter; never enters state, seeds, or fingerprints
        self.misses.load(Ordering::Relaxed)
    }

    /// Non-finite values replaced by 0.0 so far. Eager stores count at
    /// construction; lazy stores count as rows materialize.
    pub fn sanitized_count(&self) -> u64 {
        // alem-lint: allow(determinism-taint) -- monotone telemetry counter; never enters state, seeds, or fingerprints
        self.sanitized.load(Ordering::Relaxed)
    }

    /// Weighted sum `Σ_j weights[j] · row(i)[dims[j]]`, accumulated in
    /// `dims` order on every backing so lazy and eager agree bit-for-bit.
    ///
    /// This is the hot phase-1 read path — called once per pool pair per
    /// selection round — so the backing match and the row/partial-plane
    /// lookups are hoisted out of the per-dim loop instead of paying a
    /// [`FeatureStore::dim_value`] dispatch per element.
    pub fn weighted_sum_dims(&self, i: usize, dims: &[usize], weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), dims.len(), "weight/dim mismatch");
        match &self.backing {
            Backing::Eager { flat } => {
                let row = &flat[i * self.dim..(i + 1) * self.dim];
                let mut acc = 0.0;
                for (j, &d) in dims.iter().enumerate() {
                    acc += weights[j] * row[d];
                }
                acc
            }
            Backing::Lazy {
                fx,
                pairs,
                rows,
                partials,
            } => match rows[i].get() {
                Some(row) => {
                    let mut acc = 0.0;
                    for (j, &d) in dims.iter().enumerate() {
                        acc += weights[j] * row[d];
                    }
                    acc
                }
                None => {
                    let cells = partials[i].get_or_init(|| {
                        (0..self.dim)
                            .map(|_| AtomicU64::new(PARTIAL_EMPTY))
                            .collect()
                    });
                    // Fill any unfilled cells first in one batched,
                    // attr-major pass (steady state allocates nothing),
                    // then accumulate from the memo in dims order so the
                    // sum is bit-identical whether cells were hot or not.
                    let mut missing: Vec<usize> = dims
                        .iter()
                        .copied()
                        // alem-lint: allow(determinism-taint) -- write-once cell; racing writers store the identical deterministic value
                        .filter(|&d| cells[d].load(Ordering::Relaxed) == PARTIAL_EMPTY)
                        .collect();
                    if !missing.is_empty() {
                        missing.sort_unstable();
                        fx.compute_dims_with(pairs[i], &missing, |d, raw| {
                            let v = if raw.is_finite() { raw } else { 0.0 };
                            cells[d].store(v.to_bits(), Ordering::Relaxed);
                        });
                    }
                    let mut acc = 0.0;
                    for (j, &d) in dims.iter().enumerate() {
                        // alem-lint: allow(determinism-taint) -- write-once cell; racing writers store the identical deterministic value
                        acc += weights[j] * f64::from_bits(cells[d].load(Ordering::Relaxed));
                    }
                    acc
                }
            },
        }
    }

    /// Sparse projection onto a fixed set of dimensions.
    pub fn select_dims(&self, dims: Vec<usize>) -> DimsView<'_> {
        for &d in &dims {
            assert!(d < self.dim, "selected dim {d} out of range {}", self.dim);
        }
        DimsView { store: self, dims }
    }

    /// The contiguous row-major matrix, eager backing only. Lazy stores
    /// return `None` — their content is defined by pair identity, not
    /// materialized bytes (see `Corpus::content_fingerprint`).
    pub fn flat(&self) -> Option<&[f64]> {
        match &self.backing {
            Backing::Eager { flat } => Some(flat),
            Backing::Lazy { .. } => None,
        }
    }

    /// Pair list backing a lazy store (`None` when eager).
    pub fn lazy_pairs(&self) -> Option<&[Pair]> {
        match &self.backing {
            Backing::Lazy { pairs, .. } => Some(pairs),
            Backing::Eager { .. } => None,
        }
    }
}

impl Clone for FeatureStore {
    fn clone(&self) -> Self {
        let backing = match &self.backing {
            Backing::Eager { flat } => Backing::Eager { flat: flat.clone() },
            Backing::Lazy {
                fx,
                pairs,
                rows,
                partials,
            } => Backing::Lazy {
                fx: Arc::clone(fx),
                pairs: pairs.clone(),
                rows: rows.clone(),
                partials: partials
                    .iter()
                    .map(|p| {
                        let copy = OnceLock::new();
                        if let Some(cells) = p.get() {
                            let cloned: Box<[AtomicU64]> = cells
                                .iter()
                                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                                .collect();
                            let _ = copy.set(cloned);
                        }
                        copy
                    })
                    .collect(),
            },
        };
        FeatureStore {
            backing,
            len: self.len,
            dim: self.dim,
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            sanitized: AtomicU64::new(self.sanitized.load(Ordering::Relaxed)),
        }
    }
}

impl fmt::Debug for FeatureStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeatureStore")
            .field("len", &self.len)
            .field("dim", &self.dim)
            .field("lazy", &self.is_lazy())
            .field("materialized", &self.materialized_rows())
            .finish()
    }
}

/// Sparse selected-dims view over a [`FeatureStore`].
///
/// Reads go through [`FeatureStore::dim_value`], so on a lazy backing a
/// projection never forces full-row materialization — this is the data
/// path for phase 1 of two-phase lazy scoring.
#[derive(Debug)]
pub struct DimsView<'a> {
    store: &'a FeatureStore,
    dims: Vec<usize>,
}

impl DimsView<'_> {
    /// The projected dimension indices, in view order.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Gather the selected dimensions of row `i` in view order.
    pub fn gather(&self, i: usize) -> Vec<f64> {
        self.dims
            .iter()
            .map(|&d| self.store.dim_value(i, d))
            .collect()
    }

    /// Weighted sum `Σ_j weights[j] · x[dims[j]]` for row `i`; `weights`
    /// aligns with [`DimsView::dims`]. Summation order is the view order,
    /// independent of backing, so lazy and eager agree bit-for-bit.
    pub fn weighted_sum(&self, i: usize, weights: &[f64]) -> f64 {
        self.store.weighted_sum_dims(i, &self.dims, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrKind, EmDataset, Record, Schema, Table};

    fn toy_fx() -> (Arc<FeatureExtractor>, Vec<Pair>) {
        let schema = Schema::new(vec![("name", AttrKind::Text)]);
        let l = Table::new(
            "l",
            schema.clone(),
            vec![
                Record::new(vec![Some("apple ipod".into())]),
                Record::new(vec![Some("sony walkman".into())]),
            ],
        );
        let r = Table::new(
            "r",
            schema,
            vec![
                Record::new(vec![Some("apple ipod nano".into())]),
                Record::new(vec![Some("dell monitor".into())]),
            ],
        );
        let ds = EmDataset {
            left: l,
            right: r,
            matches: [(0u32, 0u32)].into_iter().collect(),
            name: "toy".into(),
        };
        let pairs = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        (Arc::new(FeatureExtractor::new(&ds)), pairs)
    }

    #[test]
    fn eager_rows_round_trip_flat() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let store = FeatureStore::from_rows(rows.clone());
        assert_eq!(store.len(), 3);
        assert_eq!(store.dim(), 2);
        assert!(!store.is_lazy());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(store.row(i), row.as_slice());
            assert_eq!(store.dim_value(i, 1), row[1]);
        }
        assert_eq!(store.flat().unwrap(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn eager_sanitizes_and_counts() {
        let store = FeatureStore::from_rows(vec![vec![f64::NAN, 1.0], vec![0.5, f64::INFINITY]]);
        assert_eq!(store.sanitized_count(), 2);
        assert_eq!(store.row(0), &[0.0, 1.0]);
        assert_eq!(store.row(1), &[0.5, 0.0]);
    }

    #[test]
    fn lazy_rows_match_eager_bit_for_bit() {
        let (fx, pairs) = toy_fx();
        let eager = FeatureStore::from_rows(fx.extract_all(&pairs));
        let lazy = FeatureStore::lazy(Arc::clone(&fx), pairs.clone());
        assert_eq!(lazy.len(), eager.len());
        assert_eq!(lazy.dim(), eager.dim());
        for i in 0..pairs.len() {
            for d in 0..lazy.dim() {
                assert_eq!(
                    lazy.dim_value(i, d).to_bits(),
                    eager.dim_value(i, d).to_bits()
                );
            }
            assert_eq!(lazy.row(i), eager.row(i));
        }
    }

    #[test]
    fn lazy_counts_one_miss_per_row_then_hits() {
        let (fx, pairs) = toy_fx();
        let store = FeatureStore::lazy(fx, pairs);
        assert_eq!(store.materialized_rows(), 0);
        // Partial reads never materialize.
        let _ = store.dim_value(0, 0);
        assert_eq!(store.materialized_rows(), 0);
        assert_eq!(store.cache_misses(), 0);
        store.row(0);
        store.row(0);
        store.row(2);
        assert_eq!(store.cache_misses(), 2);
        assert_eq!(store.cache_hits(), 1);
        assert_eq!(store.materialized_rows(), 2);
        assert_eq!(store.peek_row(1), None);
        assert!(store.peek_row(0).is_some());
    }

    #[test]
    fn dims_view_agrees_with_full_rows() {
        let (fx, pairs) = toy_fx();
        let store = FeatureStore::lazy(Arc::clone(&fx), pairs.clone());
        let view = store.select_dims(vec![3, 0, 7]);
        let weights = [0.25, -1.5, 2.0];
        for (i, &pair) in pairs.iter().enumerate() {
            let expect: f64 = view
                .dims()
                .iter()
                .enumerate()
                .map(|(j, &d)| weights[j] * fx.compute_dim(pair, d))
                .sum();
            assert_eq!(view.weighted_sum(i, &weights).to_bits(), expect.to_bits());
            assert_eq!(view.gather(i).len(), 3);
        }
        // The view alone must not have materialized anything.
        assert_eq!(store.materialized_rows(), 0);
    }

    #[test]
    fn partial_reads_memoize_without_materializing() {
        let (fx, pairs) = toy_fx();
        let store = FeatureStore::lazy(Arc::clone(&fx), pairs.clone());
        let first = store.dim_value(1, 3);
        assert_eq!(first.to_bits(), fx.compute_dim(pairs[1], 3).to_bits());
        assert_eq!(store.partial_cells_filled(), 1);
        assert_eq!(store.materialized_rows(), 0);
        // A repeat read serves the memo: the fill count stays put.
        assert_eq!(store.dim_value(1, 3).to_bits(), first.to_bits());
        assert_eq!(store.partial_cells_filled(), 1);
        // Another dim of the same row fills one more cell; full
        // materialization then short-circuits partial bookkeeping.
        let _ = store.dim_value(1, 5);
        assert_eq!(store.partial_cells_filled(), 2);
        // Materialization assembles the row from the filled cells plus
        // the missing dims — bit-identical to a from-scratch extraction.
        let mut expect = fx.extract_pair(pairs[1]);
        sanitize_row(&mut expect);
        assert_eq!(store.row(1), expect.as_slice());
        assert_eq!(store.dim_value(1, 7).to_bits(), store.row(1)[7].to_bits());
        assert_eq!(store.partial_cells_filled(), 2);
        // Clones carry the partial memo along with the row memo.
        assert_eq!(store.clone().partial_cells_filled(), 2);
    }

    #[test]
    fn clone_preserves_counters_and_memo() {
        let (fx, pairs) = toy_fx();
        let store = FeatureStore::lazy(fx, pairs);
        store.row(1);
        let copy = store.clone();
        assert_eq!(copy.cache_misses(), 1);
        assert_eq!(copy.materialized_rows(), 1);
        // Memoized row carried over: reading it is a hit, not a miss.
        copy.row(1);
        assert_eq!(copy.cache_misses(), 1);
        assert_eq!(copy.cache_hits(), 1);
    }
}
