//! Interpretability: converting tree ensembles to DNF formulas and
//! counting atoms (§6.3).
//!
//! The paper measures interpretability as inversely proportional to the
//! number of *atoms* in a model's DNF form (Singh et al.). A decision tree
//! converts to a DNF by collecting, for every leaf predicting *match*, the
//! conjunction of threshold predicates along its root-to-leaf path;
//! overlapping atoms across conjunctions are counted with repetition. A
//! forest's DNF is the disjunction over its trees.

use crate::features::FeatureDesc;
use mlcore::forest::RandomForest;
use mlcore::rules::Dnf;
use mlcore::tree::{DecisionTree, Node};
use std::fmt::Write as _;

/// One predicate along a tree path: `feature <= threshold` (when
/// `greater == false`) or `feature > threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathAtom {
    /// Feature index tested.
    pub feature: usize,
    /// Split threshold.
    pub threshold: f64,
    /// `true` when the path takes the `>` branch.
    pub greater: bool,
}

/// All root-to-match-leaf paths of a tree, as conjunctions of
/// [`PathAtom`]s.
pub fn tree_match_paths(tree: &DecisionTree) -> Vec<Vec<PathAtom>> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    walk(tree.root(), &mut path, &mut out);
    out
}

fn walk(node: &Node, path: &mut Vec<PathAtom>, out: &mut Vec<Vec<PathAtom>>) {
    match node {
        Node::Leaf { label, .. } => {
            if *label {
                out.push(path.clone());
            }
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            path.push(PathAtom {
                feature: *feature,
                threshold: *threshold,
                greater: false,
            });
            walk(left, path, out);
            path.pop();
            path.push(PathAtom {
                feature: *feature,
                threshold: *threshold,
                greater: true,
            });
            walk(right, path, out);
            path.pop();
        }
    }
}

/// Number of DNF atoms of one tree: total predicates along all match
/// paths, counted with repetition (paper §6.3).
pub fn tree_atom_count(tree: &DecisionTree) -> usize {
    tree_match_paths(tree).iter().map(Vec::len).sum()
}

/// Number of DNF atoms of a forest: sum over its trees.
pub fn forest_atom_count(forest: &RandomForest) -> usize {
    forest.trees().iter().map(tree_atom_count).sum()
}

/// Whether a tree's DNF form agrees with the tree on an input — used by
/// property tests; the DNF predicts match iff some match path holds.
pub fn tree_dnf_predict(paths: &[Vec<PathAtom>], x: &[f64]) -> bool {
    paths.iter().any(|conj| {
        conj.iter().all(|a| {
            if a.greater {
                x[a.feature] > a.threshold
            } else {
                x[a.feature] <= a.threshold
            }
        })
    })
}

/// Pretty-print a learned rule DNF with feature descriptions, in the
/// paper's §6.3 listing style.
pub fn dnf_to_string(dnf: &Dnf, descs: &[impl std::fmt::Display]) -> String {
    if dnf.clauses().is_empty() {
        return "(empty rule: predicts non-match)".to_owned();
    }
    let mut s = String::new();
    for (ri, clause) in dnf.clauses().iter().enumerate() {
        if ri > 0 {
            s.push_str("\n∨\n");
        }
        let _ = write!(s, "Rule {}: ", ri + 1);
        for (ai, &atom) in clause.atoms().iter().enumerate() {
            if ai > 0 {
                s.push_str("\n  ∧ ");
            }
            let _ = write!(s, "{}", descs[atom]);
        }
    }
    s
}

/// Pretty-print a continuous-feature tree path (debugging aid).
pub fn path_to_string(path: &[PathAtom], descs: &[FeatureDesc]) -> String {
    path.iter()
        .map(|a| {
            format!(
                "{} {} {:.3}",
                descs[a.feature],
                if a.greater { ">" } else { "<=" },
                a.threshold
            )
        })
        .collect::<Vec<_>>()
        .join(" ∧ ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::data::TrainSet;
    use mlcore::tree::TreeConfig;
    use mlcore::Classifier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_tree() -> (DecisionTree, Vec<Vec<f64>>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..4 {
                    xs.push(vec![f64::from(a), f64::from(b)]);
                    ys.push((a ^ b) == 1);
                }
            }
        }
        let set = TrainSet::new(&xs, &ys);
        let tree = TreeConfig::default().train(&set, &mut StdRng::seed_from_u64(1));
        (tree, xs, ys)
    }

    #[test]
    fn dnf_agrees_with_tree() {
        let (tree, xs, _) = xor_tree();
        let paths = tree_match_paths(&tree);
        for x in &xs {
            assert_eq!(tree.predict(x), tree_dnf_predict(&paths, x));
        }
    }

    #[test]
    fn atom_count_positive_for_nontrivial_tree() {
        let (tree, _, _) = xor_tree();
        let atoms = tree_atom_count(&tree);
        assert!(atoms >= 2, "xor tree needs at least 2 atoms, got {atoms}");
        // Match paths for XOR: two leaves, each at depth ≥ 2.
        assert_eq!(tree_match_paths(&tree).len(), 2);
    }

    #[test]
    fn pure_negative_tree_has_zero_atoms() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![false, false];
        let set = TrainSet::new(&xs, &ys);
        let tree = TreeConfig::default().train(&set, &mut StdRng::seed_from_u64(1));
        assert_eq!(tree_atom_count(&tree), 0);
    }

    #[test]
    fn dnf_pretty_print() {
        use mlcore::rules::{Conjunction, Dnf};
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![0, 1]),
            Conjunction::new(vec![2]),
        ]);
        let descs = vec!["A", "B", "C"];
        let s = dnf_to_string(&dnf, &descs);
        assert!(s.contains("Rule 1: A"));
        assert!(s.contains("∧ B"));
        assert!(s.contains("Rule 2: C"));
        assert!(s.contains("∨"));
        assert_eq!(
            dnf_to_string(&Dnf::empty(), &descs),
            "(empty rule: predicts non-match)"
        );
    }
}
