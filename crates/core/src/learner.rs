//! The [`Trainer`] abstraction: anything that can produce a fresh
//! classifier from labeled data.
//!
//! The paper's framework (Fig. 2) models learners as a class hierarchy so
//! the same pipeline drives every classifier family; here the equivalent is
//! a small trait implemented by thin wrappers around the `mlcore` training
//! configs. Learner-agnostic QBC (§4.1) retrains a committee of models from
//! bootstrap resamples, which is exactly "call [`Trainer::train`] B times".

use mlcore::data::TrainSet;
use mlcore::forest::{ForestConfig, RandomForest};
use mlcore::nn::{NeuralNet, NnConfig};
use mlcore::rules::{Dnf, DnfConfig};
use mlcore::svm::{LinearSvm, SvmConfig};
use mlcore::Classifier;
use rand::rngs::StdRng;

/// Trains a model of a fixed family from labeled feature rows.
///
/// `Sync` (on the trainer) and `Send + Sync` (on the model) let committee
/// members train on worker threads and score the pool from shared
/// references — every implementation is a plain data struct, so the
/// bounds are free.
pub trait Trainer: Sync {
    /// The trained model type.
    type Model: Classifier + Send + Sync;

    /// Train a fresh model. Implementations must be deterministic given
    /// the RNG state.
    fn train(&self, xs: &[Vec<f64>], ys: &[bool], rng: &mut StdRng) -> Self::Model;

    /// Human-readable name used in reports (e.g. `"Linear"`).
    fn name(&self) -> &'static str;
}

/// Linear SVM trainer (paper's linear classifier).
#[derive(Debug, Clone, Default)]
pub struct SvmTrainer(pub SvmConfig);

impl Trainer for SvmTrainer {
    type Model = LinearSvm;

    fn train(&self, xs: &[Vec<f64>], ys: &[bool], rng: &mut StdRng) -> LinearSvm {
        self.0.train(&TrainSet::new(xs, ys), rng)
    }

    fn name(&self) -> &'static str {
        "Linear"
    }
}

/// Feed-forward neural network trainer (paper's non-convex non-linear
/// classifier).
#[derive(Debug, Clone, Default)]
pub struct NnTrainer(pub NnConfig);

impl Trainer for NnTrainer {
    type Model = NeuralNet;

    fn train(&self, xs: &[Vec<f64>], ys: &[bool], rng: &mut StdRng) -> NeuralNet {
        self.0.train(&TrainSet::new(xs, ys), rng)
    }

    fn name(&self) -> &'static str {
        "Non-Convex Non-Linear"
    }
}

/// Random-forest trainer (paper's tree-based classifier, Corleone
/// settings).
#[derive(Debug, Clone, Default)]
pub struct ForestTrainer(pub ForestConfig);

impl ForestTrainer {
    /// Forest with `n` trees and paper defaults.
    pub fn with_trees(n: usize) -> Self {
        ForestTrainer(ForestConfig::with_trees(n))
    }
}

impl Trainer for ForestTrainer {
    type Model = RandomForest;

    fn train(&self, xs: &[Vec<f64>], ys: &[bool], rng: &mut StdRng) -> RandomForest {
        self.0.train(&TrainSet::new(xs, ys), rng)
    }

    fn name(&self) -> &'static str {
        "Tree-based"
    }
}

/// Monotone-DNF rule trainer (paper's rule-based classifier). Expects
/// Boolean predicate features.
#[derive(Debug, Clone, Default)]
pub struct DnfTrainer(pub DnfConfig);

impl Trainer for DnfTrainer {
    type Model = Dnf;

    fn train(&self, xs: &[Vec<f64>], ys: &[bool], _rng: &mut StdRng) -> Dnf {
        self.0.train(&TrainSet::new(xs, ys))
    }

    fn name(&self) -> &'static str {
        "Rules"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i) / 40.0]).collect();
        let ys: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        (xs, ys)
    }

    #[test]
    fn all_trainers_produce_working_models() {
        let (xs, ys) = data();
        let mut rng = StdRng::seed_from_u64(1);
        let svm = SvmTrainer::default().train(&xs, &ys, &mut rng);
        assert!(svm.predict(&[0.95]));
        let forest = ForestTrainer::with_trees(5).train(&xs, &ys, &mut rng);
        assert!(forest.predict(&[0.95]));
        assert!(!forest.predict(&[0.05]));
        let nn = NnTrainer::default().train(&xs, &ys, &mut rng);
        let _ = nn.decision_value(&[0.95]);
        // Rules need Boolean features.
        let bx: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| vec![f64::from(u8::from(r[0] >= 0.5))])
            .collect();
        let dnf = DnfTrainer::default().train(&bx, &ys, &mut rng);
        assert!(dnf.predict(&[1.0]));
        assert!(!dnf.predict(&[0.0]));
    }

    #[test]
    fn names_are_paper_families() {
        assert_eq!(SvmTrainer::default().name(), "Linear");
        assert_eq!(ForestTrainer::default().name(), "Tree-based");
        assert_eq!(NnTrainer::default().name(), "Non-Convex Non-Linear");
        assert_eq!(DnfTrainer::default().name(), "Rules");
    }
}
