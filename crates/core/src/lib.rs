//! `alem-core` — a unified active-learning benchmark framework for entity
//! matching.
//!
//! This crate is a from-scratch Rust reproduction of the system described in
//! *"A Comprehensive Benchmark Framework for Active Learning Methods in
//! Entity Matching"* (Meduri, Popa, Sen, Sarwat — SIGMOD 2020). It lets you
//! mix-and-match **learners** (linear SVM, feed-forward neural network,
//! random forest, DNF rule learner — see [`learner`]) with **example
//! selectors** (learner-agnostic QBC, learner-aware tree QBC, margin-based
//! selection with optional blocking dimensions, and the LFP/LFN heuristic —
//! see [`selector`]), and evaluates every combination on the paper's four
//! metric families: EM quality (progressive F1), example-selection latency,
//! \#labels to convergence, and interpretability.
//!
//! # Pipeline
//!
//! 1. [`schema`] describes the two tables to match; a
//!    [`candidates::CandidateSource`] streams candidate pairs out of the
//!    Cartesian product — [`blocking`] is the paper's offline Jaccard token
//!    filter, and the `alem-block` crate adds scale-out index strategies
//!    with recall/reduction-ratio reporting ([`candidates::BlockingReport`]).
//! 2. [`features`] turns each candidate pair into a dense feature vector (21
//!    similarity functions × aligned attributes) and, for the rule learner,
//!    a Boolean predicate vector; [`corpus::Corpus`] bundles the pair
//!    universe with its hidden ground truth.
//! 3. [`loop_`] drives active learning: 30 seed labels, batches of 10
//!    queried from an [`oracle::Oracle`] (perfect or noisy), model refit,
//!    and per-iteration evaluation by [`evaluator`].
//! 4. [`ensemble`] (active ensembles of high-precision SVMs, §5.2) and
//!    [`selector::blocking_dim`] (top-K weight blocking, §5.1) implement the
//!    paper's two optimizations; [`interpret`] converts trees to DNFs for
//!    the interpretability comparison (§6.3).
//!
//! # Quick start
//!
//! ```
//! use alem_core::prelude::*;
//!
//! // A tiny synthetic corpus: one informative feature.
//! let feats: Vec<Vec<f64>> = (0..200)
//!     .map(|i| vec![i as f64 / 200.0, (i % 7) as f64 / 7.0])
//!     .collect();
//! let truth: Vec<bool> = (0..200).map(|i| i >= 120).collect();
//! let corpus = Corpus::from_features(feats, truth.clone());
//!
//! let params = LoopParams::builder()
//!     .seed_size(20)
//!     .batch_size(10)
//!     .max_labels(120)
//!     .build();
//! let oracle = Oracle::perfect(truth);
//! let run = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params)
//!     .run(&corpus, &oracle, 42)
//!     .expect("valid configuration and a reliable oracle");
//! assert!(run.best_f1() > 0.9);
//! ```
//!
//! Long-running sessions can checkpoint and resume ([`session`]), retry
//! transient Oracle failures, and inject faults for robustness benchmarks
//! ([`oracle::TransientOracle`] and friends); failures surface as
//! structured [`error::AlemError`] values instead of panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod candidates;
pub mod corpus;
pub mod ensemble;
pub mod error;
pub mod evaluator;
pub mod features;
pub mod featurestore;
pub mod interpret;
pub mod learner;
pub mod loop_;
pub mod model_io;
pub mod oracle;
pub mod prelude;
pub mod report;
pub mod schema;
pub mod selector;
pub mod session;
pub mod strategy;
