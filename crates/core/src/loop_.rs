//! The active-learning driver (paper Fig. 1a).
//!
//! Starting from a small random seed of labeled pairs (30 in the paper),
//! each iteration (re)trains the strategy's model on the cumulative labeled
//! data, evaluates it, asks the strategy to select a batch of ambiguous
//! pairs (10 in the paper), queries the Oracle for their labels, and folds
//! them into the training pool. Termination mirrors §6: a near-perfect F1
//! (perfect Oracles), label exhaustion (noisy Oracles), a label budget, or
//! strategy-initiated termination (LFP/LFN exhaustion for rules).

use crate::corpus::Corpus;
use crate::evaluator::{confusion_over, iteration_stats, RunResult};
use crate::oracle::Oracle;
use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// What the per-iteration evaluation runs against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalMode {
    /// Evaluate on *all* post-blocking pairs, labeled and unlabeled — the
    /// paper's progressive F1 (§6, train-test splits).
    Progressive,
    /// Conventional supervised split: selection draws from a (1 −
    /// `test_frac`) train pool, evaluation uses the held-out rest
    /// (Figs. 16–17 use `test_frac = 0.2`).
    Holdout {
        /// Fraction of pairs held out for testing.
        test_frac: f64,
    },
}

/// Loop hyper-parameters. Defaults are the paper's settings.
#[derive(Debug, Clone)]
pub struct LoopParams {
    /// Initial random labeled seed (paper: 30).
    pub seed_size: usize,
    /// Labels queried per iteration (paper: 10).
    pub batch_size: usize,
    /// Total label budget including the seed (e.g. 2360 for Figs. 8–9).
    pub max_labels: usize,
    /// Evaluation mode.
    pub eval: EvalMode,
    /// Stop once progressive F1 reaches this value (perfect-Oracle
    /// termination; `None` = run to exhaustion as with noisy Oracles).
    pub stop_at_f1: Option<f64>,
}

impl Default for LoopParams {
    fn default() -> Self {
        LoopParams {
            seed_size: 30,
            batch_size: 10,
            max_labels: 2360,
            eval: EvalMode::Progressive,
            stop_at_f1: Some(0.99),
        }
    }
}

/// An active-learning session binding a strategy to loop parameters.
pub struct ActiveLearner<S: Strategy> {
    strategy: S,
    params: LoopParams,
}

impl<S: Strategy> ActiveLearner<S> {
    /// Bind `strategy` to `params`.
    pub fn new(strategy: S, params: LoopParams) -> Self {
        ActiveLearner { strategy, params }
    }

    /// Consume the learner, returning the strategy (to inspect the final
    /// model after [`ActiveLearner::run`]).
    pub fn into_strategy(self) -> S {
        self.strategy
    }

    /// Borrow the strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Run the loop on `corpus` with labels from `oracle`, seeded by
    /// `seed` for full reproducibility. Returns per-iteration statistics.
    pub fn run(&mut self, corpus: &Corpus, oracle: &Oracle, seed: u64) -> RunResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = &self.params;
        assert!(params.seed_size >= 1, "need at least one seed label");
        assert!(params.batch_size >= 1, "need a positive batch size");

        // Build the selection pool and the evaluation set.
        let (mut pool, eval_idx): (Vec<usize>, Vec<usize>) = match params.eval {
            EvalMode::Progressive => ((0..corpus.len()).collect(), (0..corpus.len()).collect()),
            EvalMode::Holdout { test_frac } => {
                let (train, test) = corpus.split_holdout(test_frac, &mut rng);
                (train, test)
            }
        };

        // Random initial seed from the pool.
        pool.shuffle(&mut rng);
        let seed_n = params.seed_size.min(pool.len());
        let mut labeled: Vec<(usize, bool)> = pool
            .drain(..seed_n)
            .map(|i| (i, oracle.label(i)))
            .collect();
        let mut unlabeled = pool;

        let mut iterations = Vec::new();
        let mut iter_no = 0usize;
        loop {
            // Train on the cumulative labeled data.
            let t0 = Instant::now();
            self.strategy.fit(corpus, &labeled, &mut rng);
            let train_time = t0.elapsed();

            // Evaluate against ground truth.
            let confusion = confusion_over(
                |i| self.strategy.predict(corpus, i),
                |i| corpus.truth(i),
                &eval_idx,
            );
            let mut stats = iteration_stats(
                iter_no,
                labeled.len(),
                &confusion,
                train_time,
                std::time::Duration::ZERO,
                std::time::Duration::ZERO,
            );
            let extra = self.strategy.stats();
            stats.atoms = extra.atoms;
            stats.depth = extra.depth;
            stats.accepted_models = extra.accepted_models;
            stats.pruned = extra.pruned;

            // Termination checks before selecting more labels.
            let reached_target = params.stop_at_f1.is_some_and(|t| stats.f1 >= t);
            let out_of_budget = labeled.len() + params.batch_size > params.max_labels;
            if reached_target
                || out_of_budget
                || unlabeled.is_empty()
                || self.strategy.terminated()
            {
                iterations.push(stats);
                break;
            }

            // Select and label the next batch.
            let selection = self.strategy.select(
                corpus,
                &labeled,
                &unlabeled,
                params.batch_size,
                &mut rng,
            );
            stats.committee_secs = selection.committee_creation.as_secs_f64();
            stats.scoring_secs = selection.scoring.as_secs_f64();
            iterations.push(stats);

            if selection.chosen.is_empty() {
                break; // strategy found nothing worth labeling
            }
            let new: Vec<(usize, bool)> = selection
                .chosen
                .iter()
                .map(|&i| (i, oracle.label(i)))
                .collect();
            unlabeled.retain(|i| !selection.chosen.contains(i));
            labeled.extend(new.iter().copied());
            self.strategy
                .post_label(corpus, &new, &mut labeled, &mut unlabeled, &mut rng);

            iter_no += 1;
        }

        RunResult {
            strategy: self.strategy.name(),
            dataset: corpus.name().to_owned(),
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::{ForestTrainer, SvmTrainer};
    use crate::strategy::{MarginSvmStrategy, QbcStrategy, RandomStrategy, TreeQbcStrategy};

    fn corpus(n: usize) -> Corpus {
        let feats: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, (i % 13) as f64 / 13.0])
            .collect();
        let truth: Vec<bool> = (0..n).map(|i| i >= 3 * n / 4).collect();
        Corpus::from_features(feats, truth)
    }

    fn quick_params() -> LoopParams {
        LoopParams {
            seed_size: 20,
            batch_size: 10,
            max_labels: 150,
            eval: EvalMode::Progressive,
            stop_at_f1: Some(0.99),
        }
    }

    #[test]
    fn margin_svm_converges_on_separable_data() {
        let c = corpus(300);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(
            MarginSvmStrategy::new(SvmTrainer::default()),
            quick_params(),
        );
        let run = al.run(&c, &oracle, 7);
        assert!(run.best_f1() > 0.9, "best F1 {}", run.best_f1());
        assert!(!run.iterations.is_empty());
        // Label counts grow by the batch size.
        assert_eq!(run.iterations[0].labels_used, 20);
        if run.iterations.len() > 1 {
            assert_eq!(run.iterations[1].labels_used, 30);
        }
    }

    #[test]
    fn trees_reach_high_f1_fast() {
        let c = corpus(300);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(TreeQbcStrategy::new(10), quick_params());
        let run = al.run(&c, &oracle, 7);
        assert!(run.best_f1() > 0.95, "best F1 {}", run.best_f1());
        // Tree strategy reports interpretability stats.
        assert!(run.iterations[0].atoms.is_some());
    }

    #[test]
    fn stops_at_label_budget() {
        let c = corpus(300);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let params = LoopParams {
            stop_at_f1: None,
            max_labels: 60,
            seed_size: 20,
            batch_size: 10,
            eval: EvalMode::Progressive,
        };
        let mut al = ActiveLearner::new(
            RandomStrategy::new(ForestTrainer::with_trees(3), "SupervisedTrees(Random-3)"),
            params,
        );
        let run = al.run(&c, &oracle, 7);
        assert!(run.total_labels() <= 60);
        assert_eq!(oracle.queries(), run.total_labels() as u64);
    }

    #[test]
    fn holdout_mode_evaluates_on_test_only() {
        let c = corpus(200);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let params = LoopParams {
            eval: EvalMode::Holdout { test_frac: 0.2 },
            seed_size: 20,
            batch_size: 10,
            max_labels: 100,
            stop_at_f1: Some(0.99),
        };
        let mut al = ActiveLearner::new(
            QbcStrategy::new(SvmTrainer::default(), 3),
            params,
        );
        let run = al.run(&c, &oracle, 11);
        // The train pool is 160 examples; labels can't exceed it.
        assert!(run.total_labels() <= 100);
        assert!(run.best_f1() > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = corpus(200);
        let f1s = |seed: u64| -> Vec<f64> {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al = ActiveLearner::new(
                MarginSvmStrategy::new(SvmTrainer::default()),
                quick_params(),
            );
            al.run(&c, &oracle, seed).iterations.iter().map(|s| s.f1).collect()
        };
        assert_eq!(f1s(3), f1s(3));
    }

    #[test]
    fn seed_larger_than_pool_is_clamped() {
        let c = corpus(25);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let params = LoopParams {
            seed_size: 100,
            batch_size: 10,
            max_labels: 200,
            eval: EvalMode::Progressive,
            stop_at_f1: None,
        };
        let mut al = ActiveLearner::new(
            MarginSvmStrategy::new(SvmTrainer::default()),
            params,
        );
        let run = al.run(&c, &oracle, 1);
        // Whole pool became the seed; exactly one iteration recorded.
        assert_eq!(run.total_labels(), 25);
        assert_eq!(run.iterations.len(), 1);
    }

    #[test]
    fn single_class_corpus_does_not_panic() {
        let feats: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let truth = vec![false; 60];
        let c = Corpus::from_features(feats, truth);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(
            TreeQbcStrategy::new(3),
            LoopParams {
                seed_size: 10,
                batch_size: 10,
                max_labels: 40,
                eval: EvalMode::Progressive,
                stop_at_f1: None,
            },
        );
        let run = al.run(&c, &oracle, 2);
        // No positives anywhere: F1 is 0 but the loop completes.
        assert_eq!(run.best_f1(), 0.0);
        assert!(run.total_labels() <= 40);
    }

    #[test]
    fn noisy_labels_flow_into_training_but_eval_uses_truth() {
        let c = corpus(200);
        // 100% noise: every training label is wrong, so progressive F1
        // against the (clean) ground truth should collapse.
        let oracle = Oracle::noisy(c.truths().to_vec(), 1.0, 9);
        let mut al = ActiveLearner::new(
            TreeQbcStrategy::new(5),
            LoopParams {
                max_labels: 100,
                stop_at_f1: None,
                seed_size: 20,
                batch_size: 10,
                eval: EvalMode::Progressive,
            },
        );
        let run = al.run(&c, &oracle, 3);
        assert!(run.best_f1() < 0.5, "inverted labels gave F1 {}", run.best_f1());
    }

    #[test]
    fn qbc_records_committee_time() {
        let c = corpus(200);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(
            QbcStrategy::new(SvmTrainer::default(), 5),
            LoopParams {
                max_labels: 40,
                seed_size: 20,
                batch_size: 10,
                eval: EvalMode::Progressive,
                stop_at_f1: None,
            },
        );
        let run = al.run(&c, &oracle, 3);
        // Every iteration that selected must have spent committee time.
        let selecting_iters = run.iterations.len() - 1;
        let with_committee = run
            .iterations
            .iter()
            .take(selecting_iters)
            .filter(|s| s.committee_secs > 0.0)
            .count();
        assert_eq!(with_committee, selecting_iters);
    }
}
