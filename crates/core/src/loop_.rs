//! The active-learning driver (paper Fig. 1a).
//!
//! Starting from a small random seed of labeled pairs (30 in the paper),
//! each iteration (re)trains the strategy's model on the cumulative labeled
//! data, evaluates it, asks the strategy to select a batch of ambiguous
//! pairs (10 in the paper), queries the Oracle for their labels, and folds
//! them into the training pool. Termination mirrors §6: a near-perfect F1
//! (perfect Oracles), label exhaustion (noisy Oracles), a label budget, or
//! strategy-initiated termination (LFP/LFN exhaustion for rules).
//!
//! [`ActiveLearner::run`] is the simple entry point; the fault-tolerant
//! variant with checkpoint/resume, retries, and graceful degradation lives
//! in [`crate::session`] (same loop — `run` delegates to it).

use crate::corpus::Corpus;
use crate::error::AlemError;
use crate::evaluator::RunResult;
use crate::oracle::QueryOracle;
use crate::session::{SessionConfig, SessionOutcome};
use crate::strategy::Strategy;
use serde::{Deserialize, Serialize};

/// What the per-iteration evaluation runs against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EvalMode {
    /// Evaluate on *all* post-blocking pairs, labeled and unlabeled — the
    /// paper's progressive F1 (§6, train-test splits).
    Progressive,
    /// Conventional supervised split: selection draws from a (1 −
    /// `test_frac`) train pool, evaluation uses the held-out rest
    /// (Figs. 16–17 use `test_frac = 0.2`).
    Holdout {
        /// Fraction of pairs held out for testing.
        test_frac: f64,
    },
}

/// Loop hyper-parameters. Defaults are the paper's settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopParams {
    /// Initial random labeled seed (paper: 30).
    pub seed_size: usize,
    /// Labels queried per iteration (paper: 10).
    pub batch_size: usize,
    /// Total label budget including the seed (e.g. 2360 for Figs. 8–9).
    pub max_labels: usize,
    /// Evaluation mode.
    pub eval: EvalMode,
    /// Stop once progressive F1 reaches this value (perfect-Oracle
    /// termination; `None` = run to exhaustion as with noisy Oracles).
    pub stop_at_f1: Option<f64>,
}

impl Default for LoopParams {
    fn default() -> Self {
        LoopParams {
            seed_size: 30,
            batch_size: 10,
            max_labels: 2360,
            eval: EvalMode::Progressive,
            stop_at_f1: Some(0.99),
        }
    }
}

impl LoopParams {
    /// Fluent construction starting from the paper's defaults:
    ///
    /// ```
    /// use alem_core::loop_::{EvalMode, LoopParams};
    /// let params = LoopParams::builder()
    ///     .max_labels(500)
    ///     .eval(EvalMode::Holdout { test_frac: 0.2 })
    ///     .build();
    /// assert_eq!(params.seed_size, 30); // untouched defaults remain
    /// ```
    pub fn builder() -> LoopParamsBuilder {
        LoopParamsBuilder {
            params: LoopParams::default(),
        }
    }
}

/// Builder returned by [`LoopParams::builder`]. Every setter overrides one
/// paper default; [`LoopParamsBuilder::build`] yields the final params.
#[derive(Debug, Clone)]
pub struct LoopParamsBuilder {
    params: LoopParams,
}

impl LoopParamsBuilder {
    /// Initial random labeled seed (paper: 30).
    pub fn seed_size(mut self, n: usize) -> Self {
        self.params.seed_size = n;
        self
    }

    /// Labels queried per iteration (paper: 10).
    pub fn batch_size(mut self, n: usize) -> Self {
        self.params.batch_size = n;
        self
    }

    /// Total label budget including the seed.
    pub fn max_labels(mut self, n: usize) -> Self {
        self.params.max_labels = n;
        self
    }

    /// Evaluation mode (progressive F1 or a conventional hold-out split).
    pub fn eval(mut self, eval: EvalMode) -> Self {
        self.params.eval = eval;
        self
    }

    /// Stop once progressive F1 reaches this value.
    pub fn stop_at_f1(mut self, f1: f64) -> Self {
        self.params.stop_at_f1 = Some(f1);
        self
    }

    /// Run to label exhaustion: never stop on F1 (the noisy-Oracle setting).
    pub fn run_to_exhaustion(mut self) -> Self {
        self.params.stop_at_f1 = None;
        self
    }

    /// Finalize the parameters.
    pub fn build(self) -> LoopParams {
        self.params
    }
}

/// An active-learning session binding a strategy to loop parameters.
pub struct ActiveLearner<S: Strategy> {
    pub(crate) strategy: S,
    pub(crate) params: LoopParams,
}

impl<S: Strategy> ActiveLearner<S> {
    /// Bind `strategy` to `params`.
    pub fn new(strategy: S, params: LoopParams) -> Self {
        ActiveLearner { strategy, params }
    }

    /// Consume the learner, returning the strategy (to inspect the final
    /// model after [`ActiveLearner::run`]).
    pub fn into_strategy(self) -> S {
        self.strategy
    }

    /// Borrow the strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Borrow the loop parameters.
    pub fn params(&self) -> &LoopParams {
        &self.params
    }

    /// Run the loop on `corpus` with labels from `oracle`, seeded by
    /// `seed` for full reproducibility. Returns per-iteration statistics,
    /// or a structured [`AlemError`] on invalid configuration / an Oracle
    /// that stays unavailable past the default retry policy.
    pub fn run(
        &mut self,
        corpus: &Corpus,
        oracle: &dyn QueryOracle,
        seed: u64,
    ) -> Result<RunResult, AlemError> {
        match self.run_session(corpus, oracle, seed, &SessionConfig::default())? {
            SessionOutcome::Complete(run) => Ok(run),
            SessionOutcome::Halted { .. } => {
                // alem-lint: allow(no-panic) -- SessionConfig::default() sets halt_after: None, so the session cannot halt
                unreachable!("default session config never halts")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::{ForestTrainer, SvmTrainer};
    use crate::oracle::Oracle;
    use crate::strategy::{MarginSvmStrategy, QbcStrategy, RandomStrategy, TreeQbcStrategy};

    fn corpus(n: usize) -> Corpus {
        let feats: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, (i % 13) as f64 / 13.0])
            .collect();
        let truth: Vec<bool> = (0..n).map(|i| i >= 3 * n / 4).collect();
        Corpus::from_features(feats, truth)
    }

    fn quick_params() -> LoopParams {
        LoopParams {
            seed_size: 20,
            batch_size: 10,
            max_labels: 150,
            eval: EvalMode::Progressive,
            stop_at_f1: Some(0.99),
        }
    }

    #[test]
    fn builder_overrides_only_named_fields() {
        let p = LoopParams::builder()
            .seed_size(12)
            .eval(EvalMode::Holdout { test_frac: 0.25 })
            .run_to_exhaustion()
            .build();
        assert_eq!(p.seed_size, 12);
        assert_eq!(p.batch_size, LoopParams::default().batch_size);
        assert_eq!(p.max_labels, LoopParams::default().max_labels);
        assert_eq!(p.eval, EvalMode::Holdout { test_frac: 0.25 });
        assert_eq!(p.stop_at_f1, None);
        let q = LoopParams::builder().stop_at_f1(0.95).build();
        assert_eq!(q.stop_at_f1, Some(0.95));
    }

    #[test]
    fn margin_svm_converges_on_separable_data() {
        let c = corpus(300);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(
            MarginSvmStrategy::new(SvmTrainer::default()),
            quick_params(),
        );
        let run = al.run(&c, &oracle, 7).unwrap();
        assert!(run.best_f1() > 0.9, "best F1 {}", run.best_f1());
        assert!(!run.iterations.is_empty());
        // Label counts grow by the batch size.
        assert_eq!(run.iterations[0].labels_used, 20);
        if run.iterations.len() > 1 {
            assert_eq!(run.iterations[1].labels_used, 30);
        }
    }

    #[test]
    fn trees_reach_high_f1_fast() {
        let c = corpus(300);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(TreeQbcStrategy::new(10), quick_params());
        let run = al.run(&c, &oracle, 7).unwrap();
        assert!(run.best_f1() > 0.95, "best F1 {}", run.best_f1());
        // Tree strategy reports interpretability stats.
        assert!(run.iterations[0].atoms.is_some());
    }

    #[test]
    fn stops_at_label_budget() {
        let c = corpus(300);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let params = LoopParams {
            stop_at_f1: None,
            max_labels: 60,
            seed_size: 20,
            batch_size: 10,
            eval: EvalMode::Progressive,
        };
        let mut al = ActiveLearner::new(
            RandomStrategy::new(ForestTrainer::with_trees(3), "SupervisedTrees(Random-3)"),
            params,
        );
        let run = al.run(&c, &oracle, 7).unwrap();
        assert!(run.total_labels() <= 60);
        assert_eq!(oracle.queries(), run.total_labels() as u64);
    }

    #[test]
    fn holdout_mode_evaluates_on_test_only() {
        let c = corpus(200);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let params = LoopParams {
            eval: EvalMode::Holdout { test_frac: 0.2 },
            seed_size: 20,
            batch_size: 10,
            max_labels: 100,
            stop_at_f1: Some(0.99),
        };
        let mut al = ActiveLearner::new(QbcStrategy::new(SvmTrainer::default(), 3), params);
        let run = al.run(&c, &oracle, 11).unwrap();
        // The train pool is 160 examples; labels can't exceed it.
        assert!(run.total_labels() <= 100);
        assert!(run.best_f1() > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = corpus(200);
        let f1s = |seed: u64| -> Vec<f64> {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al = ActiveLearner::new(
                MarginSvmStrategy::new(SvmTrainer::default()),
                quick_params(),
            );
            al.run(&c, &oracle, seed)
                .unwrap()
                .iterations
                .iter()
                .map(|s| s.f1)
                .collect()
        };
        assert_eq!(f1s(3), f1s(3));
    }

    #[test]
    fn seed_larger_than_pool_is_clamped() {
        let c = corpus(25);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let params = LoopParams {
            seed_size: 100,
            batch_size: 10,
            max_labels: 200,
            eval: EvalMode::Progressive,
            stop_at_f1: None,
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params);
        let run = al.run(&c, &oracle, 1).unwrap();
        // Whole pool became the seed; exactly one iteration recorded.
        assert_eq!(run.total_labels(), 25);
        assert_eq!(run.iterations.len(), 1);
    }

    #[test]
    fn single_class_corpus_does_not_panic() {
        let feats: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let truth = vec![false; 60];
        let c = Corpus::from_features(feats, truth);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(
            TreeQbcStrategy::new(3),
            LoopParams {
                seed_size: 10,
                batch_size: 10,
                max_labels: 40,
                eval: EvalMode::Progressive,
                stop_at_f1: None,
            },
        );
        let run = al.run(&c, &oracle, 2).unwrap();
        // No positives anywhere: F1 is 0 but the loop completes (after the
        // session's bounded extra random draws fail to find a second class).
        assert_eq!(run.best_f1(), 0.0);
        assert!(run.total_labels() <= 40);
    }

    #[test]
    fn noisy_labels_flow_into_training_but_eval_uses_truth() {
        let c = corpus(200);
        // 100% noise: every training label is wrong, so progressive F1
        // against the (clean) ground truth should collapse.
        let oracle = Oracle::noisy(c.truths().to_vec(), 1.0, 9).unwrap();
        let mut al = ActiveLearner::new(
            TreeQbcStrategy::new(5),
            LoopParams {
                max_labels: 100,
                stop_at_f1: None,
                seed_size: 20,
                batch_size: 10,
                eval: EvalMode::Progressive,
            },
        );
        let run = al.run(&c, &oracle, 3).unwrap();
        assert!(
            run.best_f1() < 0.5,
            "inverted labels gave F1 {}",
            run.best_f1()
        );
    }

    #[test]
    fn qbc_records_committee_time() {
        let c = corpus(200);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(
            QbcStrategy::new(SvmTrainer::default(), 5),
            LoopParams {
                max_labels: 40,
                seed_size: 20,
                batch_size: 10,
                eval: EvalMode::Progressive,
                stop_at_f1: None,
            },
        );
        let run = al.run(&c, &oracle, 3).unwrap();
        // Every iteration that selected must have spent committee time.
        let selecting_iters = run.iterations.len() - 1;
        let with_committee = run
            .iterations
            .iter()
            .take(selecting_iters)
            .filter(|s| s.committee_secs > 0.0)
            .count();
        assert_eq!(with_committee, selecting_iters);
    }
}
