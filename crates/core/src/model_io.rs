//! Saving and loading trained matchers.
//!
//! The paper argues (§2) that active learning's advantage over pure
//! crowdsourcing is the *reusable EM model* — once learned, it matches new
//! data without paying for labels again. [`SavedModel`] is that reusable
//! artifact: a serializable snapshot of any learned matcher, restorable
//! without the training pipeline.

use mlcore::forest::RandomForest;
use mlcore::nn::NeuralNet;
use mlcore::rules::Dnf;
use mlcore::svm::{LinearSvm, SvmWarmState};
use mlcore::Classifier;
use serde::{Deserialize, Serialize};

/// A serializable trained matcher of any supported family.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", content = "model")]
pub enum SavedModel {
    /// A single linear SVM.
    Svm(LinearSvm),
    /// An active ensemble of linear SVMs (union of positive predictions).
    SvmEnsemble(Vec<LinearSvm>),
    /// A random forest.
    Forest(RandomForest),
    /// A feed-forward neural network.
    NeuralNet(Box<NeuralNet>),
    /// A monotone DNF rule set. **Operates on Boolean predicate features**,
    /// not the continuous 21-sim features of the other families.
    Rules(Dnf),
}

impl SavedModel {
    /// Predict on a feature row of the family's native featurization
    /// (continuous for SVM/forest/NN, Boolean for rules).
    pub fn predict(&self, x: &[f64]) -> bool {
        match self {
            SavedModel::Svm(m) => m.predict(x),
            SavedModel::SvmEnsemble(ms) => ms.iter().any(|m| m.predict(x)),
            SavedModel::Forest(m) => m.predict(x),
            SavedModel::NeuralNet(m) => m.predict(x),
            SavedModel::Rules(m) => m.predict(x),
        }
    }

    /// Does this model consume Boolean rule-predicate features?
    pub fn wants_bool_features(&self) -> bool {
        matches!(self, SavedModel::Rules(_))
    }

    /// Family name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            SavedModel::Svm(_) => "svm",
            SavedModel::SvmEnsemble(_) => "svm-ensemble",
            SavedModel::Forest(_) => "forest",
            SavedModel::NeuralNet(_) => "neural-net",
            SavedModel::Rules(_) => "rules",
        }
    }
}

/// Serializable warm-training state a strategy carries across AL rounds
/// (and across checkpoint/resume — see
/// [`crate::session::Checkpoint::warm`]). Unlike [`SavedModel`], this is
/// *optimizer* state, not just a predictor: it is what lets round `k+1`
/// continue training where round `k` stopped instead of refitting from
/// scratch on the whole labeled pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "family", content = "warm")]
pub enum WarmState {
    /// Pegasos SVM continuation: the optimizer state plus how much of the
    /// labeled pool has already been consumed by warm updates.
    Svm {
        /// Resumable Pegasos state (weights, bias, step count).
        state: SvmWarmState,
        /// Labeled examples already absorbed into `state`; the next warm
        /// fit trains on `labeled[seen..]` plus a small replay sample.
        seen: usize,
        /// Warm rounds completed since the last cold fit.
        rounds: u64,
    },
    /// Forest partial refresh: the full current forest plus the rotation
    /// counter driving deterministic member selection.
    Forest {
        /// The current committee, including non-refreshed trees.
        model: RandomForest,
        /// Warm (partial-refresh) rounds completed since the cold fit.
        rounds: u64,
    },
}

impl WarmState {
    /// Warm rounds completed since the last cold fit, whichever family.
    pub fn rounds(&self) -> u64 {
        match self {
            WarmState::Svm { rounds, .. } | WarmState::Forest { rounds, .. } => *rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::data::TrainSet;
    use mlcore::forest::ForestConfig;
    use mlcore::rules::{Conjunction, DnfConfig};
    use mlcore::svm::SvmConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let ys: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        (xs, ys)
    }

    fn roundtrip(m: &SavedModel) -> SavedModel {
        let js = serde_json::to_string(m).expect("serialize");
        serde_json::from_str(&js).expect("deserialize")
    }

    #[test]
    fn svm_roundtrips_with_identical_predictions() {
        let (xs, ys) = data();
        let set = TrainSet::new(&xs, &ys);
        let svm = SvmConfig::default().train(&set, &mut StdRng::seed_from_u64(1));
        let saved = SavedModel::Svm(svm.clone());
        let loaded = roundtrip(&saved);
        assert_eq!(loaded.kind(), "svm");
        for x in &xs {
            assert_eq!(loaded.predict(x), svm.predict(x));
        }
    }

    #[test]
    fn forest_roundtrips() {
        let (xs, ys) = data();
        let set = TrainSet::new(&xs, &ys);
        let f = ForestConfig::with_trees(5).train(&set, &mut StdRng::seed_from_u64(1));
        let loaded = roundtrip(&SavedModel::Forest(f.clone()));
        for x in &xs {
            assert_eq!(loaded.predict(x), f.predict(x));
        }
    }

    #[test]
    fn rules_roundtrip_and_want_bool_features() {
        let dnf = DnfConfig::default();
        let bx: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(u8::from(i >= 10))])
            .collect();
        let by: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let model = dnf.train(&TrainSet::new(&bx, &by));
        let loaded = roundtrip(&SavedModel::Rules(model.clone()));
        assert!(loaded.wants_bool_features());
        assert_eq!(loaded.predict(&[1.0]), model.predict(&[1.0]));
    }

    #[test]
    fn ensemble_union_semantics_survive() {
        let a = LinearSvm::from_parts(vec![4.0, 0.0], -2.0);
        let b = LinearSvm::from_parts(vec![0.0, 4.0], -2.0);
        let loaded = roundtrip(&SavedModel::SvmEnsemble(vec![a, b]));
        assert!(loaded.predict(&[1.0, 0.0]));
        assert!(loaded.predict(&[0.0, 1.0]));
        assert!(!loaded.predict(&[0.0, 0.0]));
    }

    #[test]
    fn warm_state_roundtrips_and_reports_rounds() {
        let s = WarmState::Svm {
            state: SvmWarmState {
                weights: vec![0.25, -1.5],
                bias: 0.75,
                t: 4200,
            },
            seen: 60,
            rounds: 7,
        };
        let js = serde_json::to_string(&s).expect("serialize");
        assert!(js.contains("\"family\":\"Svm\""), "{js}");
        let back: WarmState = serde_json::from_str(&js).expect("deserialize");
        assert_eq!(back, s);
        assert_eq!(back.rounds(), 7);

        let (xs, ys) = data();
        let set = TrainSet::new(&xs, &ys);
        let f = ForestConfig::with_trees(3).train(&set, &mut StdRng::seed_from_u64(1));
        let w = WarmState::Forest {
            model: f,
            rounds: 2,
        };
        let back: WarmState =
            serde_json::from_str(&serde_json::to_string(&w).unwrap()).expect("deserialize");
        assert_eq!(back, w);
        assert_eq!(back.rounds(), 2);
    }

    #[test]
    fn tagged_json_format_is_stable() {
        let m = SavedModel::Rules(mlcore::rules::Dnf::new(vec![Conjunction::new(vec![3])]));
        let js = serde_json::to_string(&m).unwrap();
        assert!(js.contains("\"kind\":\"Rules\""), "{js}");
    }
}
