//! Oracles: the labeling authority queried by the example selector.
//!
//! A perfect Oracle returns the ground-truth label. The noisy Oracle of
//! §6.2 models crowd-sourcing: whenever queried it flips the true label
//! with a fixed probability ("we always perturb the original label whenever
//! the imperfect Oracle generates a random probability that falls within
//! the noise percentage threshold" — i.e. a fresh Bernoulli per query, with
//! no majority-vote correction).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where an Oracle's authoritative answers come from.
enum Source {
    /// Stored ground truth (benchmarks).
    Truth(Vec<bool>),
    /// A callback answering per example (interactive/human labeling).
    Callback {
        /// Number of labelable examples.
        n: usize,
        /// The labeler.
        f: Box<dyn Fn(usize) -> bool + Send + Sync>,
    },
}

impl Source {
    fn answer(&self, i: usize) -> bool {
        match self {
            Source::Truth(t) => t[i],
            Source::Callback { f, .. } => f(i),
        }
    }

    fn len(&self) -> usize {
        match self {
            Source::Truth(t) => t.len(),
            Source::Callback { n, .. } => *n,
        }
    }
}

/// A labeling Oracle over a corpus's example indices.
pub struct Oracle {
    source: Source,
    noise: f64,
    /// Independent noisy votes per query; the majority wins. 1 = the
    /// paper's harsh no-correction setting.
    votes: usize,
    rng: Mutex<StdRng>,
    queries: Mutex<u64>,
}

impl Oracle {
    /// A perfect Oracle that always answers the ground truth.
    pub fn perfect(truth: Vec<bool>) -> Self {
        Oracle {
            source: Source::Truth(truth),
            noise: 0.0,
            votes: 1,
            rng: Mutex::new(StdRng::seed_from_u64(0)),
            queries: Mutex::new(0),
        }
    }

    /// A noisy Oracle flipping each answer independently with probability
    /// `noise` (0.10–0.40 in the paper's sweeps), seeded for
    /// reproducibility.
    pub fn noisy(truth: Vec<bool>, noise: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be a probability");
        Oracle {
            source: Source::Truth(truth),
            noise,
            votes: 1,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            queries: Mutex::new(0),
        }
    }

    /// Crowd-style error correction the paper deliberately leaves out
    /// (§6.2: real deployments "regulate the noisy labels using techniques
    /// such as majority voting"): each query draws `votes` independent
    /// noisy answers and returns the majority. Each vote counts as one
    /// Oracle query (crowd answers are paid per vote). `votes` must be
    /// odd so the majority is decisive.
    pub fn noisy_with_voting(truth: Vec<bool>, noise: f64, votes: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be a probability");
        assert!(votes >= 1 && votes % 2 == 1, "votes must be odd and positive");
        Oracle {
            source: Source::Truth(truth),
            noise,
            votes,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            queries: Mutex::new(0),
        }
    }

    /// The configured noise probability.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Votes drawn per query (1 unless majority voting is enabled).
    pub fn votes(&self) -> usize {
        self.votes
    }

    /// An Oracle backed by a labeling callback over `n` examples — e.g.
    /// a human answering y/n in a terminal. Noise-free; each call counts
    /// as one query.
    pub fn from_fn<F: Fn(usize) -> bool + Send + Sync + 'static>(n: usize, f: F) -> Self {
        Oracle {
            source: Source::Callback { n, f: Box::new(f) },
            noise: 0.0,
            votes: 1,
            rng: Mutex::new(StdRng::seed_from_u64(0)),
            queries: Mutex::new(0),
        }
    }

    /// Ask for the label of example `i`.
    pub fn label(&self, i: usize) -> bool {
        *self.queries.lock() += self.votes as u64;
        let truth = self.source.answer(i);
        if self.noise == 0.0 {
            return truth;
        }
        let mut rng = self.rng.lock();
        let positive_votes = (0..self.votes)
            .filter(|_| {
                let flipped = rng.gen::<f64>() < self.noise;
                truth != flipped
            })
            .count();
        2 * positive_votes > self.votes
    }

    /// Number of labels asked so far — the paper's #labels metric counts
    /// every Oracle query including the initial seed.
    pub fn queries(&self) -> u64 {
        *self.queries.lock()
    }

    /// Number of examples the Oracle can label.
    pub fn universe(&self) -> usize {
        self.source.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_oracle_is_truth() {
        let o = Oracle::perfect(vec![true, false, true]);
        assert!(o.label(0));
        assert!(!o.label(1));
        assert!(o.label(2));
        assert_eq!(o.queries(), 3);
    }

    #[test]
    fn noisy_oracle_flips_at_rate() {
        let n = 20_000;
        let o = Oracle::noisy(vec![true; n], 0.3, 99);
        let flips = (0..n).filter(|&i| !o.label(i)).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed flip rate {rate}");
    }

    #[test]
    fn zero_noise_never_flips() {
        let o = Oracle::noisy(vec![false; 100], 0.0, 1);
        assert!((0..100).all(|i| !o.label(i)));
    }

    #[test]
    fn full_noise_always_flips() {
        let o = Oracle::noisy(vec![false; 100], 1.0, 1);
        assert!((0..100).all(|i| o.label(i)));
    }

    #[test]
    fn repeat_queries_redraw_noise() {
        // Asking about the same example twice can give different answers —
        // the paper's harsh crowdsourcing criterion.
        let o = Oracle::noisy(vec![true; 1], 0.5, 7);
        let answers: Vec<bool> = (0..100).map(|_| o.label(0)).collect();
        assert!(answers.iter().any(|&a| a));
        assert!(answers.iter().any(|&a| !a));
    }

    #[test]
    fn majority_voting_suppresses_noise() {
        let n = 5000;
        // 30% noise, 5 votes: error rate = P(≥3 of 5 flips) ≈ 0.163.
        let o = Oracle::noisy_with_voting(vec![true; n], 0.3, 5, 42);
        let wrong = (0..n).filter(|&i| !o.label(i)).count();
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.163).abs() < 0.03, "voting error rate {rate}");
        // Every query costs 5 crowd votes.
        assert_eq!(o.queries(), 5 * n as u64);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn voting_rejects_even_committees() {
        Oracle::noisy_with_voting(vec![true], 0.2, 4, 1);
    }

    #[test]
    fn callback_oracle_counts_queries() {
        let o = Oracle::from_fn(10, |i| i % 2 == 0);
        assert!(o.label(0));
        assert!(!o.label(1));
        assert_eq!(o.queries(), 2);
        assert_eq!(o.universe(), 10);
    }

    #[test]
    fn seeded_oracles_reproduce() {
        let a = Oracle::noisy(vec![true; 50], 0.4, 123);
        let b = Oracle::noisy(vec![true; 50], 0.4, 123);
        let va: Vec<bool> = (0..50).map(|i| a.label(i)).collect();
        let vb: Vec<bool> = (0..50).map(|i| b.label(i)).collect();
        assert_eq!(va, vb);
    }
}
