//! Oracles: the labeling authority queried by the example selector.
//!
//! A perfect Oracle returns the ground-truth label. The noisy Oracle of
//! §6.2 models crowd-sourcing: whenever queried it flips the true label
//! with a fixed probability ("we always perturb the original label whenever
//! the imperfect Oracle generates a random probability that falls within
//! the noise percentage threshold" — i.e. a fresh Bernoulli per query, with
//! no majority-vote correction).
//!
//! On top of the base [`Oracle`] this module provides the fault-injection
//! harness used by the robustness benchmarks: the [`QueryOracle`] trait
//! (fallible labeling), decorators that inject transient failures
//! ([`TransientOracle`]), abstentions ([`AbstainingOracle`]), and latency
//! ([`LatencyOracle`]), and the [`RetryPolicy`] the session layer uses to
//! ride out transient failures with exponential backoff.

use crate::error::AlemError;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Where an Oracle's authoritative answers come from.
enum Source {
    /// Stored ground truth (benchmarks).
    Truth(Vec<bool>),
    /// A callback answering per example (interactive/human labeling).
    Callback {
        /// Number of labelable examples.
        n: usize,
        /// The labeler.
        f: Box<dyn Fn(usize) -> bool + Send + Sync>,
    },
}

impl Source {
    fn answer(&self, i: usize) -> bool {
        match self {
            Source::Truth(t) => t[i],
            Source::Callback { f, .. } => f(i),
        }
    }

    fn len(&self) -> usize {
        match self {
            Source::Truth(t) => t.len(),
            Source::Callback { n, .. } => *n,
        }
    }
}

/// One answer from a fallible Oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleAnswer {
    /// A definitive (possibly noisy) label.
    Label(bool),
    /// The Oracle declined to answer; the example stays unlabeled and may
    /// be selected again later.
    Abstain,
}

/// A labeling authority that can fail. The base [`Oracle`] never fails;
/// the fault-injection decorators wrap any `QueryOracle` to simulate
/// crowd workers going offline, abstaining, or answering slowly.
pub trait QueryOracle: Send + Sync {
    /// Ask for the label of example `i`. `Err(OracleUnavailable)` models a
    /// transient outage the caller may retry; `Ok(Abstain)` is a definitive
    /// "no answer" for this query.
    fn try_label(&self, i: usize) -> Result<OracleAnswer, AlemError>;

    /// Number of labels asked so far (every vote counts, see
    /// [`Oracle::queries`]).
    fn queries(&self) -> u64;

    /// Number of examples the Oracle can label.
    fn universe(&self) -> usize;

    /// Replay the Oracle to the state it had after answering `n` queries —
    /// used when resuming a checkpointed session so the noise stream
    /// continues exactly where the interrupted run left off.
    fn fast_forward(&self, n: u64);
}

/// A labeling Oracle over a corpus's example indices.
pub struct Oracle {
    source: Source,
    noise: f64,
    /// Independent noisy votes per query; the majority wins. 1 = the
    /// paper's harsh no-correction setting.
    votes: usize,
    rng: Mutex<StdRng>,
    queries: Mutex<u64>,
}

impl Oracle {
    /// A perfect Oracle that always answers the ground truth.
    pub fn perfect(truth: Vec<bool>) -> Self {
        Oracle {
            source: Source::Truth(truth),
            noise: 0.0,
            votes: 1,
            rng: Mutex::new(StdRng::seed_from_u64(0)),
            queries: Mutex::new(0),
        }
    }

    /// A noisy Oracle flipping each answer independently with probability
    /// `noise` (0.10–0.40 in the paper's sweeps), seeded for
    /// reproducibility. Rejects `noise` outside `[0, 1]`.
    pub fn noisy(truth: Vec<bool>, noise: f64, seed: u64) -> Result<Self, AlemError> {
        if !(0.0..=1.0).contains(&noise) {
            return Err(AlemError::InvalidConfig(format!(
                "oracle noise must be a probability in [0, 1], got {noise}"
            )));
        }
        Ok(Oracle {
            source: Source::Truth(truth),
            noise,
            votes: 1,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            queries: Mutex::new(0),
        })
    }

    /// Crowd-style error correction the paper deliberately leaves out
    /// (§6.2: real deployments "regulate the noisy labels using techniques
    /// such as majority voting"): each query draws `votes` independent
    /// noisy answers and returns the majority. Each vote counts as one
    /// Oracle query (crowd answers are paid per vote). Rejects `noise`
    /// outside `[0, 1]` and even or zero `votes` (the majority must be
    /// decisive).
    pub fn noisy_with_voting(
        truth: Vec<bool>,
        noise: f64,
        votes: usize,
        seed: u64,
    ) -> Result<Self, AlemError> {
        if !(0.0..=1.0).contains(&noise) {
            return Err(AlemError::InvalidConfig(format!(
                "oracle noise must be a probability in [0, 1], got {noise}"
            )));
        }
        if votes == 0 || votes.is_multiple_of(2) {
            return Err(AlemError::InvalidConfig(format!(
                "votes must be odd and positive, got {votes}"
            )));
        }
        Ok(Oracle {
            source: Source::Truth(truth),
            noise,
            votes,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            queries: Mutex::new(0),
        })
    }

    /// The configured noise probability.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Votes drawn per query (1 unless majority voting is enabled).
    pub fn votes(&self) -> usize {
        self.votes
    }

    /// An Oracle backed by a labeling callback over `n` examples — e.g.
    /// a human answering y/n in a terminal. Noise-free; each call counts
    /// as one query.
    pub fn from_fn<F: Fn(usize) -> bool + Send + Sync + 'static>(n: usize, f: F) -> Self {
        Oracle {
            source: Source::Callback { n, f: Box::new(f) },
            noise: 0.0,
            votes: 1,
            rng: Mutex::new(StdRng::seed_from_u64(0)),
            queries: Mutex::new(0),
        }
    }

    /// Ask for the label of example `i`.
    pub fn label(&self, i: usize) -> bool {
        *self.queries.lock() += self.votes as u64;
        let truth = self.source.answer(i);
        if self.noise == 0.0 {
            return truth;
        }
        let mut rng = self.rng.lock();
        let positive_votes = (0..self.votes)
            .filter(|_| {
                let flipped = rng.gen::<f64>() < self.noise;
                truth != flipped
            })
            .count();
        2 * positive_votes > self.votes
    }

    /// Number of labels asked so far — the paper's #labels metric counts
    /// every Oracle query including the initial seed.
    pub fn queries(&self) -> u64 {
        *self.queries.lock()
    }

    /// Number of examples the Oracle can label.
    pub fn universe(&self) -> usize {
        self.source.len()
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field(
                "source",
                &match &self.source {
                    Source::Truth(t) => format!("Truth({} examples)", t.len()),
                    Source::Callback { n, .. } => format!("Callback({n} examples)"),
                },
            )
            .field("noise", &self.noise)
            .field("votes", &self.votes)
            .field("queries", &*self.queries.lock())
            .finish()
    }
}

impl QueryOracle for Oracle {
    fn try_label(&self, i: usize) -> Result<OracleAnswer, AlemError> {
        Ok(OracleAnswer::Label(self.label(i)))
    }

    fn queries(&self) -> u64 {
        Oracle::queries(self)
    }

    fn universe(&self) -> usize {
        Oracle::universe(self)
    }

    fn fast_forward(&self, n: u64) {
        // Each counted query consumes exactly one noise draw (when noise is
        // on), so replaying `n` draws reproduces the post-`n`-queries RNG
        // state exactly.
        *self.queries.lock() = n;
        if self.noise > 0.0 {
            let mut rng = self.rng.lock();
            for _ in 0..n {
                let _ = rng.gen::<f64>();
            }
        }
    }
}

impl<O: QueryOracle + ?Sized> QueryOracle for &O {
    fn try_label(&self, i: usize) -> Result<OracleAnswer, AlemError> {
        (**self).try_label(i)
    }

    fn queries(&self) -> u64 {
        (**self).queries()
    }

    fn universe(&self) -> usize {
        (**self).universe()
    }

    fn fast_forward(&self, n: u64) {
        (**self).fast_forward(n)
    }
}

/// Decorator injecting transient failures: each query independently fails
/// with `failure_rate` before reaching the inner Oracle (a crowd platform
/// timing out, a worker dropping the task). Failed queries cost nothing and
/// are retryable; the session's [`RetryPolicy`] decides how hard to try.
pub struct TransientOracle<O: QueryOracle> {
    inner: O,
    failure_rate: f64,
    rng: Mutex<StdRng>,
    /// Scripted consecutive failures injected before random ones (tests).
    fail_burst: Mutex<u32>,
    failures: Mutex<u64>,
}

impl<O: QueryOracle> TransientOracle<O> {
    /// Wrap `inner` so each query fails independently with probability
    /// `failure_rate`, seeded for reproducibility.
    pub fn new(inner: O, failure_rate: f64, seed: u64) -> Result<Self, AlemError> {
        if !(0.0..=1.0).contains(&failure_rate) {
            return Err(AlemError::InvalidConfig(format!(
                "transient failure rate must be a probability in [0, 1], got {failure_rate}"
            )));
        }
        Ok(TransientOracle {
            inner,
            failure_rate,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            fail_burst: Mutex::new(0),
            failures: Mutex::new(0),
        })
    }

    /// Script the next `k` queries to fail unconditionally (before random
    /// failures resume) — lets tests pin down exact consecutive-failure
    /// scenarios.
    pub fn script_failures(&self, k: u32) {
        *self.fail_burst.lock() = k;
    }

    /// Total failures injected so far.
    pub fn failures(&self) -> u64 {
        *self.failures.lock()
    }
}

impl<O: QueryOracle> QueryOracle for TransientOracle<O> {
    fn try_label(&self, i: usize) -> Result<OracleAnswer, AlemError> {
        {
            let mut burst = self.fail_burst.lock();
            if *burst > 0 {
                *burst -= 1;
                *self.failures.lock() += 1;
                return Err(AlemError::OracleUnavailable {
                    example: i,
                    attempts: 1,
                    reason: "transient failure (scripted)".into(),
                });
            }
        }
        if self.failure_rate > 0.0 && self.rng.lock().gen_bool(self.failure_rate) {
            *self.failures.lock() += 1;
            return Err(AlemError::OracleUnavailable {
                example: i,
                attempts: 1,
                reason: "transient failure".into(),
            });
        }
        self.inner.try_label(i)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn universe(&self) -> usize {
        self.inner.universe()
    }

    fn fast_forward(&self, n: u64) {
        // Only the inner Oracle's draw count is tied to the query count;
        // the decorator's failure stream depends on how many attempts the
        // interrupted run made, which is not checkpointed. Resumed runs
        // continue with a fresh failure stream (documented in DESIGN.md).
        self.inner.fast_forward(n)
    }
}

/// Decorator injecting abstentions: each query independently returns
/// [`OracleAnswer::Abstain`] with `abstain_rate` (a human labeler answering
/// "can't tell"). Abstained examples stay unlabeled and re-selectable.
pub struct AbstainingOracle<O: QueryOracle> {
    inner: O,
    abstain_rate: f64,
    rng: Mutex<StdRng>,
    abstentions: Mutex<u64>,
}

impl<O: QueryOracle> AbstainingOracle<O> {
    /// Wrap `inner` so each query abstains independently with probability
    /// `abstain_rate`, seeded for reproducibility.
    pub fn new(inner: O, abstain_rate: f64, seed: u64) -> Result<Self, AlemError> {
        if !(0.0..=1.0).contains(&abstain_rate) {
            return Err(AlemError::InvalidConfig(format!(
                "abstain rate must be a probability in [0, 1], got {abstain_rate}"
            )));
        }
        Ok(AbstainingOracle {
            inner,
            abstain_rate,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            abstentions: Mutex::new(0),
        })
    }

    /// Total abstentions so far.
    pub fn abstentions(&self) -> u64 {
        *self.abstentions.lock()
    }
}

impl<O: QueryOracle> QueryOracle for AbstainingOracle<O> {
    fn try_label(&self, i: usize) -> Result<OracleAnswer, AlemError> {
        if self.abstain_rate > 0.0 && self.rng.lock().gen_bool(self.abstain_rate) {
            *self.abstentions.lock() += 1;
            return Ok(OracleAnswer::Abstain);
        }
        self.inner.try_label(i)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn universe(&self) -> usize {
        self.inner.universe()
    }

    fn fast_forward(&self, n: u64) {
        self.inner.fast_forward(n)
    }
}

/// Decorator modeling a slow labeling channel with a per-query timeout:
/// each query takes `latency`; if that exceeds `timeout` the query fails
/// with [`AlemError::OracleUnavailable`] (without actually sleeping past
/// the deadline).
pub struct LatencyOracle<O: QueryOracle> {
    inner: O,
    latency: Duration,
    timeout: Duration,
}

impl<O: QueryOracle> LatencyOracle<O> {
    /// Wrap `inner` with a fixed per-query `latency` and a `timeout` above
    /// which queries fail instead of answering.
    pub fn new(inner: O, latency: Duration, timeout: Duration) -> Self {
        LatencyOracle {
            inner,
            latency,
            timeout,
        }
    }
}

impl<O: QueryOracle> QueryOracle for LatencyOracle<O> {
    fn try_label(&self, i: usize) -> Result<OracleAnswer, AlemError> {
        if self.latency > self.timeout {
            return Err(AlemError::OracleUnavailable {
                example: i,
                attempts: 1,
                reason: format!(
                    "timed out after {:.1?} (latency {:.1?})",
                    self.timeout, self.latency
                ),
            });
        }
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.inner.try_label(i)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn universe(&self) -> usize {
        self.inner.universe()
    }

    fn fast_forward(&self, n: u64) {
        self.inner.fast_forward(n)
    }
}

/// Exponential-backoff retry policy for transient Oracle failures. Only
/// [`AlemError::OracleUnavailable`] is retried; every other error (and
/// abstentions, which are definitive answers) passes straight through.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Multiplier applied to the delay after each failed retry.
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Delays are kept small because benchmark sweeps make thousands of
        // queries; production deployments should raise base_delay/max_delay
        // to match their labeling channel.
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            multiplier: 2.0,
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first failure is final).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff delay before retry number `retry` (1-based): `base_delay *
    /// multiplier^(retry-1)`, capped at `max_delay`.
    pub fn delay_for(&self, retry: u32) -> Duration {
        let factor = self.multiplier.powi(retry.saturating_sub(1) as i32);
        let delay = self.base_delay.mul_f64(factor.max(0.0));
        delay.min(self.max_delay)
    }

    /// Query `oracle` for example `i`, retrying transient failures with
    /// exponential backoff up to `max_attempts` total attempts. The final
    /// error reports the true attempt count.
    pub fn query(&self, oracle: &dyn QueryOracle, i: usize) -> Result<OracleAnswer, AlemError> {
        self.query_observed(oracle, i, &alem_obs::Registry::disabled())
    }

    /// Like [`RetryPolicy::query`], recording telemetry counters into
    /// `obs`: `oracle.labels`, `oracle.abstentions`, `oracle.retries`
    /// (attempts after the first), and `oracle.failures` (injected or real
    /// transient faults observed, whether or not a retry recovered them).
    pub fn query_observed(
        &self,
        oracle: &dyn QueryOracle,
        i: usize,
        obs: &alem_obs::Registry,
    ) -> Result<OracleAnswer, AlemError> {
        let attempts_allowed = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if attempt > 1 {
                obs.counter_add("oracle.retries", 1);
            }
            match oracle.try_label(i) {
                Ok(answer) => {
                    match answer {
                        OracleAnswer::Label(_) => obs.counter_add("oracle.labels", 1),
                        OracleAnswer::Abstain => obs.counter_add("oracle.abstentions", 1),
                    }
                    return Ok(answer);
                }
                Err(AlemError::OracleUnavailable { reason, .. }) => {
                    obs.counter_add("oracle.failures", 1);
                    if attempt >= attempts_allowed {
                        return Err(AlemError::OracleUnavailable {
                            example: i,
                            attempts: attempt,
                            reason,
                        });
                    }
                    std::thread::sleep(self.delay_for(attempt));
                }
                Err(other) => return Err(other),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Asynchronous answering
// ---------------------------------------------------------------------------

/// An order-invariant answer function: the label for example `i` is a pure
/// function of `(key_seed, i, truth)`, derived by hashing instead of a
/// sequential RNG stream.
///
/// The sequential fault decorators ([`TransientOracle`],
/// [`AbstainingOracle`]) draw from one RNG stream, so their behavior
/// depends on *query order* — correct for benchmarking a blocking loop,
/// useless for a service where answers arrive late, duplicated, or out of
/// order. `AnswerKey` makes the answer for an example stable across
/// re-asks, replays, and process restarts: exactly the property the
/// `serve-load` chaos harness needs to assert that a kill-and-restart run
/// reproduces the fault-free fingerprint bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct AnswerKey {
    seed: u64,
    noise: f64,
    abstain_rate: f64,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl AnswerKey {
    /// A key answering with `noise` probability of a flipped label and
    /// `abstain_rate` probability of abstaining (decided per example, not
    /// per query). Rates outside `[0, 1]` are rejected.
    pub fn new(seed: u64, noise: f64, abstain_rate: f64) -> Result<Self, AlemError> {
        for (name, rate) in [("noise", noise), ("abstain_rate", abstain_rate)] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(AlemError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {rate}"
                )));
            }
        }
        Ok(AnswerKey {
            seed,
            noise,
            abstain_rate,
        })
    }

    /// A noiseless, never-abstaining key (still useful as a stable
    /// identity for a labeler).
    pub fn perfect(seed: u64) -> Self {
        AnswerKey {
            seed,
            noise: 0.0,
            abstain_rate: 0.0,
        }
    }

    /// Uniform value in `[0, 1)` for (key, example, concern-salt).
    fn unit(&self, example: usize, salt: u64) -> f64 {
        let h = mix64(self.seed ^ mix64(example as u64 ^ salt));
        // 53 high bits → f64 in [0, 1), the standard conversion.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The answer for `example` whose ground truth is `truth`. Calling
    /// this twice (or on a different machine, or after a restart) gives
    /// the same answer.
    pub fn answer(&self, example: usize, truth: bool) -> OracleAnswer {
        if self.unit(example, 0x0a11_ab5e) < self.abstain_rate {
            return OracleAnswer::Abstain;
        }
        let flip = self.unit(example, 0x0f11_99ed) < self.noise;
        OracleAnswer::Label(truth ^ flip)
    }
}

/// Adapter that decouples *requesting* a label from *consuming* it,
/// turning any blocking [`QueryOracle`] into an asynchronous answer
/// source for a [`crate::session::SessionMachine`].
///
/// [`AsyncAnswerer::request`] resolves the inner oracle immediately (with
/// the adapter's [`RetryPolicy`]) and buffers the `(example, answer)`
/// pair; [`AsyncAnswerer::take`] drains buffered answers in an arbitrary,
/// caller-controlled order. Because the machine applies a batch wave only
/// once complete — keyed by example, not arrival — the buffer may be
/// drained out of order, partially, or with duplicates without affecting
/// the run's fingerprint.
pub struct AsyncAnswerer<O: QueryOracle> {
    inner: O,
    retry: RetryPolicy,
    ready: Mutex<Vec<(usize, OracleAnswer)>>,
}

impl<O: QueryOracle> AsyncAnswerer<O> {
    /// Wrap `inner`, answering requests through `retry`.
    pub fn new(inner: O, retry: RetryPolicy) -> Self {
        AsyncAnswerer {
            inner,
            retry,
            ready: Mutex::new(Vec::new()),
        }
    }

    /// Resolve the label for `example` now and buffer it for later
    /// consumption. Errors if the inner oracle stays unavailable past the
    /// retry budget.
    pub fn request(&self, example: usize) -> Result<(), AlemError> {
        let answer = self.retry.query(&self.inner, example)?;
        self.ready.lock().push((example, answer));
        Ok(())
    }

    /// Pop one buffered answer, newest first (LIFO — deliberately *not*
    /// request order, so default consumption already exercises the
    /// machine's order invariance). `None` when the buffer is empty.
    pub fn take(&self) -> Option<(usize, OracleAnswer)> {
        self.ready.lock().pop()
    }

    /// Buffered answers not yet taken.
    pub fn ready_len(&self) -> usize {
        self.ready.lock().len()
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_oracle_is_truth() {
        let o = Oracle::perfect(vec![true, false, true]);
        assert!(o.label(0));
        assert!(!o.label(1));
        assert!(o.label(2));
        assert_eq!(o.queries(), 3);
    }

    #[test]
    fn noisy_oracle_flips_at_rate() {
        let n = 20_000;
        let o = Oracle::noisy(vec![true; n], 0.3, 99).unwrap();
        let flips = (0..n).filter(|&i| !o.label(i)).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed flip rate {rate}");
    }

    #[test]
    fn zero_noise_never_flips() {
        let o = Oracle::noisy(vec![false; 100], 0.0, 1).unwrap();
        assert!((0..100).all(|i| !o.label(i)));
    }

    #[test]
    fn full_noise_always_flips() {
        let o = Oracle::noisy(vec![false; 100], 1.0, 1).unwrap();
        assert!((0..100).all(|i| o.label(i)));
    }

    #[test]
    fn repeat_queries_redraw_noise() {
        // Asking about the same example twice can give different answers —
        // the paper's harsh crowdsourcing criterion.
        let o = Oracle::noisy(vec![true; 1], 0.5, 7).unwrap();
        let answers: Vec<bool> = (0..100).map(|_| o.label(0)).collect();
        assert!(answers.iter().any(|&a| a));
        assert!(answers.iter().any(|&a| !a));
    }

    #[test]
    fn majority_voting_suppresses_noise() {
        let n = 5000;
        // 30% noise, 5 votes: error rate = P(≥3 of 5 flips) ≈ 0.163.
        let o = Oracle::noisy_with_voting(vec![true; n], 0.3, 5, 42).unwrap();
        let wrong = (0..n).filter(|&i| !o.label(i)).count();
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.163).abs() < 0.03, "voting error rate {rate}");
        // Every query costs 5 crowd votes.
        assert_eq!(o.queries(), 5 * n as u64);
    }

    #[test]
    fn voting_rejects_even_committees() {
        let err = Oracle::noisy_with_voting(vec![true], 0.2, 4, 1).unwrap_err();
        assert!(matches!(err, AlemError::InvalidConfig(ref m) if m.contains("odd")));
        let err = Oracle::noisy_with_voting(vec![true], 0.2, 0, 1).unwrap_err();
        assert!(matches!(err, AlemError::InvalidConfig(_)));
    }

    #[test]
    fn noise_out_of_range_is_rejected() {
        assert!(matches!(
            Oracle::noisy(vec![true], 1.5, 1),
            Err(AlemError::InvalidConfig(_))
        ));
        assert!(matches!(
            Oracle::noisy(vec![true], -0.1, 1),
            Err(AlemError::InvalidConfig(_))
        ));
        assert!(matches!(
            Oracle::noisy_with_voting(vec![true], 2.0, 3, 1),
            Err(AlemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn callback_oracle_counts_queries() {
        let o = Oracle::from_fn(10, |i| i % 2 == 0);
        assert!(o.label(0));
        assert!(!o.label(1));
        assert_eq!(o.queries(), 2);
        assert_eq!(o.universe(), 10);
    }

    #[test]
    fn seeded_oracles_reproduce() {
        let a = Oracle::noisy(vec![true; 50], 0.4, 123).unwrap();
        let b = Oracle::noisy(vec![true; 50], 0.4, 123).unwrap();
        let va: Vec<bool> = (0..50).map(|i| a.label(i)).collect();
        let vb: Vec<bool> = (0..50).map(|i| b.label(i)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn fast_forward_reproduces_noise_stream() {
        let n = 200;
        let reference = Oracle::noisy(vec![true; n], 0.4, 77).unwrap();
        let answers: Vec<bool> = (0..n).map(|i| reference.label(i)).collect();

        // A fresh Oracle fast-forwarded past the first half must produce
        // the reference's second half exactly.
        let resumed = Oracle::noisy(vec![true; n], 0.4, 77).unwrap();
        resumed.fast_forward(100);
        assert_eq!(QueryOracle::queries(&resumed), 100);
        let tail: Vec<bool> = (100..n).map(|i| resumed.label(i)).collect();
        assert_eq!(tail, answers[100..]);
    }

    #[test]
    fn transient_oracle_fails_at_rate() {
        let inner = Oracle::perfect(vec![true; 10_000]);
        let o = TransientOracle::new(inner, 0.2, 5).unwrap();
        let failures = (0..10_000).filter(|&i| o.try_label(i).is_err()).count();
        let rate = failures as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "failure rate {rate}");
        assert_eq!(o.failures(), failures as u64);
        // Failed queries never reached (or billed) the inner Oracle.
        assert_eq!(o.queries(), (10_000 - failures) as u64);
    }

    #[test]
    fn transient_oracle_rejects_bad_rate() {
        let inner = Oracle::perfect(vec![true]);
        assert!(matches!(
            TransientOracle::new(inner, 1.2, 0),
            Err(AlemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn retry_recovers_from_consecutive_failures() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_micros(10),
            multiplier: 2.0,
            max_delay: Duration::from_micros(100),
        };

        // 4 consecutive failures, 5 attempts allowed: recovery.
        let o = TransientOracle::new(Oracle::perfect(vec![true]), 0.0, 0).unwrap();
        o.script_failures(4);
        assert_eq!(policy.query(&o, 0).unwrap(), OracleAnswer::Label(true));
        assert_eq!(o.failures(), 4);

        // 5 consecutive failures exhaust the policy with the attempt count.
        o.script_failures(5);
        match policy.query(&o, 0) {
            Err(AlemError::OracleUnavailable {
                attempts, example, ..
            }) => {
                assert_eq!(attempts, 5);
                assert_eq!(example, 0);
            }
            other => panic!("expected OracleUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn retry_policy_backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(p.delay_for(1), Duration::from_millis(10));
        assert_eq!(p.delay_for(2), Duration::from_millis(20));
        assert_eq!(p.delay_for(3), Duration::from_millis(35)); // capped (40 → 35)
        assert_eq!(p.delay_for(4), Duration::from_millis(35));
    }

    #[test]
    fn abstaining_oracle_abstains_at_rate() {
        let inner = Oracle::perfect(vec![true; 10_000]);
        let o = AbstainingOracle::new(inner, 0.3, 9).unwrap();
        let abstained = (0..10_000)
            .filter(|&i| o.try_label(i) == Ok(OracleAnswer::Abstain))
            .count();
        let rate = abstained as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "abstain rate {rate}");
        assert_eq!(o.abstentions(), abstained as u64);
    }

    #[test]
    fn latency_oracle_times_out() {
        let slow = LatencyOracle::new(
            Oracle::perfect(vec![true]),
            Duration::from_secs(3),
            Duration::from_millis(1),
        );
        match slow.try_label(0) {
            Err(AlemError::OracleUnavailable { reason, .. }) => {
                assert!(reason.contains("timed out"), "reason: {reason}");
            }
            other => panic!("expected timeout, got {other:?}"),
        }

        let fast = LatencyOracle::new(
            Oracle::perfect(vec![true]),
            Duration::from_micros(50),
            Duration::from_secs(1),
        );
        assert_eq!(fast.try_label(0).unwrap(), OracleAnswer::Label(true));
    }

    #[test]
    fn decorators_stack() {
        // Transient failures over abstentions over a noisy base.
        let base = Oracle::noisy(vec![true; 1000], 0.1, 3).unwrap();
        let abstaining = AbstainingOracle::new(base, 0.1, 4).unwrap();
        let o = TransientOracle::new(abstaining, 0.1, 5).unwrap();
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_micros(1),
            multiplier: 1.0,
            max_delay: Duration::from_micros(1),
        };
        let mut labels = 0;
        let mut abstains = 0;
        for i in 0..1000 {
            match policy.query(&o, i).unwrap() {
                OracleAnswer::Label(_) => labels += 1,
                OracleAnswer::Abstain => abstains += 1,
            }
        }
        assert_eq!(labels + abstains, 1000);
        assert!(abstains > 50, "abstains {abstains}");
        assert!(o.failures() > 50, "failures {}", o.failures());
    }

    #[test]
    fn answer_key_is_order_invariant_and_replayable() {
        let key = AnswerKey::new(99, 0.2, 0.15).unwrap();
        let forward: Vec<OracleAnswer> = (0..500).map(|i| key.answer(i, i % 3 == 0)).collect();
        let backward: Vec<OracleAnswer> =
            (0..500).rev().map(|i| key.answer(i, i % 3 == 0)).collect();
        let rereversed: Vec<OracleAnswer> = backward.into_iter().rev().collect();
        assert_eq!(forward, rereversed, "answers depend on query order");

        // Rates actually bite, roughly at their configured levels.
        let abstains = forward
            .iter()
            .filter(|a| matches!(a, OracleAnswer::Abstain))
            .count();
        assert!((40..=110).contains(&abstains), "abstains {abstains}");
        let flips = (0..500)
            .filter(|&i| forward[i] == OracleAnswer::Label(i % 3 != 0))
            .count();
        assert!(flips > 30, "flips {flips}");

        // Different seeds disagree somewhere.
        let other = AnswerKey::new(100, 0.2, 0.15).unwrap();
        assert!((0..500).any(|i| key.answer(i, false) != other.answer(i, false)));

        // Perfect keys echo the truth.
        let perfect = AnswerKey::perfect(7);
        assert!((0..100).all(|i| perfect.answer(i, i % 2 == 0) == OracleAnswer::Label(i % 2 == 0)));

        assert!(AnswerKey::new(1, 1.5, 0.0).is_err());
        assert!(AnswerKey::new(1, 0.0, -0.1).is_err());
    }

    #[test]
    fn async_answerer_buffers_and_drains_out_of_order() {
        let truths: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let oracle = Oracle::perfect(truths.clone());
        let answerer = AsyncAnswerer::new(oracle, RetryPolicy::none());
        for i in 0..10 {
            answerer.request(i).unwrap();
        }
        assert_eq!(answerer.ready_len(), 10);
        // LIFO drain: last requested comes out first, values still correct.
        let mut seen = Vec::new();
        while let Some((i, a)) = answerer.take() {
            assert_eq!(a, OracleAnswer::Label(truths[i]));
            seen.push(i);
        }
        assert_eq!(seen, (0..10).rev().collect::<Vec<_>>());
        assert_eq!(answerer.inner().queries(), 10);
        assert!(answerer.take().is_none());
    }

    #[test]
    fn async_answerer_surfaces_exhausted_retries() {
        let oracle = TransientOracle::new(Oracle::perfect(vec![true; 4]), 0.0, 1).unwrap();
        oracle.script_failures(5);
        let answerer = AsyncAnswerer::new(oracle, RetryPolicy::none());
        assert!(matches!(
            answerer.request(0),
            Err(AlemError::OracleUnavailable { .. })
        ));
        assert_eq!(answerer.ready_len(), 0);
    }
}
