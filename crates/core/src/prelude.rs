//! One-line import for the common case: `use alem_core::prelude::*;`.
//!
//! Re-exports the types that virtually every alem program touches — the
//! corpus and its construction, the loop driver and its parameters, the
//! strategy zoo with its trainers, the Oracle, and the session layer —
//! so examples and downstream crates don't need a dozen `use` lines to
//! run one active-learning session. Specialized machinery (fault-injection
//! oracles, the interpretability reports, raw selectors) stays behind its
//! full module path on purpose: reaching for it should be a visible
//! decision.

pub use crate::blocking::BlockingConfig;
pub use crate::candidates::{BlockingReport, CandidateSource};
pub use crate::corpus::Corpus;
pub use crate::ensemble::EnsembleSvmStrategy;
pub use crate::error::AlemError;
pub use crate::evaluator::RunResult;
pub use crate::learner::{DnfTrainer, ForestTrainer, NnTrainer, SvmTrainer, Trainer};
pub use crate::loop_::{ActiveLearner, EvalMode, LoopParams};
pub use crate::oracle::{Oracle, QueryOracle};
pub use crate::schema::EmDataset;
pub use crate::session::{Checkpoint, SessionConfig, SessionOutcome};
pub use crate::strategy::{
    LfpLfnStrategy, MarginNnStrategy, MarginSvmStrategy, QbcStrategy, RandomStrategy, Strategy,
    TreeQbcStrategy,
};
pub use alem_par::Parallelism;
