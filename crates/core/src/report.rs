//! Report emission: the figure/table series printed by the bench harness.
//!
//! Each of the paper's plots is a set of named series over `#labels`; each
//! table is a list of rows. These types are what the `figures` binary in
//! `alem-bench` prints and serializes for `EXPERIMENTS.md`.

use crate::evaluator::RunResult;
use serde::Serialize;

/// A named x/y series (x = #labels unless stated otherwise).
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label, e.g. `"Trees(20)"`.
    pub label: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

impl Series {
    /// F1-vs-#labels series from a run (the progressive-F1 plots).
    pub fn f1_curve(run: &RunResult) -> Series {
        Series {
            label: run.strategy.clone(),
            x: run
                .iterations
                .iter()
                .map(|s| s.labels_used as f64)
                .collect(),
            y: run.iterations.iter().map(|s| s.f1).collect(),
        }
    }

    /// Selection-latency-vs-#labels series (scoring + committee).
    pub fn selection_time_curve(run: &RunResult) -> Series {
        Series {
            label: run.strategy.clone(),
            x: run
                .iterations
                .iter()
                .map(|s| s.labels_used as f64)
                .collect(),
            y: run.iterations.iter().map(|s| s.selection_secs()).collect(),
        }
    }

    /// Committee-creation-time series (the dashed lines of Fig. 10).
    pub fn committee_time_curve(run: &RunResult) -> Series {
        Series {
            label: format!("create{}", run.strategy),
            x: run
                .iterations
                .iter()
                .map(|s| s.labels_used as f64)
                .collect(),
            y: run.iterations.iter().map(|s| s.committee_secs).collect(),
        }
    }

    /// Example-scoring-time series (the solid lines of Fig. 10).
    pub fn scoring_time_curve(run: &RunResult) -> Series {
        Series {
            label: format!("score{}", run.strategy),
            x: run
                .iterations
                .iter()
                .map(|s| s.labels_used as f64)
                .collect(),
            y: run.iterations.iter().map(|s| s.scoring_secs).collect(),
        }
    }

    /// User-wait-time series (train + selection, Fig. 13).
    pub fn user_wait_curve(run: &RunResult) -> Series {
        Series {
            label: run.strategy.clone(),
            x: run
                .iterations
                .iter()
                .map(|s| s.labels_used as f64)
                .collect(),
            y: run.iterations.iter().map(|s| s.user_wait_secs()).collect(),
        }
    }

    /// #DNF-atoms series (Fig. 18a).
    pub fn atoms_curve(run: &RunResult) -> Series {
        Series {
            label: run.strategy.clone(),
            x: run
                .iterations
                .iter()
                .map(|s| s.labels_used as f64)
                .collect(),
            y: run
                .iterations
                .iter()
                .map(|s| s.atoms.unwrap_or(0) as f64)
                .collect(),
        }
    }

    /// Tree-ensemble-depth series (Fig. 18b).
    pub fn depth_curve(run: &RunResult) -> Series {
        Series {
            label: run.strategy.clone(),
            x: run
                .iterations
                .iter()
                .map(|s| s.labels_used as f64)
                .collect(),
            y: run
                .iterations
                .iter()
                .map(|s| s.depth.unwrap_or(0) as f64)
                .collect(),
        }
    }

    /// Average several same-shape series point-wise (noisy-Oracle runs are
    /// averaged over 5 seeds in the paper). Series are truncated to the
    /// shortest length. An empty slice averages to an empty series.
    pub fn average(label: &str, series: &[Series]) -> Series {
        if series.is_empty() {
            return Series {
                label: label.to_owned(),
                x: Vec::new(),
                y: Vec::new(),
            };
        }
        let n = series.iter().map(|s| s.x.len()).min().unwrap_or(0);
        let mut x = vec![0.0; n];
        let mut y = vec![0.0; n];
        for s in series {
            for i in 0..n {
                x[i] += s.x[i];
                y[i] += s.y[i];
            }
        }
        let k = series.len() as f64;
        for v in &mut x {
            *v /= k;
        }
        for v in &mut y {
            *v /= k;
        }
        Series {
            label: label.to_owned(),
            x,
            y,
        }
    }

    /// Downsample to at most `k` evenly spaced points (keeps first and
    /// last) for console-friendly output. `k = 0` yields an empty series;
    /// `k = 1` keeps only the first point.
    pub fn downsample(&self, k: usize) -> Series {
        if k == 0 {
            return Series {
                label: self.label.clone(),
                x: Vec::new(),
                y: Vec::new(),
            };
        }
        if k == 1 {
            return Series {
                label: self.label.clone(),
                x: self.x.first().copied().into_iter().collect(),
                y: self.y.first().copied().into_iter().collect(),
            };
        }
        if self.x.len() <= k {
            return self.clone();
        }
        let n = self.x.len();
        let idx: Vec<usize> = (0..k).map(|i| i * (n - 1) / (k - 1)).collect();
        Series {
            label: self.label.clone(),
            x: idx.iter().map(|&i| self.x[i]).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }
}

/// A figure: several series under a title (one paper subplot).
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Figure identifier, e.g. `"fig8a"`.
    pub id: String,
    /// Human title, e.g. `"QBC vs Margin (Progressive F1, Abt-Buy)"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text block (what the `figures` binary prints).
    pub fn to_text(&self, max_points: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   ({} vs {})", self.y_label, self.x_label);
        for s in &self.series {
            let d = s.downsample(max_points);
            let _ = writeln!(out, "  {}", d.label);
            let xs: Vec<String> = d.x.iter().map(|v| format!("{v:>8.0}")).collect();
            let ys: Vec<String> = d.y.iter().map(|v| format!("{v:>8.3}")).collect();
            let _ = writeln!(out, "    x: {}", xs.join(" "));
            let _ = writeln!(out, "    y: {}", ys.join(" "));
        }
        out
    }
}

/// A table: header plus rows of cells (one paper table).
#[derive(Debug, Clone, Serialize)]
pub struct TableReport {
    /// Table identifier, e.g. `"table2"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Render with aligned columns.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::IterationStats;

    fn run() -> RunResult {
        RunResult {
            strategy: "Trees(20)".into(),
            dataset: "toy".into(),
            iterations: (0..5)
                .map(|i| IterationStats {
                    iteration: i,
                    labels_used: 30 + i * 10,
                    f1: 0.1 * i as f64,
                    precision: 0.0,
                    recall: 0.0,
                    train_secs: 0.01,
                    committee_secs: 0.02,
                    scoring_secs: 0.03,
                    atoms: Some(i * 7),
                    depth: Some(i),
                    accepted_models: None,
                    pruned: None,
                })
                .collect(),
        }
    }

    #[test]
    fn f1_curve_extracts() {
        let s = Series::f1_curve(&run());
        assert_eq!(s.x[0], 30.0);
        assert_eq!(s.y[4], 0.4);
        assert_eq!(s.label, "Trees(20)");
    }

    #[test]
    fn average_of_identical_is_identity() {
        let s = Series::f1_curve(&run());
        let avg = Series::average("avg", &[s.clone(), s.clone()]);
        assert_eq!(avg.y, s.y);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let s = Series::f1_curve(&run());
        let d = s.downsample(2);
        assert_eq!(d.x, vec![30.0, 70.0]);
        assert_eq!(d.y.len(), 2);
    }

    #[test]
    fn figure_and_table_render() {
        let fig = Figure {
            id: "fig8a".into(),
            title: "test".into(),
            x_label: "#labels".into(),
            y_label: "F1".into(),
            series: vec![Series::f1_curve(&run())],
        };
        let txt = fig.to_text(3);
        assert!(txt.contains("fig8a"));
        assert!(txt.contains("Trees(20)"));

        let table = TableReport {
            id: "table1".into(),
            title: "datasets".into(),
            header: vec!["Dataset".into(), "Skew".into()],
            rows: vec![vec!["Abt-Buy".into(), "0.12".into()]],
        };
        let txt = table.to_text();
        assert!(txt.contains("Abt-Buy"));
        assert!(txt.contains("Skew"));
    }

    #[test]
    fn latency_curves() {
        let r = run();
        assert!((Series::selection_time_curve(&r).y[0] - 0.05).abs() < 1e-12);
        assert!((Series::user_wait_curve(&r).y[0] - 0.06).abs() < 1e-12);
        assert_eq!(Series::atoms_curve(&r).y[2], 14.0);
        assert_eq!(Series::depth_curve(&r).y[3], 3.0);
        assert!(Series::committee_time_curve(&r).label.starts_with("create"));
        assert!(Series::scoring_time_curve(&r).label.starts_with("score"));
    }

    #[test]
    fn average_of_empty_slice_is_empty() {
        let s = Series::average("mean", &[]);
        assert_eq!(s.label, "mean");
        assert!(s.x.is_empty());
        assert!(s.y.is_empty());
    }

    #[test]
    fn downsample_zero_and_one_are_degenerate_not_panics() {
        let s = Series::f1_curve(&run());
        let zero = s.downsample(0);
        assert_eq!(zero.label, s.label);
        assert!(zero.x.is_empty());
        assert!(zero.y.is_empty());
        let one = s.downsample(1);
        assert_eq!(one.x, vec![s.x[0]]);
        assert_eq!(one.y, vec![s.y[0]]);
        // k >= len still returns everything.
        assert_eq!(s.downsample(100).x.len(), s.x.len());
    }
}
