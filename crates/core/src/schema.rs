//! Tables, records and attribute alignment.
//!
//! An EM task matches records across two tables with pre-aligned schemas
//! (paper §3: similarity functions are applied "on all the matching schema
//! attributes across the two tables"). Attribute values are optional
//! strings; missing values score 0 under every similarity measure.

use std::collections::BTreeSet;

/// The kind of an attribute, used by generators and pretty-printers.
/// Feature extraction treats every attribute as text (numbers are
/// stringified), matching the paper's dimension counts of ≈ 21 × #attrs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// Free text (names, titles, descriptions).
    Text,
    /// Numeric rendered as text (prices, years, ABV).
    Numeric,
}

/// One attribute of an aligned schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name (shared by both tables after alignment).
    pub name: String,
    /// Value kind.
    pub kind: AttrKind,
}

/// An aligned relational schema: the matched columns of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attributes: Vec<AttrDef>,
}

impl Schema {
    /// Build a schema from `(name, kind)` pairs.
    pub fn new(attrs: Vec<(&str, AttrKind)>) -> Self {
        Schema {
            attributes: attrs
                .into_iter()
                .map(|(name, kind)| AttrDef {
                    name: name.to_owned(),
                    kind,
                })
                .collect(),
        }
    }

    /// The attribute definitions in order.
    pub fn attributes(&self) -> &[AttrDef] {
        &self.attributes
    }

    /// Number of aligned attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }
}

/// One record (entity mention): optional values aligned to a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    values: Vec<Option<String>>,
}

impl Record {
    /// Build from per-attribute optional values.
    pub fn new(values: Vec<Option<String>>) -> Self {
        Record { values }
    }

    /// Value of attribute `i` (`None` = missing/null).
    pub fn value(&self, i: usize) -> Option<&str> {
        self.values.get(i).and_then(|v| v.as_deref())
    }

    /// All values.
    pub fn values(&self) -> &[Option<String>] {
        &self.values
    }

    /// Number of attribute slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the record has no attribute slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A named table of records under an aligned schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    name: String,
    schema: Schema,
    records: Vec<Record>,
}

impl Table {
    /// Create a table; every record must have one value slot per schema
    /// attribute.
    ///
    /// # Panics
    /// Panics if any record's arity differs from the schema's.
    pub fn new(name: &str, schema: Schema, records: Vec<Record>) -> Self {
        for (i, r) in records.iter().enumerate() {
            assert_eq!(
                r.len(),
                schema.len(),
                "record {i} arity {} != schema arity {}",
                r.len(),
                schema.len()
            );
        }
        Table {
            name: name.to_owned(),
            schema,
            records,
        }
    }

    /// Table name (e.g. "Abt").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The aligned schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record by index.
    pub fn record(&self, i: usize) -> &Record {
        &self.records[i]
    }
}

/// A candidate record pair: `(left index, right index)`.
pub type Pair = (u32, u32);

/// A full EM task: two aligned tables plus the hidden ground truth used by
/// the Oracle and the evaluator.
#[derive(Debug, Clone)]
pub struct EmDataset {
    /// Left table (e.g. Abt).
    pub left: Table,
    /// Right table (e.g. Buy).
    pub right: Table,
    /// Ground-truth matching pairs.
    pub matches: BTreeSet<Pair>,
    /// Human-readable dataset name.
    pub name: String,
}

impl EmDataset {
    /// Size of the Cartesian product of record pairs ("#Total Pairs" in
    /// Table 1).
    pub fn total_pairs(&self) -> u64 {
        self.left.len() as u64 * self.right.len() as u64
    }

    /// Is `(l, r)` a true match?
    pub fn is_match(&self, pair: Pair) -> bool {
        self.matches.contains(&pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![("name", AttrKind::Text), ("price", AttrKind::Numeric)])
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn record_values() {
        let r = Record::new(vec![Some("ipod".into()), None]);
        assert_eq!(r.value(0), Some("ipod"));
        assert_eq!(r.value(1), None);
        assert_eq!(r.value(9), None);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_records() {
        Table::new("t", schema(), vec![Record::new(vec![None])]);
    }

    #[test]
    fn dataset_totals() {
        let t1 = Table::new(
            "l",
            schema(),
            vec![Record::new(vec![Some("a".into()), None]); 3],
        );
        let t2 = Table::new(
            "r",
            schema(),
            vec![Record::new(vec![Some("a".into()), None]); 4],
        );
        let ds = EmDataset {
            left: t1,
            right: t2,
            matches: [(0, 0), (1, 2)].into_iter().collect(),
            name: "toy".into(),
        };
        assert_eq!(ds.total_pairs(), 12);
        assert!(ds.is_match((1, 2)));
        assert!(!ds.is_match((2, 2)));
    }
}
