//! Blocking dimensions for margin-based selection (§5.1).
//!
//! The weight vector of a trained linear SVM is examined for the `K`
//! dimensions with the largest absolute weights — the *blocking
//! dimensions*. For each unlabeled example the selector first evaluates
//! only those dimensions; if they are all zero the example is assumed to
//! have an all-zero feature vector, whose margin is just `|b|` — an
//! unambiguous example that can be skipped without computing the full dot
//! product. Only surviving examples get a full margin computation.
//!
//! Using all dimensions as blocking dimensions degenerates to vanilla
//! margin selection (the "margin(62Dim)" baseline of Fig. 11); `K = 1` is
//! the "margin(1Dim)" variant that cuts selection latency without hurting
//! quality on most datasets (Fig. 10d, Fig. 11).

use super::{scored_pool, top_k_desc, Selection, EXCLUDED};
use crate::corpus::Corpus;
use alem_obs::Registry;
use alem_par::Parallelism;
use mlcore::svm::LinearSvm;
use rand::rngs::StdRng;
use std::time::Duration;

/// Outcome of a blocking-dimension margin round, with pruning statistics.
#[derive(Debug, Clone, Default)]
pub struct BlockingSelection {
    /// The selection result.
    pub selection: Selection,
    /// Examples skipped because every blocking dimension was zero.
    pub pruned: usize,
    /// Examples that received a full margin computation.
    pub evaluated: usize,
}

/// Pruned margin scores for the pool, aligned with `unlabeled`: examples
/// whose blocking dimensions are all zero get [`EXCLUDED`]; survivors get
/// the negated absolute margin (higher = closer to the boundary).
///
/// The cheap prune pass runs sequentially *before* the fan-out — it only
/// touches `k` dimensions per example — so worker threads spend their time
/// exclusively on full dot products.
pub fn score_pool(
    svm: &LinearSvm,
    k: usize,
    corpus: &Corpus,
    unlabeled: &[usize],
    par: &Parallelism,
) -> Vec<f64> {
    let dims = svm.top_weight_dims(k);
    let survivors: Vec<(usize, usize)> = unlabeled
        .iter()
        .enumerate()
        .filter(|&(_, &i)| dims.iter().any(|&d| corpus.x(i)[d] != 0.0))
        .map(|(j, &i)| (j, i))
        .collect();
    let margins = par.map(&survivors, |&(_, i)| -svm.margin(corpus.x(i)));
    let mut scores = vec![EXCLUDED; unlabeled.len()];
    for (&(j, _), m) in survivors.iter().zip(margins) {
        scores[j] = m;
    }
    scores
}

/// One margin round pruned by the top-`k` blocking dimensions of `svm`.
#[allow(clippy::too_many_arguments)] // mirrors the pipeline's natural inputs
pub fn select(
    svm: &LinearSvm,
    k: usize,
    corpus: &Corpus,
    unlabeled: &[usize],
    batch: usize,
    rng: &mut StdRng,
    obs: &Registry,
    par: &Parallelism,
) -> BlockingSelection {
    let score_span = obs.span("select.score");
    let scores = score_pool(svm, k, corpus, unlabeled, par);
    let pruned = scores.iter().filter(|&&s| s == EXCLUDED).count();
    let evaluated = unlabeled.len() - pruned;
    obs.counter_add("select.pairs_skipped", pruned as u64);
    obs.counter_add("select.pairs_scored", evaluated as u64);
    let mut chosen = top_k_desc(scored_pool(unlabeled, &scores), batch, rng);
    // Degenerate fallback: if pruning removed everything, fall back to the
    // skipped pool so active learning can still progress.
    if chosen.is_empty() && !unlabeled.is_empty() {
        let scores = super::margin::score_pool(|x| svm.margin(x), corpus, unlabeled, par);
        obs.counter_add("select.pairs_scored", unlabeled.len() as u64);
        chosen = top_k_desc(scored_pool(unlabeled, &scores), batch, rng);
    }
    BlockingSelection {
        selection: Selection {
            chosen,
            committee_creation: Duration::ZERO,
            scoring: score_span.finish(),
        },
        pruned,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Corpus where feature 0 is the high-weight dimension and is zero for
    /// the first half of examples.
    fn corpus() -> Corpus {
        let feats: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                if i < 50 {
                    vec![0.0, 0.3]
                } else {
                    vec![(i - 50) as f64 / 50.0, 0.3]
                }
            })
            .collect();
        let truth: Vec<bool> = (0..100).map(|i| i >= 75).collect();
        Corpus::from_features(feats, truth)
    }

    #[test]
    fn prunes_zero_blocking_dim_examples() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![3.0, 0.1], -1.5);
        let unlabeled: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let out = select(
            &svm,
            1,
            &c,
            &unlabeled,
            10,
            &mut rng,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        // Examples 0..50 have a zero blocking dim, and so does example 50
        // (its value is (50-50)/50 = 0).
        assert_eq!(out.pruned, 51);
        assert_eq!(out.evaluated, 49);
        assert!(out.selection.chosen.iter().all(|&i| i > 50));
    }

    #[test]
    fn all_dims_equals_vanilla_margin() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![3.0, 0.1], -1.5);
        let unlabeled: Vec<usize> = (50..100).collect();
        let out = select(
            &svm,
            2,
            &c,
            &unlabeled,
            5,
            &mut StdRng::seed_from_u64(8),
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        let vanilla = super::super::margin::select(
            |x| svm.margin(x),
            &c,
            &unlabeled,
            5,
            &mut StdRng::seed_from_u64(8),
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        let mut a = out.selection.chosen.clone();
        let mut b = vanilla.chosen.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn falls_back_when_everything_pruned() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![3.0, 0.1], -1.5);
        // Only examples whose blocking dim is zero.
        let unlabeled: Vec<usize> = (0..50).collect();
        let out = select(
            &svm,
            1,
            &c,
            &unlabeled,
            5,
            &mut StdRng::seed_from_u64(8),
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert_eq!(out.selection.chosen.len(), 5);
        assert_eq!(out.pruned, 50);
    }

    #[test]
    fn scores_are_thread_count_invariant() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![3.0, 0.1], -1.5);
        let unlabeled: Vec<usize> = (0..100).collect();
        let seq = score_pool(&svm, 1, &c, &unlabeled, &Parallelism::sequential());
        for t in [2, 3, 8] {
            assert_eq!(
                seq,
                score_pool(&svm, 1, &c, &unlabeled, &Parallelism::fixed(t))
            );
        }
        assert_eq!(seq.iter().filter(|&&s| s == EXCLUDED).count(), 51);
    }
}
