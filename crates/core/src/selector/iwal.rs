//! Importance Weighted Active Learning (Beygelzimer, Dasgupta, Langford —
//! ICML 2009), the related-work baseline the paper dismisses for EM
//! because it "either chooses a poor objective of label prediction
//! accuracy ... or incurs excessive labels in practice" (§2).
//!
//! Practical margin-flavored IWAL: walk the (shuffled) unlabeled pool and
//! query each example with probability
//! `p(x) = p_min + (1 − p_min) · exp(−c · |f(x)|)` — near-boundary
//! examples are queried almost surely, confident ones only with `p_min`.
//! Queried examples carry importance weight `1/p(x)` so the downstream
//! weighted ERM stays unbiased. Included so the benchmark can measure the
//! label-efficiency gap against margin/QBC on the F1 objective.

use super::Selection;
use crate::corpus::Corpus;
use alem_obs::Registry;
use mlcore::svm::LinearSvm;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Duration;

/// IWAL rejection-sampling parameters.
#[derive(Debug, Clone, Copy)]
pub struct IwalConfig {
    /// Floor query probability (keeps the estimator's variance bounded).
    pub p_min: f64,
    /// Margin decay: larger = more aggressive rejection of confident
    /// examples.
    pub decay: f64,
}

impl Default for IwalConfig {
    fn default() -> Self {
        IwalConfig {
            p_min: 0.1,
            decay: 2.0,
        }
    }
}

/// Outcome of one IWAL round: the selection plus the importance weight
/// `1/p` of every chosen example.
#[derive(Debug, Clone, Default)]
pub struct IwalSelection {
    /// The selection result.
    pub selection: Selection,
    /// Importance weight per chosen example (aligned with
    /// `selection.chosen`).
    pub weights: Vec<f64>,
    /// Pool examples inspected (queried or rejected) this round.
    pub inspected: usize,
}

impl IwalConfig {
    /// Query probability for an example with absolute margin `m`.
    pub fn query_probability(&self, m: f64) -> f64 {
        self.p_min + (1.0 - self.p_min) * (-self.decay * m).exp()
    }

    /// One IWAL round: sample from the shuffled pool until `batch`
    /// queries are accepted or the pool is exhausted.
    pub fn select(
        &self,
        svm: &LinearSvm,
        corpus: &Corpus,
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> IwalSelection {
        let score_span = obs.span("select.score");
        let mut pool: Vec<usize> = unlabeled.to_vec();
        pool.shuffle(rng);
        let mut chosen = Vec::with_capacity(batch);
        let mut weights = Vec::with_capacity(batch);
        let mut inspected = 0usize;
        for i in pool {
            if chosen.len() >= batch {
                break;
            }
            inspected += 1;
            let p = self.query_probability(svm.margin(corpus.x(i)));
            if rng.gen::<f64>() < p {
                chosen.push(i);
                weights.push(1.0 / p);
            }
        }
        obs.counter_add("select.pairs_inspected", inspected as u64);
        obs.counter_add("select.pairs_scored", chosen.len() as u64);
        IwalSelection {
            selection: Selection {
                chosen,
                committee_creation: Duration::ZERO,
                scoring: score_span.finish(),
            },
            weights,
            inspected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn corpus() -> Corpus {
        let feats: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let truth: Vec<bool> = (0..200).map(|i| i >= 100).collect();
        Corpus::from_features(feats, truth)
    }

    #[test]
    fn query_probability_bounds_and_monotonicity() {
        let cfg = IwalConfig::default();
        assert!((cfg.query_probability(0.0) - 1.0).abs() < 1e-12);
        let mut last = 1.0;
        for m in [0.1, 0.5, 1.0, 5.0] {
            let p = cfg.query_probability(m);
            assert!(p < last);
            assert!(p >= cfg.p_min);
            last = p;
        }
    }

    #[test]
    fn fills_batch_and_weights_align() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![2.0], -1.0);
        let unlabeled: Vec<usize> = (0..200).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out =
            IwalConfig::default().select(&svm, &c, &unlabeled, 10, &mut rng, &Registry::disabled());
        assert_eq!(out.selection.chosen.len(), 10);
        assert_eq!(out.weights.len(), 10);
        assert!(out
            .weights
            .iter()
            .all(|&w| (1.0..=10.0 + 1e-9).contains(&w)));
        assert!(out.inspected >= 10);
    }

    #[test]
    fn prefers_boundary_examples_statistically() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![2.0], -1.0); // boundary at 0.5
        let unlabeled: Vec<usize> = (0..200).collect();
        let mut near = 0usize;
        let mut total = 0usize;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = IwalConfig::default().select(
                &svm,
                &c,
                &unlabeled,
                10,
                &mut rng,
                &Registry::disabled(),
            );
            for &i in &out.selection.chosen {
                total += 1;
                if (0.25..0.75).contains(&c.x(i)[0]) {
                    near += 1;
                }
            }
        }
        // Half the pool is within (0.25, 0.75); IWAL should concentrate
        // well above that base rate.
        assert!(
            near as f64 / total as f64 > 0.6,
            "only {near}/{total} near the boundary"
        );
    }

    #[test]
    fn exhausted_pool_returns_partial_batch() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![2.0], -1.0);
        let unlabeled: Vec<usize> = (0..3).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out =
            IwalConfig::default().select(&svm, &c, &unlabeled, 10, &mut rng, &Registry::disabled());
        assert!(out.selection.chosen.len() <= 3);
        assert_eq!(out.inspected, 3);
    }
}
