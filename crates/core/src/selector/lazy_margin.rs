//! Two-phase lazy margin selection — the §5.1 idea generalized from "skip
//! pairs whose blocking dim is zero" to "bound every pair's margin from a
//! partial feature read, and only materialize the full vector inside the
//! uncertain band".
//!
//! **Phase 1** reads only the `topk` highest-`|weight|` dimensions of each
//! unlabeled pair through the store's sparse
//! [`DimsView`](crate::featurestore::DimsView) — on a lazy corpus this
//! computes `topk` similarities instead of all `21 × #attrs`, and never
//! materializes a row. Because every feature lies in `[0, 1]`
//! ([`Corpus::features_bounded_01`]), the unread remainder contributes at
//! most `[Σ min(0, w_d), Σ max(0, w_d)]`, giving each pair a sound
//! interval for its decision value and hence for its ambiguity score
//! `-|decision|`.
//!
//! **Phase 2** materializes full rows only for pairs whose score interval
//! reaches the selection threshold (the `batch`-th best worst-case bound,
//! minus a configurable safety `band`) and scores them exactly.
//!
//! The chosen batch is **bit-identical to eager selection**: at least
//! `batch` pairs have true score ≥ the phase-1 threshold `W`, every
//! non-survivor's true score is strictly below `W` (its upper bound is),
//! and the final ranking shuffles the *full* pool with the caller's RNG
//! before a stable sort — the same permutation the eager path draws — so
//! tie-breaking among survivors matches exactly. Float-rounding between
//! the partial and full summation orders is absorbed by widening both
//! interval ends with an epsilon proportional to `|b| + Σ|w_d|`.

use super::{scored_pool, top_k_desc, Selection};
use crate::corpus::Corpus;
use alem_obs::Registry;
use alem_par::Parallelism;
use mlcore::svm::LinearSvm;
use rand::rngs::StdRng;
use std::time::Duration;

/// Tuning for two-phase lazy selection.
#[derive(Debug, Clone, PartialEq)]
pub struct LazyParams {
    /// Dimensions read in phase 1 (the K highest-`|weight|` dims).
    pub topk: usize,
    /// Extra slack below the phase-1 threshold: pairs whose upper bound
    /// falls within `band` of it still go to phase 2. Zero is already
    /// exact; a positive band only trades speed for more phase-2 work.
    pub band: f64,
}

impl LazyParams {
    /// Read `topk` dims in phase 1 with no extra band.
    pub fn new(topk: usize) -> Self {
        LazyParams { topk, band: 0.0 }
    }
}

/// Outcome of one lazy selection round.
#[derive(Debug, Clone)]
pub struct LazySelection {
    /// The chosen batch plus timing, as the eager selectors report it.
    pub selection: Selection,
    /// Pairs resolved by phase 1 alone (pruned without materializing the
    /// full feature vector).
    pub phase1_only: usize,
}

/// One two-phase margin-selection round, bit-identical in its chosen
/// batch to [`super::margin::select`] with the same SVM and RNG. Phase 1
/// reads the current model's `topk` highest-`|weight|` dims.
///
/// Soundness requires [`Corpus::features_bounded_01`]; callers gate on it
/// and fall back to the eager path otherwise.
#[allow(clippy::too_many_arguments)] // mirrors the eager selector's natural inputs
pub fn select(
    svm: &LinearSvm,
    corpus: &Corpus,
    unlabeled: &[usize],
    batch: usize,
    params: &LazyParams,
    rng: &mut StdRng,
    obs: &Registry,
    par: &Parallelism,
) -> LazySelection {
    let topk = params.topk.min(svm.weights().len());
    let dims = svm.top_weight_dims(topk);
    select_with_dims(
        svm,
        corpus,
        unlabeled,
        batch,
        &dims,
        params.band,
        rng,
        obs,
        par,
    )
}

/// [`select`] with a caller-chosen phase-1 dim set.
///
/// The bounds are valid for *any* set of distinct in-range dims — the
/// unread remainder is always the complement under the current weights —
/// so the chosen batch is bit-identical to eager selection no matter
/// which dims phase 1 reads; the choice only moves the speed/pruning
/// trade-off. This is what lets [`crate::strategy::MarginSvmStrategy`]
/// freeze the dim set after the first fit: on a lazy corpus the
/// partial-cell memo then stays at `pool × topk` cells instead of growing
/// every round as the top-weight ranking churns, turning recurring
/// phase-1 scans into pure cache reads.
#[allow(clippy::too_many_arguments)] // mirrors the eager selector's natural inputs
pub fn select_with_dims(
    svm: &LinearSvm,
    corpus: &Corpus,
    unlabeled: &[usize],
    batch: usize,
    dims: &[usize],
    band: f64,
    rng: &mut StdRng,
    obs: &Registry,
    par: &Parallelism,
) -> LazySelection {
    debug_assert!(
        corpus.features_bounded_01(),
        "lazy bounds need [0,1] features"
    );
    let score_span = obs.span("select.score");
    let weights = svm.weights();
    let bias = svm.bias();
    let n = unlabeled.len();
    let k = batch.min(n);

    if n == 0 || k == 0 {
        return LazySelection {
            selection: Selection {
                chosen: Vec::new(),
                committee_creation: Duration::ZERO,
                scoring: score_span.finish(),
            },
            phase1_only: 0,
        };
    }

    // Phase 1: bound every pair's score from the selected dims only —
    // read in *stages* of descending |weight| so most pruned pairs never
    // touch more than a short prefix. After each stage the threshold
    // (the k-th best worst-case bound so far) is recomputed and pairs
    // whose upper bound already falls below it stop reading; their
    // bounds freeze. Every stage's threshold is sound on its own — a
    // worst-case bound from any read prefix is still a lower bound on
    // the true score, so at least k pairs truly score ≥ it — which is
    // why staged pruning cannot change the chosen batch. Within a stage
    // dims are scanned in ascending order (attr-major, matching the
    // extractor's layout) for cache locality; the summation-order
    // difference against the eager dot product is absorbed by the
    // epsilon below, and the exact phase-2 scores never depend on
    // phase-1 order.
    let mut dims: Vec<usize> = dims.to_vec();
    dims.sort_unstable_by(|&a, &b| {
        weights[b]
            .abs()
            .partial_cmp(&weights[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut read = vec![false; weights.len()];
    for &d in &dims {
        debug_assert!(!read[d], "phase-1 dims must be distinct");
        read[d] = true;
    }
    // Before any stage runs, *every* dim is unread — the rest-mass
    // interval starts over the whole weight vector and each stage
    // subtracts the dims it reads (dims outside the phase-1 set simply
    // stay in the rest forever).
    let (mut lo_rest, mut hi_rest) = (0.0f64, 0.0f64);
    let mut wsum_abs = bias.abs();
    for &w in weights {
        wsum_abs += w.abs();
        lo_rest += w.min(0.0);
        hi_rest += w.max(0.0);
    }
    // Absorbs summation-order rounding between the phase-1 partial sum
    // and the eager full-dim dot product.
    let eps = 1e-9 * (1.0 + wsum_abs);

    // Running per-pair state: partial decision sum (bias plus the dims
    // read so far), (worst, best) score bounds, and whether the pair is
    // still reading. Bounds start from the empty read set — everything
    // unread contributes its weight-mass interval.
    let mut partial = vec![bias; n];
    let mut worst = vec![0.0f64; n];
    let mut best = vec![0.0f64; n];
    let mut alive = vec![true; n];
    let bound_of = |p: f64, lo: f64, hi: f64| -> (f64, f64) {
        let (d_lo, d_hi) = (p + lo, p + hi);
        let w = -d_lo.abs().max(d_hi.abs()) - eps;
        let b = if d_lo <= 0.0 && d_hi >= 0.0 {
            eps
        } else {
            -d_lo.abs().min(d_hi.abs()) + eps
        };
        (w, b)
    };
    let mut threshold = f64::NEG_INFINITY;
    let reprune = |partial: &[f64],
                   worst: &mut [f64],
                   best: &mut [f64],
                   alive: &mut [bool],
                   lo_rest: f64,
                   hi_rest: f64|
     -> f64 {
        for j in 0..n {
            if alive[j] {
                let (w, b) = bound_of(partial[j], lo_rest, hi_rest);
                worst[j] = w;
                best[j] = b;
            }
        }
        let mut worsts: Vec<f64> = worst.to_vec();
        worsts.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let t = worsts[k - 1] - band;
        for j in 0..n {
            if alive[j] && best[j] < t {
                alive[j] = false;
            }
        }
        t
    };
    threshold = threshold.max(reprune(
        &partial, &mut worst, &mut best, &mut alive, lo_rest, hi_rest,
    ));

    // Stage sizes double from a short prefix: a pair pruned by the first
    // 8 highest-|weight| dims never pays for the rest.
    let mut start = 0usize;
    let mut stage_len = 8usize.min(dims.len().max(1));
    while start < dims.len() {
        let end = (start + stage_len).min(dims.len());
        let mut stage: Vec<usize> = dims[start..end].to_vec();
        stage.sort_unstable();
        let wstage: Vec<f64> = stage.iter().map(|&d| weights[d]).collect();
        for &d in &stage {
            lo_rest -= weights[d].min(0.0);
            hi_rest -= weights[d].max(0.0);
        }
        let view = corpus.store().select_dims(stage);
        let reading: Vec<usize> = (0..n).filter(|&j| alive[j]).collect();
        let sums: Vec<f64> = par.map(&reading, |&j| view.weighted_sum(unlabeled[j], &wstage));
        for (&j, &s) in reading.iter().zip(&sums) {
            partial[j] += s;
        }
        threshold = threshold.max(reprune(
            &partial, &mut worst, &mut best, &mut alive, lo_rest, hi_rest,
        ));
        start = end;
        stage_len *= 2;
    }
    // A frozen pair's bounds stay valid (they only ever widen relative
    // to a fuller read), so the final threshold — never lower than any
    // stage's, and the stage that froze the pair already had its upper
    // bound strictly below — still separates it from the batch.

    // Phase 2: exact scores for survivors only, via full (memoized) rows.
    let survivors: Vec<usize> = (0..n)
        .filter(|&j| alive[j] && best[j] >= threshold)
        .collect();
    let exact: Vec<f64> = par.map(&survivors, |&j| -svm.margin(corpus.x(unlabeled[j])));

    // Hybrid score vector: exact where it matters, upper bound (provably
    // below the threshold, hence below every chosen score) elsewhere.
    let mut scores: Vec<f64> = best;
    for (&j, &s) in survivors.iter().zip(&exact) {
        scores[j] = s;
    }

    let phase1_only = n - survivors.len();
    obs.counter_add("select.pairs_scored", survivors.len() as u64);
    obs.counter_add("feat.phase1_only", phase1_only as u64);

    let chosen = top_k_desc(scored_pool(unlabeled, &scores), batch, rng);
    LazySelection {
        selection: Selection {
            chosen,
            committee_creation: Duration::ZERO,
            scoring: score_span.finish(),
        },
        phase1_only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize, dim: usize, seed: u64) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let feats: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let truth: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        Corpus::from_features(feats, truth).with_bounded_features()
    }

    fn svm(dim: usize, seed: u64) -> LinearSvm {
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        LinearSvm::from_parts(w, rng.gen::<f64>() - 0.5)
    }

    #[test]
    fn chosen_batch_matches_eager_bit_for_bit() {
        for seed in 0..8u64 {
            let c = corpus(300, 12, seed);
            let m = svm(12, seed + 100);
            let unlabeled: Vec<usize> = (0..300).collect();
            let params = LazyParams::new(4);
            let lazy = select(
                &m,
                &c,
                &unlabeled,
                10,
                &params,
                &mut StdRng::seed_from_u64(seed),
                &Registry::disabled(),
                &Parallelism::sequential(),
            );
            let eager = super::super::margin::select(
                |x| m.margin(x),
                &c,
                &unlabeled,
                10,
                &mut StdRng::seed_from_u64(seed),
                &Registry::disabled(),
                &Parallelism::sequential(),
            );
            assert_eq!(lazy.selection.chosen, eager.chosen, "seed {seed}");
        }
    }

    #[test]
    fn arbitrary_dim_sets_stay_exact() {
        // The chosen batch is invariant to WHICH dims phase 1 reads — the
        // property that makes freezing the dim set across rounds sound.
        for seed in 0..6u64 {
            let c = corpus(200, 10, seed);
            let m = svm(10, seed + 50);
            let unlabeled: Vec<usize> = (0..200).collect();
            let eager = super::super::margin::select(
                |x| m.margin(x),
                &c,
                &unlabeled,
                8,
                &mut StdRng::seed_from_u64(seed),
                &Registry::disabled(),
                &Parallelism::sequential(),
            );
            for dims in [
                vec![],
                vec![9, 1],
                vec![0, 2, 4, 6, 8],
                (0..10).collect::<Vec<_>>(),
            ] {
                let lazy = select_with_dims(
                    &m,
                    &c,
                    &unlabeled,
                    8,
                    &dims,
                    0.0,
                    &mut StdRng::seed_from_u64(seed),
                    &Registry::disabled(),
                    &Parallelism::sequential(),
                );
                assert_eq!(
                    lazy.selection.chosen, eager.chosen,
                    "seed {seed} dims {dims:?}"
                );
            }
        }
    }

    #[test]
    fn prunes_most_of_the_pool() {
        let c = corpus(500, 16, 3);
        // Weight mass concentrated on a few dims — the regime lazy-topk
        // targets (trained SVMs put most mass on a handful of features).
        let mut w = vec![0.001; 16];
        w[2] = 4.0;
        w[7] = -3.0;
        w[11] = 2.5;
        let m = LinearSvm::from_parts(w, -1.5);
        let unlabeled: Vec<usize> = (0..500).collect();
        let out = select(
            &m,
            &c,
            &unlabeled,
            10,
            &LazyParams::new(6),
            &mut StdRng::seed_from_u64(1),
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert!(
            out.phase1_only > 0,
            "phase 1 should prune some of a 500-pair pool"
        );
        assert_eq!(out.selection.chosen.len(), 10);
    }

    #[test]
    fn thread_count_invariant() {
        let c = corpus(250, 10, 9);
        let m = svm(10, 77);
        let unlabeled: Vec<usize> = (0..250).collect();
        let pick = |par: Parallelism| {
            select(
                &m,
                &c,
                &unlabeled,
                10,
                &LazyParams::new(3),
                &mut StdRng::seed_from_u64(5),
                &Registry::disabled(),
                &par,
            )
            .selection
            .chosen
        };
        let seq = pick(Parallelism::sequential());
        for t in [2, 4, 8] {
            assert_eq!(seq, pick(Parallelism::fixed(t)), "threads={t}");
        }
    }

    #[test]
    fn empty_pool_is_fine() {
        let c = corpus(10, 4, 1);
        let m = svm(4, 2);
        let out = select(
            &m,
            &c,
            &[],
            10,
            &LazyParams::new(2),
            &mut StdRng::seed_from_u64(1),
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert!(out.selection.chosen.is_empty());
    }
}
