//! The LFP/LFN example-selection heuristic for rule learners (§4.3).
//!
//! Given the current candidate conjunctive rule, the selector finds
//!
//! * **Likely False Positives** — unlabeled pairs the rule predicts as
//!   matches but whose overall feature similarity is low (suspicious
//!   matches). Labeling them teaches the learner more selective predicates,
//!   raising precision.
//! * **Likely False Negatives** — pairs the rule rejects but some
//!   *Rule-Minus* relaxation (the rule with one predicate dropped, Fig. 5)
//!   accepts, and whose overall similarity is high (suspicious
//!   non-matches). Labeling them recovers recall.
//!
//! Active learning for rules terminates when neither kind exists, which is
//! why the paper's rule runs stop early with few labels (§6, Table 2).

use super::{score_pool_with, top_k_desc, Selection, EXCLUDED};
use crate::corpus::Corpus;
use alem_obs::Registry;
use alem_par::Parallelism;
use mlcore::rules::{Conjunction, Dnf};
use rand::rngs::StdRng;
use std::time::Duration;

/// Scores at or above this value encode LFP candidates; positive scores
/// below it encode LFN candidates (see [`score_pool`]).
const LFP_BAND: f64 = 2.0;

/// Outcome of an LFP/LFN round.
#[derive(Debug, Clone, Default)]
pub struct LfpLfnSelection {
    /// The selection result.
    pub selection: Selection,
    /// Number of likely-false-positive candidates found.
    pub lfp_found: usize,
    /// Number of likely-false-negative candidates found.
    pub lfn_found: usize,
}

impl LfpLfnSelection {
    /// True when no LFPs and no LFNs exist — the rule learner's
    /// termination signal.
    pub fn exhausted(&self) -> bool {
        self.lfp_found == 0 && self.lfn_found == 0
    }
}

/// Mean continuous similarity of an example — the feature-similarity
/// heuristic scoring how "match-like" a pair looks overall. Clamped to
/// `[0, 1]` so the LFP/LFN score bands of [`score_pool`] cannot collide.
fn mean_similarity(corpus: &Corpus, i: usize) -> f64 {
    let x = corpus.x(i);
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().sum::<f64>() / x.len() as f64).clamp(0.0, 1.0)
}

/// Composite LFP/LFN scores for the pool, aligned with `unlabeled`.
///
/// The two candidate kinds are encoded in disjoint bands so one score
/// vector carries both: an LFP (rule predicts match) scores
/// `2 + (1 − sim)` ∈ `[2, 3]` — suspicious *low*-similarity matches rank
/// highest — while an LFN (only a Rule-Minus relaxation matches) scores
/// `sim` ∈ `[0, 1]` — suspicious *high*-similarity non-matches rank
/// highest. Pairs covered by `accepted` or matched by neither rule get
/// [`EXCLUDED`]. Within each band, higher = more informative, so a
/// generic top-k consumer drains LFPs before LFNs; [`select`] instead
/// splits the batch half-and-half per the paper.
pub fn score_pool(
    candidate: &Conjunction,
    accepted: &Dnf,
    corpus: &Corpus,
    unlabeled: &[usize],
    par: &Parallelism,
) -> Vec<f64> {
    let Some(bools) = corpus.bool_features() else {
        return vec![EXCLUDED; unlabeled.len()];
    };
    let minus = candidate.minus_variants();
    score_pool_with(par, unlabeled, |i| {
        let b = &bools[i];
        if accepted.matches(b) {
            EXCLUDED // already covered by accepted high-precision rules
        } else if candidate.matches(b) {
            LFP_BAND + (1.0 - mean_similarity(corpus, i))
        } else if minus.iter().any(|m| m.matches(b)) {
            mean_similarity(corpus, i)
        } else {
            EXCLUDED
        }
    })
}

/// One LFP/LFN selection round for `candidate`, ignoring pairs already
/// covered by the `accepted` rule ensemble.
#[allow(clippy::too_many_arguments)] // mirrors the pipeline's natural inputs
pub fn select(
    candidate: &Conjunction,
    accepted: &Dnf,
    corpus: &Corpus,
    unlabeled: &[usize],
    batch: usize,
    rng: &mut StdRng,
    obs: &Registry,
    par: &Parallelism,
) -> LfpLfnSelection {
    // A corpus without Boolean predicates cannot reach this point through
    // the session driver (Strategy::fit rejects it); degrade to an
    // exhausted round rather than panicking.
    if corpus.bool_features().is_none() {
        return LfpLfnSelection::default();
    }
    let score_span = obs.span("select.score");
    let scores = score_pool(candidate, accepted, corpus, unlabeled, par);

    let mut lfp: Vec<(usize, f64)> = Vec::new();
    let mut lfn: Vec<(usize, f64)> = Vec::new();
    for (&i, &s) in unlabeled.iter().zip(&scores) {
        if s == EXCLUDED {
            continue;
        }
        if s >= LFP_BAND {
            lfp.push((i, s));
        } else {
            lfn.push((i, s));
        }
    }
    let lfp_found = lfp.len();
    let lfn_found = lfn.len();
    obs.counter_add("select.pairs_scored", unlabeled.len() as u64);
    obs.counter_add("select.lfp_found", lfp_found as u64);
    obs.counter_add("select.lfn_found", lfn_found as u64);

    // Lowest-similarity predicted matches and highest-similarity predicted
    // non-matches, half the batch each; shortfalls fill from the other.
    // Both bands already rank "most suspicious first" under descending
    // score, so a single top-k shape serves both halves.
    let half = batch / 2;
    let lfp_take = half.max(batch.saturating_sub(lfn_found));
    let mut chosen = top_k_desc(lfp, lfp_take, rng);
    let rest = batch - chosen.len().min(batch);
    chosen.extend(top_k_desc(lfn, rest, rng));
    chosen.truncate(batch);

    LfpLfnSelection {
        selection: Selection {
            chosen,
            committee_creation: Duration::ZERO,
            scoring: score_span.finish(),
        },
        lfp_found,
        lfn_found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Corpus with 2 Boolean predicates and matching continuous scores.
    /// Continuous rows carry the "true" similarity signal.
    fn corpus() -> Corpus {
        // idx 0..10: both atoms hold, high sim (true matches)
        // idx 10..20: both atoms hold, low sim (false positives of rule {0,1})
        // idx 20..30: only atom 0 holds, high sim (false negatives)
        // idx 30..40: nothing holds, low sim
        let mut feats = Vec::new();
        let mut bools = Vec::new();
        let mut truth = Vec::new();
        for i in 0..40 {
            let (b0, b1, sim, t) = match i / 10 {
                0 => (1.0, 1.0, 0.9, true),
                1 => (1.0, 1.0, 0.2, false),
                2 => (1.0, 0.0, 0.8, true),
                _ => (0.0, 0.0, 0.1, false),
            };
            feats.push(vec![sim]);
            bools.push(vec![b0, b1]);
            truth.push(t);
        }
        Corpus::from_features(feats, truth).with_bool_features(bools)
    }

    #[test]
    fn finds_lfps_and_lfns() {
        let c = corpus();
        let candidate = Conjunction::new(vec![0, 1]);
        let accepted = Dnf::empty();
        let unlabeled: Vec<usize> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let out = select(
            &candidate,
            &accepted,
            &c,
            &unlabeled,
            10,
            &mut rng,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert_eq!(out.lfp_found, 20); // all rows where both atoms hold
        assert_eq!(out.lfn_found, 10); // rows matched only by minus-rule {0}
        assert_eq!(out.selection.chosen.len(), 10);
        // LFP half should prefer the low-sim predicted matches (10..20).
        let lfp_chosen = out
            .selection
            .chosen
            .iter()
            .filter(|&&i| (10..20).contains(&i))
            .count();
        assert!(lfp_chosen >= 4, "lfp half chose {lfp_chosen} low-sim rows");
        // LFN half should prefer high-sim uncovered rows (20..30).
        let lfn_chosen = out
            .selection
            .chosen
            .iter()
            .filter(|&&i| (20..30).contains(&i))
            .count();
        assert!(lfn_chosen >= 4, "lfn half chose {lfn_chosen} rows");
    }

    #[test]
    fn score_bands_are_disjoint_and_thread_count_invariant() {
        let c = corpus();
        let candidate = Conjunction::new(vec![0, 1]);
        let unlabeled: Vec<usize> = (0..40).collect();
        let seq = score_pool(
            &candidate,
            &Dnf::empty(),
            &c,
            &unlabeled,
            &Parallelism::sequential(),
        );
        for (j, &s) in seq.iter().enumerate() {
            match j / 10 {
                0 | 1 => assert!((LFP_BAND..=LFP_BAND + 1.0).contains(&s), "idx {j}: {s}"),
                2 => assert!((0.0..=1.0).contains(&s), "idx {j}: {s}"),
                _ => assert_eq!(s, EXCLUDED, "idx {j}"),
            }
        }
        for t in [2, 3, 8] {
            let p = score_pool(
                &candidate,
                &Dnf::empty(),
                &c,
                &unlabeled,
                &Parallelism::fixed(t),
            );
            assert_eq!(seq, p, "threads={t}");
        }
    }

    #[test]
    fn accepted_rules_suppress_candidates() {
        let c = corpus();
        let candidate = Conjunction::new(vec![0, 1]);
        // An accepted rule covering everything with atom 0 removes both
        // LFP and LFN pools.
        let accepted = Dnf::new(vec![Conjunction::new(vec![0])]);
        let unlabeled: Vec<usize> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let out = select(
            &candidate,
            &accepted,
            &c,
            &unlabeled,
            10,
            &mut rng,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert!(out.exhausted());
        assert!(out.selection.chosen.is_empty());
    }

    #[test]
    fn single_atom_rule_has_no_lfns() {
        let c = corpus();
        let candidate = Conjunction::new(vec![1]);
        let unlabeled: Vec<usize> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let out = select(
            &candidate,
            &Dnf::empty(),
            &c,
            &unlabeled,
            10,
            &mut rng,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert_eq!(out.lfn_found, 0);
        assert!(out.lfp_found > 0);
    }
}
