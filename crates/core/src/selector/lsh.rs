//! Locality-sensitive hashing for margin-based selection — the baseline
//! of Jain et al. (NIPS 2010) that §5.1 contrasts with blocking
//! dimensions.
//!
//! Random-hyperplane LSH: each example gets an `H`-bit signature
//! (`bit_i = sign(r_i · x)` for Gaussian directions `r_i`), computed
//! *once* for the whole corpus. A point close to the separating
//! hyperplane `w` is nearly orthogonal to it, so its signature agrees
//! with `sign(r_i · w)` on about half the bits. Selection ranks the
//! unlabeled pool by `|hamming(sig(x), sig(w)) − H/2|` (cheap, `O(1)` per
//! example once signatures exist), exactly evaluates margins only for a
//! small oversampled candidate set, and returns the least-margin batch.
//!
//! Compared to blocking dimensions this needs no sparsity assumption, but
//! pays an upfront `O(n·H·d)` signature build and is approximate.

use super::{bottom_k_asc, Selection};
use crate::corpus::Corpus;
use alem_obs::Registry;
use mlcore::svm::LinearSvm;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Duration;

/// Maximum signature width (bits of one `u64`).
pub const MAX_BITS: usize = 64;

/// A random-hyperplane LSH index over a corpus's feature vectors.
pub struct HyperplaneLsh {
    // alem-lint: allow(flat-feature-store) -- `bits` random hyperplanes, not a per-pair feature matrix
    planes: Vec<Vec<f64>>,
    signatures: Vec<u64>,
    bits: usize,
}

/// One standard-normal sample via Box-Muller (keeps `rand_distr` out of
/// the dependency set).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn signature(planes: &[Vec<f64>], x: &[f64]) -> u64 {
    let mut sig = 0u64;
    for (b, r) in planes.iter().enumerate() {
        if linalg::dot(r, x) > 0.0 {
            sig |= 1 << b;
        }
    }
    sig
}

impl HyperplaneLsh {
    /// Build an index with `bits`-bit signatures (≤ 64) over every corpus
    /// example. This is the one-off preprocessing cost.
    pub fn build(corpus: &Corpus, bits: usize, rng: &mut StdRng, obs: &Registry) -> Self {
        assert!((1..=MAX_BITS).contains(&bits), "bits must be in 1..=64");
        let build_span = obs.span("select.index_build");
        let dim = corpus.dim();
        // alem-lint: allow(flat-feature-store) -- `bits` random hyperplanes, not a per-pair feature matrix
        let planes: Vec<Vec<f64>> = (0..bits)
            .map(|_| (0..dim).map(|_| gaussian(rng)).collect())
            .collect();
        let signatures = (0..corpus.len())
            .map(|i| signature(&planes, corpus.x(i)))
            .collect();
        build_span.finish();
        HyperplaneLsh {
            planes,
            signatures,
            bits,
        }
    }

    /// Signature width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// One approximate margin-selection round: hamming-rank the pool,
    /// exactly score the best `oversample × batch` candidates, return the
    /// least-margin `batch`.
    #[allow(clippy::too_many_arguments)]
    pub fn select(
        &self,
        svm: &LinearSvm,
        corpus: &Corpus,
        unlabeled: &[usize],
        batch: usize,
        oversample: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let score_span = obs.span("select.score");
        let w_sig = signature(&self.planes, svm.weights());
        let half = self.bits as f64 / 2.0;
        let ranked: Vec<(usize, f64)> = unlabeled
            .iter()
            .map(|&i| {
                let hamming = (self.signatures[i] ^ w_sig).count_ones() as f64;
                (i, (hamming - half).abs())
            })
            .collect();
        let shortlist = bottom_k_asc(ranked, (oversample.max(1)) * batch, rng);
        let exact: Vec<(usize, f64)> = shortlist
            .into_iter()
            .map(|i| (i, svm.margin(corpus.x(i))))
            .collect();
        obs.counter_add("select.pairs_scored", exact.len() as u64);
        let chosen = bottom_k_asc(exact, batch, rng);
        Selection {
            chosen,
            committee_creation: Duration::ZERO,
            scoring: score_span.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// 2-D corpus around the unit circle; hyperplane w = (1, 0) → points
    /// near ±(0, 1) have the least margin.
    fn ring_corpus(n: usize) -> Corpus {
        let feats: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![a.cos(), a.sin()]
            })
            .collect();
        let truth: Vec<bool> = feats.iter().map(|x| x[0] > 0.0).collect();
        Corpus::from_features(feats, truth)
    }

    #[test]
    fn build_produces_signatures_for_all() {
        let c = ring_corpus(100);
        let mut rng = StdRng::seed_from_u64(1);
        let lsh = HyperplaneLsh::build(&c, 32, &mut rng, &Registry::disabled());
        assert_eq!(lsh.signatures.len(), 100);
        assert_eq!(lsh.bits(), 32);
    }

    #[test]
    fn selects_near_hyperplane_points() {
        let c = ring_corpus(360);
        let mut rng = StdRng::seed_from_u64(1);
        let lsh = HyperplaneLsh::build(&c, 48, &mut rng, &Registry::disabled());
        let svm = LinearSvm::from_parts(vec![1.0, 0.0], 0.0);
        let unlabeled: Vec<usize> = (0..360).collect();
        let sel = lsh.select(&svm, &c, &unlabeled, 10, 4, &mut rng, &Registry::disabled());
        assert_eq!(sel.chosen.len(), 10);
        // Chosen points should have small |x[0]| (close to the w·x = 0
        // plane); allow LSH slack.
        let worst = sel
            .chosen
            .iter()
            .map(|&i| c.x(i)[0].abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 0.45, "LSH picked a far point with |x0| = {worst}");
    }

    #[test]
    fn oversample_one_still_fills_batch() {
        let c = ring_corpus(50);
        let mut rng = StdRng::seed_from_u64(2);
        let lsh = HyperplaneLsh::build(&c, 16, &mut rng, &Registry::disabled());
        let svm = LinearSvm::from_parts(vec![0.3, 0.7], 0.1);
        let unlabeled: Vec<usize> = (0..50).collect();
        let sel = lsh.select(&svm, &c, &unlabeled, 7, 1, &mut rng, &Registry::disabled());
        assert_eq!(sel.chosen.len(), 7);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=64")]
    fn rejects_oversized_signatures() {
        let c = ring_corpus(10);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = HyperplaneLsh::build(&c, 65, &mut rng, &Registry::disabled());
    }
}
