//! Margin-based example selection (§4.2).
//!
//! Scores each unlabeled example by the trained model's distance from its
//! decision boundary — `|w·x + b|` for a linear SVM, `|affine output|` for
//! the neural net — and picks the examples closest to it. Learner-aware:
//! there is no committee to build, so the whole latency is scoring time.

use super::{bottom_k_asc, Selection};
use crate::corpus::Corpus;
use alem_obs::Registry;
use rand::rngs::StdRng;
use std::time::Duration;

/// One margin-selection round. `margin_of` must return the *absolute*
/// distance from the decision boundary for a corpus example index.
pub fn select<F: Fn(&[f64]) -> f64>(
    margin_of: F,
    corpus: &Corpus,
    unlabeled: &[usize],
    batch: usize,
    rng: &mut StdRng,
    obs: &Registry,
) -> Selection {
    let score_span = obs.span("select.score");
    let scored: Vec<(usize, f64)> = unlabeled
        .iter()
        .map(|&i| (i, margin_of(corpus.x(i))))
        .collect();
    obs.counter_add("select.pairs_scored", scored.len() as u64);
    let chosen = bottom_k_asc(scored, batch, rng);
    Selection {
        chosen,
        committee_creation: Duration::ZERO,
        scoring: score_span.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::svm::LinearSvm;
    use rand::SeedableRng;

    fn corpus() -> Corpus {
        let feats: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let truth: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        Corpus::from_features(feats, truth)
    }

    #[test]
    fn picks_examples_closest_to_hyperplane() {
        let c = corpus();
        // Boundary at x = 0.5: f(x) = 2x - 1.
        let svm = LinearSvm::from_parts(vec![2.0], -1.0);
        let unlabeled: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let sel = select(
            |x| svm.margin(x),
            &c,
            &unlabeled,
            10,
            &mut rng,
            &Registry::disabled(),
        );
        assert_eq!(sel.committee_creation, Duration::ZERO);
        for &i in &sel.chosen {
            let v = c.x(i)[0];
            assert!((0.40..=0.60).contains(&v), "chose far example {v}");
        }
    }

    #[test]
    fn respects_batch_and_pool() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![2.0], -1.0);
        let unlabeled: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let sel = select(
            |x| svm.margin(x),
            &c,
            &unlabeled,
            7,
            &mut rng,
            &Registry::disabled(),
        );
        assert_eq!(sel.chosen.len(), 7);
        assert!(sel.chosen.iter().all(|&i| i < 50));
    }
}
