//! Margin-based example selection (§4.2).
//!
//! Scores each unlabeled example by the trained model's distance from its
//! decision boundary — `|w·x + b|` for a linear SVM, `|affine output|` for
//! the neural net — and picks the examples closest to it. Learner-aware:
//! there is no committee to build, so the whole latency is scoring time.

use super::{score_pool_with, scored_pool, top_k_desc, Selection};
use crate::corpus::Corpus;
use alem_obs::Registry;
use alem_par::Parallelism;
use rand::rngs::StdRng;
use std::time::Duration;

/// Ambiguity scores for the pool: the negated absolute margin, so the
/// examples closest to the decision boundary score highest. Aligned with
/// `unlabeled`; thread-count invariant.
pub fn score_pool<F>(
    margin_of: F,
    corpus: &Corpus,
    unlabeled: &[usize],
    par: &Parallelism,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    score_pool_with(par, unlabeled, |i| -margin_of(corpus.x(i)))
}

/// One margin-selection round. `margin_of` must return the *absolute*
/// distance from the decision boundary for a corpus example index.
pub fn select<F>(
    margin_of: F,
    corpus: &Corpus,
    unlabeled: &[usize],
    batch: usize,
    rng: &mut StdRng,
    obs: &Registry,
    par: &Parallelism,
) -> Selection
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let score_span = obs.span("select.score");
    let scores = score_pool(margin_of, corpus, unlabeled, par);
    obs.counter_add("select.pairs_scored", scores.len() as u64);
    let chosen = top_k_desc(scored_pool(unlabeled, &scores), batch, rng);
    Selection {
        chosen,
        committee_creation: Duration::ZERO,
        scoring: score_span.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::svm::LinearSvm;
    use rand::SeedableRng;

    fn corpus() -> Corpus {
        let feats: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let truth: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        Corpus::from_features(feats, truth)
    }

    #[test]
    fn picks_examples_closest_to_hyperplane() {
        let c = corpus();
        // Boundary at x = 0.5: f(x) = 2x - 1.
        let svm = LinearSvm::from_parts(vec![2.0], -1.0);
        let unlabeled: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let sel = select(
            |x| svm.margin(x),
            &c,
            &unlabeled,
            10,
            &mut rng,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert_eq!(sel.committee_creation, Duration::ZERO);
        for &i in &sel.chosen {
            let v = c.x(i)[0];
            assert!((0.40..=0.60).contains(&v), "chose far example {v}");
        }
    }

    #[test]
    fn respects_batch_and_pool() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![2.0], -1.0);
        let unlabeled: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let sel = select(
            |x| svm.margin(x),
            &c,
            &unlabeled,
            7,
            &mut rng,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert_eq!(sel.chosen.len(), 7);
        assert!(sel.chosen.iter().all(|&i| i < 50));
    }

    #[test]
    fn selection_is_thread_count_invariant() {
        let c = corpus();
        let svm = LinearSvm::from_parts(vec![2.0], -1.0);
        let unlabeled: Vec<usize> = (0..100).collect();
        let pick = |par: Parallelism| {
            let mut rng = StdRng::seed_from_u64(9);
            select(
                |x| svm.margin(x),
                &c,
                &unlabeled,
                10,
                &mut rng,
                &Registry::disabled(),
                &par,
            )
            .chosen
        };
        let seq = pick(Parallelism::sequential());
        for t in [2, 3, 8] {
            assert_eq!(seq, pick(Parallelism::fixed(t)), "threads={t}");
        }
    }
}
