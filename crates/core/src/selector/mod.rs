//! Example selectors: the policies that pick which unlabeled pairs to send
//! to the Oracle.
//!
//! The paper groups them into **learner-agnostic** (bootstrap
//! query-by-committee, [`qbc`]) and **learner-aware** policies: QBC over a
//! random forest's own trees ([`tree_qbc`]), margin-based selection for
//! linear and non-convex classifiers ([`margin`]) with the optional
//! blocking-dimension pruning of §5.1 ([`blocking_dim`]), and the LFP/LFN
//! heuristic for rule learners ([`lfp_lfn`]).

pub mod blocking_dim;
pub mod iwal;
pub mod lazy_margin;
pub mod lfp_lfn;
pub mod lsh;
pub mod margin;
pub mod qbc;
pub mod tree_qbc;

use alem_par::Parallelism;
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Duration;

/// Score marking an example as excluded from selection (pruned by
/// blocking dimensions, covered by an accepted rule, …). Top-k consumers
/// drop excluded entries before ranking, so an excluded example is never
/// chosen even when the pool is smaller than the batch.
pub const EXCLUDED: f64 = f64::NEG_INFINITY;

/// The workspace's single pool-scoring fan-out: score `unlabeled[j]` with
/// `score`, in parallel per `par`, returning a score vector aligned with
/// `unlabeled`. Chunk boundaries depend only on `(len, threads)` and
/// results merge in chunk order, so the output is byte-identical for any
/// thread count (see `alem_par::chunks`).
pub fn score_pool_with<F>(par: &Parallelism, unlabeled: &[usize], score: F) -> Vec<f64>
where
    F: Fn(usize) -> f64 + Sync,
{
    par.map(unlabeled, |&i| score(i))
}

/// Pair pool indices with their scores, dropping [`EXCLUDED`] entries.
pub fn scored_pool(unlabeled: &[usize], scores: &[f64]) -> Vec<(usize, f64)> {
    unlabeled
        .iter()
        .copied()
        .zip(scores.iter().copied())
        .filter(|&(_, s)| s != EXCLUDED)
        .collect()
}

/// Outcome of one selection round.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Chosen unlabeled example indices (at most the requested batch).
    pub chosen: Vec<usize>,
    /// Time spent building a classifier committee (zero for learner-aware
    /// policies — the latency decomposition of §3, "Latency").
    pub committee_creation: Duration,
    /// Time spent scoring unlabeled examples and picking the batch.
    pub scoring: Duration,
}

impl Selection {
    /// Total example-selection latency.
    pub fn total(&self) -> Duration {
        self.committee_creation + self.scoring
    }
}

/// Pick the `k` candidates with the highest score, randomizing ties by
/// shuffling before a stable sort (the paper randomizes among equally
/// ambiguous examples, §4.1).
pub fn top_k_desc<R: Rng>(mut scored: Vec<(usize, f64)>, k: usize, rng: &mut R) -> Vec<usize> {
    scored.shuffle(rng);
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

/// Pick the `k` candidates with the lowest score (e.g. smallest margin).
pub fn bottom_k_asc<R: Rng>(mut scored: Vec<(usize, f64)>, k: usize, rng: &mut R) -> Vec<usize> {
    scored.shuffle(rng);
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top_k_takes_highest() {
        let scored = vec![(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7)];
        let mut rng = StdRng::seed_from_u64(1);
        let top = top_k_desc(scored, 2, &mut rng);
        assert_eq!(top.len(), 2);
        assert!(top.contains(&1) && top.contains(&3));
    }

    #[test]
    fn bottom_k_takes_lowest() {
        let scored = vec![(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7)];
        let mut rng = StdRng::seed_from_u64(1);
        let bot = bottom_k_asc(scored, 2, &mut rng);
        assert!(bot.contains(&0) && bot.contains(&2));
    }

    #[test]
    fn ties_are_randomized() {
        let scored: Vec<(usize, f64)> = (0..100).map(|i| (i, 1.0)).collect();
        let a = top_k_desc(scored.clone(), 5, &mut StdRng::seed_from_u64(1));
        let b = top_k_desc(scored, 5, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b, "different seeds should break ties differently");
    }

    #[test]
    fn k_larger_than_input_returns_all() {
        let scored = vec![(7, 0.3)];
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(top_k_desc(scored, 10, &mut rng), vec![7]);
    }

    #[test]
    fn scored_pool_drops_excluded() {
        let unlabeled = vec![4, 9, 2, 7];
        let scores = vec![0.5, EXCLUDED, 0.1, EXCLUDED];
        assert_eq!(scored_pool(&unlabeled, &scores), vec![(4, 0.5), (2, 0.1)]);
    }

    #[test]
    fn score_pool_with_is_thread_count_invariant() {
        let unlabeled: Vec<usize> = (0..97).collect();
        let f = |i: usize| (i as f64).sin();
        let seq = score_pool_with(&Parallelism::sequential(), &unlabeled, f);
        for t in [2, 3, 8] {
            assert_eq!(seq, score_pool_with(&Parallelism::fixed(t), &unlabeled, f));
        }
        assert_eq!(seq.len(), 97);
    }
}
