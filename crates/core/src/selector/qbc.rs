//! Learner-agnostic query-by-committee (§4.1).
//!
//! Draws `B` bootstrap resamples of the labeled data, trains a committee of
//! `B` classifiers, and scores every unlabeled example by the vote variance
//! of Mozafari et al.: `(P/C)(1 − P/C)` where `P` of `C` committee members
//! vote match. Examples with the highest variance are the most ambiguous.
//! The latency is reported split into committee-creation and
//! example-scoring time, the decomposition plotted in Fig. 10.

use super::{score_pool_with, scored_pool, top_k_desc, Selection};
use crate::corpus::Corpus;
use crate::learner::Trainer;
use alem_obs::Registry;
use alem_par::Parallelism;
use mlcore::data::bootstrap_indices;
use mlcore::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Train a bootstrap committee of `size` models on the labeled examples,
/// one worker per chunk of members.
///
/// Every member gets its own `StdRng` seeded from a u64 pre-drawn on the
/// caller's thread, so member `i`'s bootstrap sample and training run are
/// independent of scheduling: the committee is byte-identical for any
/// thread count.
///
/// Returns an empty committee when `use_bool_features` is requested on a
/// corpus without Boolean predicates — [`crate::strategy::Strategy::fit`]
/// rejects that configuration before selection can reach this point.
pub fn train_committee<T: Trainer>(
    trainer: &T,
    corpus: &Corpus,
    labeled: &[(usize, bool)],
    size: usize,
    rng: &mut StdRng,
    use_bool_features: bool,
    par: &Parallelism,
) -> Vec<T::Model> {
    let bools = if use_bool_features {
        match corpus.bool_features() {
            Some(b) => Some(b),
            None => return Vec::new(),
        }
    } else {
        None
    };
    let rows = |i: usize| -> Vec<f64> {
        match bools {
            Some(b) => b[i].clone(),
            None => corpus.x(i).to_vec(),
        }
    };
    let seeds: Vec<u64> = (0..size).map(|_| rng.gen()).collect();
    par.map(&seeds, |&seed| {
        let mut mrng = StdRng::seed_from_u64(seed);
        let idx = bootstrap_indices(labeled.len(), &mut mrng);
        // alem-lint: allow(flat-feature-store) -- O(labeled) bootstrap sample per committee member, not the pool matrix
        let xs: Vec<Vec<f64>> = idx.iter().map(|&j| rows(labeled[j].0)).collect();
        let ys: Vec<bool> = idx.iter().map(|&j| labeled[j].1).collect();
        trainer.train(&xs, &ys, &mut mrng)
    })
}

/// Vote variance of a committee on one example.
pub fn committee_variance<M: Classifier>(committee: &[M], x: &[f64]) -> f64 {
    let c = committee.len() as f64;
    let p = committee.iter().filter(|m| m.predict(x)).count() as f64 / c;
    p * (1.0 - p)
}

/// Vote-variance scores for the pool, aligned with `unlabeled`; higher =
/// more committee disagreement. Thread-count invariant.
pub fn score_pool<M: Classifier + Sync>(
    committee: &[M],
    corpus: &Corpus,
    unlabeled: &[usize],
    use_bool_features: bool,
    par: &Parallelism,
) -> Vec<f64> {
    let bools = if use_bool_features {
        corpus.bool_features()
    } else {
        None
    };
    score_pool_with(par, unlabeled, |i| {
        let x: &[f64] = match bools {
            Some(b) => &b[i],
            None => corpus.x(i),
        };
        committee_variance(committee, x)
    })
}

/// One QBC selection round: build the committee, score the unlabeled pool,
/// return the `batch` most ambiguous examples. Returns the trained
/// committee alongside the selection so callers can reuse it for
/// [`crate::strategy::Strategy::score_pool`].
#[allow(clippy::too_many_arguments)] // mirrors the pipeline's natural inputs
pub fn select<T: Trainer>(
    trainer: &T,
    committee_size: usize,
    corpus: &Corpus,
    labeled: &[(usize, bool)],
    unlabeled: &[usize],
    batch: usize,
    rng: &mut StdRng,
    use_bool_features: bool,
    obs: &Registry,
    par: &Parallelism,
) -> (Selection, Vec<T::Model>) {
    let committee_span = obs.span("select.committee");
    let committee = train_committee(
        trainer,
        corpus,
        labeled,
        committee_size,
        rng,
        use_bool_features,
        par,
    );
    let committee_creation = committee_span.finish();
    if committee.is_empty() {
        return (Selection::default(), committee);
    }

    let score_span = obs.span("select.score");
    let scores = score_pool(&committee, corpus, unlabeled, use_bool_features, par);
    obs.counter_add("select.pairs_scored", scores.len() as u64);
    let chosen = top_k_desc(scored_pool(unlabeled, &scores), batch, rng);
    let scoring = score_span.finish();

    (
        Selection {
            chosen,
            committee_creation,
            scoring,
        },
        committee,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::SvmTrainer;
    use rand::SeedableRng;

    fn corpus() -> Corpus {
        let feats: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let truth: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        Corpus::from_features(feats, truth)
    }

    fn labeled_seed(c: &Corpus) -> Vec<(usize, bool)> {
        [0, 10, 20, 30, 60, 70, 80, 90]
            .iter()
            .map(|&i| (i, c.truth(i)))
            .collect()
    }

    #[test]
    fn committee_has_requested_size() {
        let c = corpus();
        let labeled = labeled_seed(&c);
        let mut rng = StdRng::seed_from_u64(3);
        let committee = train_committee(
            &SvmTrainer::default(),
            &c,
            &labeled,
            5,
            &mut rng,
            false,
            &Parallelism::sequential(),
        );
        assert_eq!(committee.len(), 5);
    }

    #[test]
    fn committee_is_thread_count_invariant() {
        let c = corpus();
        let labeled = labeled_seed(&c);
        let train = |par: Parallelism| {
            let mut rng = StdRng::seed_from_u64(7);
            train_committee(
                &SvmTrainer::default(),
                &c,
                &labeled,
                6,
                &mut rng,
                false,
                &par,
            )
        };
        let seq = train(Parallelism::sequential());
        for t in [2, 3, 8] {
            let p = train(Parallelism::fixed(t));
            for (a, b) in seq.iter().zip(&p) {
                for i in 0..c.len() {
                    assert_eq!(
                        a.decision_value(c.x(i)),
                        b.decision_value(c.x(i)),
                        "threads={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn selects_from_unlabeled_only() {
        let c = corpus();
        let labeled = labeled_seed(&c);
        let unlabeled: Vec<usize> = (0..100)
            .filter(|i| !labeled.iter().any(|(j, _)| j == i))
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let (sel, committee) = select(
            &SvmTrainer::default(),
            4,
            &c,
            &labeled,
            &unlabeled,
            10,
            &mut rng,
            false,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert_eq!(committee.len(), 4);
        assert_eq!(sel.chosen.len(), 10);
        for i in &sel.chosen {
            assert!(unlabeled.contains(i));
        }
        // No duplicates.
        let mut sorted = sel.chosen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn ambiguous_examples_cluster_near_boundary() {
        let c = corpus();
        let labeled = labeled_seed(&c);
        let unlabeled: Vec<usize> = (0..100)
            .filter(|i| !labeled.iter().any(|(j, _)| j == i))
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let (sel, _) = select(
            &SvmTrainer::default(),
            8,
            &c,
            &labeled,
            &unlabeled,
            10,
            &mut rng,
            false,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        // The decision boundary is at 0.5; the committee should disagree
        // mostly near it.
        let near = sel
            .chosen
            .iter()
            .filter(|&&i| (0.3..0.7).contains(&c.x(i)[0]))
            .count();
        assert!(near >= 6, "only {near}/10 chosen near the boundary");
    }

    #[test]
    fn variance_bounds() {
        let c = corpus();
        let labeled = labeled_seed(&c);
        let mut rng = StdRng::seed_from_u64(3);
        let committee = train_committee(
            &SvmTrainer::default(),
            &c,
            &labeled,
            6,
            &mut rng,
            false,
            &Parallelism::sequential(),
        );
        for i in 0..c.len() {
            let v = committee_variance(&committee, c.x(i));
            assert!((0.0..=0.25 + 1e-12).contains(&v));
        }
    }
}
