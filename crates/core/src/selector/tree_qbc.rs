//! Learner-aware QBC for tree ensembles (§4.1.1).
//!
//! A random forest already contains a committee — its trees — built during
//! training, so the bootstrap committee-creation step of learner-agnostic
//! QBC is unnecessary. Selection only scores the unlabeled pool by the
//! forest's vote variance, which is why Fig. 10c shows near-flat selection
//! times across forest sizes and Fig. 13 shows trees with the lowest user
//! wait times.

use super::{score_pool_with, scored_pool, top_k_desc, Selection};
use crate::corpus::Corpus;
use alem_obs::Registry;
use alem_par::Parallelism;
use mlcore::forest::RandomForest;
use rand::rngs::StdRng;
use std::time::Duration;

/// Vote-variance scores for the pool, aligned with `unlabeled`; higher =
/// more tree disagreement. Thread-count invariant.
pub fn score_pool(
    forest: &RandomForest,
    corpus: &Corpus,
    unlabeled: &[usize],
    par: &Parallelism,
) -> Vec<f64> {
    score_pool_with(par, unlabeled, |i| forest.vote_variance(corpus.x(i)))
}

/// One learner-aware QBC round over an already-trained forest.
pub fn select(
    forest: &RandomForest,
    corpus: &Corpus,
    unlabeled: &[usize],
    batch: usize,
    rng: &mut StdRng,
    obs: &Registry,
    par: &Parallelism,
) -> Selection {
    let score_span = obs.span("select.score");
    let scores = score_pool(forest, corpus, unlabeled, par);
    obs.counter_add("select.pairs_scored", scores.len() as u64);
    let chosen = top_k_desc(scored_pool(unlabeled, &scores), batch, rng);
    Selection {
        chosen,
        committee_creation: Duration::ZERO,
        scoring: score_span.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcore::data::TrainSet;
    use mlcore::forest::ForestConfig;
    use rand::SeedableRng;

    fn corpus() -> Corpus {
        let feats: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let truth: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        Corpus::from_features(feats, truth)
    }

    #[test]
    fn no_committee_creation_time() {
        let c = corpus();
        let labeled: Vec<usize> = vec![0, 10, 20, 30, 60, 70, 80, 90];
        let xs: Vec<Vec<f64>> = labeled.iter().map(|&i| c.x(i).to_vec()).collect();
        let ys: Vec<bool> = labeled.iter().map(|&i| c.truth(i)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let forest = ForestConfig::with_trees(10).train(&TrainSet::new(&xs, &ys), &mut rng);
        let unlabeled: Vec<usize> = (0..100).filter(|i| !labeled.contains(i)).collect();
        let sel = select(
            &forest,
            &c,
            &unlabeled,
            10,
            &mut rng,
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        assert_eq!(sel.committee_creation, Duration::ZERO);
        assert_eq!(sel.chosen.len(), 10);
        for i in &sel.chosen {
            assert!(unlabeled.contains(i));
        }
    }
}
