//! Fault-tolerant, checkpointable active-learning sessions.
//!
//! A session is [`crate::loop_::ActiveLearner::run`] with survival gear: it
//! validates its configuration up front ([`AlemError::InvalidConfig`]
//! instead of panics), rides out transient Oracle failures with a
//! [`RetryPolicy`], degrades gracefully around degenerate inputs
//! (single-class seeds, empty selector batches, non-finite features), and
//! can write a [`Checkpoint`] every N iterations so a killed run resumes
//! exactly where it stopped.
//!
//! # Determinism and resume
//!
//! Every iteration `k` draws from its own RNG, derived from the master
//! seed: `seed ⊕ φ·(k+1)`. Setup forks slot 0 into one sub-RNG per concern
//! (hold-out split, seed draw) so the evaluation mode cannot perturb the
//! selection stream. The checkpointed "RNG
//! state" is therefore just `(master_seed, iter_no)` — resuming
//! reconstructs iteration `k`'s generator bit-for-bit. For strategies that
//! refit from scratch each iteration (all of the paper's core strategies),
//! a resumed run's [`RunResult`] is identical to the uninterrupted run's
//! on every deterministic field (see
//! [`RunResult::deterministic_fingerprint`]); wall-clock timings naturally
//! differ. Strategies carrying mutable cross-iteration state (the active
//! ensemble, LFP/LFN caches) resume correctly but not bit-identically —
//! DESIGN.md documents the fault model in full.

use crate::corpus::Corpus;
use crate::error::AlemError;
use crate::evaluator::{confusion_over, iteration_stats, IterationStats, RunResult};
use crate::loop_::{ActiveLearner, EvalMode, LoopParams};
use crate::oracle::{OracleAnswer, QueryOracle, RetryPolicy};
use crate::strategy::Strategy;
use alem_obs::Registry;
use alem_par::Parallelism;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Format version written into checkpoints; loading any other version
/// fails with [`AlemError::CheckpointCorrupt`].
pub const CHECKPOINT_VERSION: u32 = 1;

/// Derive the RNG for a session slot (0 = setup, k+1 = iteration k).
fn derive_rng(master_seed: u64, slot: u64) -> StdRng {
    StdRng::seed_from_u64(master_seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(slot + 1))
}

/// Session-level knobs layered on top of [`LoopParams`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Write a checkpoint every N iterations (`None` = never).
    pub checkpoint_every: Option<usize>,
    /// Where checkpoints go (required when `checkpoint_every` or
    /// `halt_after` is set).
    pub checkpoint_path: Option<PathBuf>,
    /// Retry policy for transient Oracle failures.
    pub retry: RetryPolicy,
    /// Simulate a kill: checkpoint and stop at the start of iteration N
    /// (testing hook for the resume invariant; `None` = run to completion).
    pub halt_after: Option<usize>,
    /// Consecutive zero-progress iterations (every selected example
    /// abstained) tolerated before the session fails with
    /// [`AlemError::Stalled`].
    pub max_stalled_iters: usize,
    /// Telemetry registry; defaults to [`Registry::disabled`]. Spans,
    /// counters, and gauges recorded here never feed back into the
    /// learner, so enabling it cannot change a run's
    /// [`RunResult::deterministic_fingerprint`].
    pub obs: Registry,
    /// Thread-count policy for the parallel hot paths (committee/forest
    /// training and pool scoring). Results are byte-identical for any
    /// value — chunk boundaries depend only on `(len, n_threads)` and
    /// per-member RNG seeds are pre-drawn — so this knob only trades
    /// wall-clock for cores. Defaults to [`Parallelism::auto`];
    /// [`Parallelism::sequential`] reproduces the single-threaded path.
    pub parallelism: Parallelism,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            checkpoint_every: None,
            checkpoint_path: None,
            retry: RetryPolicy::default(),
            halt_after: None,
            max_stalled_iters: 5,
            obs: Registry::disabled(),
            parallelism: Parallelism::default(),
        }
    }
}

/// Serializable snapshot of a session at an iteration boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The master seed the session was started with.
    pub master_seed: u64,
    /// Iteration about to run when the snapshot was taken.
    pub iter_no: usize,
    /// Consecutive zero-progress iterations at snapshot time.
    pub stalled: usize,
    /// Cumulative labeled examples (index, oracle label).
    pub labeled: Vec<(usize, bool)>,
    /// Remaining unlabeled pool indices.
    pub unlabeled: Vec<usize>,
    /// Evaluation set indices.
    pub eval_idx: Vec<usize>,
    /// Per-iteration statistics recorded so far.
    pub iterations: Vec<IterationStats>,
    /// Oracle queries consumed so far (replayed on resume via
    /// [`QueryOracle::fast_forward`]).
    pub oracle_queries: u64,
    /// Loop parameters in force (resume uses these, not the learner's).
    pub params: LoopParams,
    /// Strategy name — resuming under a different strategy is rejected.
    pub strategy: String,
    /// Dataset name.
    pub dataset: String,
    /// Corpus size — resuming on a different corpus is rejected.
    pub corpus_len: usize,
}

impl Checkpoint {
    /// Atomically write the checkpoint to `path` (temp file + rename, so a
    /// kill mid-write never leaves a truncated checkpoint behind).
    pub fn save(&self, path: &Path) -> Result<(), AlemError> {
        let json = serde_json::to_string(self)
            .map_err(|e| AlemError::Io(format!("serializing checkpoint: {e}")))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load and validate a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, AlemError> {
        let text = std::fs::read_to_string(path)?;
        let ckpt: Checkpoint = serde_json::from_str(&text)
            .map_err(|e| AlemError::CheckpointCorrupt(format!("{}: {e}", path.display())))?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(AlemError::CheckpointCorrupt(format!(
                "version {} (this build reads {CHECKPOINT_VERSION})",
                ckpt.version
            )));
        }
        Ok(ckpt)
    }
}

/// How a session ended.
#[derive(Debug)]
pub enum SessionOutcome {
    /// The loop ran to a normal termination.
    Complete(RunResult),
    /// The session stopped at a simulated kill point after checkpointing.
    Halted {
        /// Where the checkpoint was written.
        checkpoint: PathBuf,
        /// Labels consumed when halted.
        labels_used: usize,
        /// Iterations fully recorded before halting.
        iterations_done: usize,
    },
}

impl SessionOutcome {
    /// The run result, if the session completed.
    pub fn run_result(self) -> Option<RunResult> {
        match self {
            SessionOutcome::Complete(r) => Some(r),
            SessionOutcome::Halted { .. } => None,
        }
    }
}

/// Mutable state threaded through the session loop (and captured by
/// checkpoints).
struct LiveState {
    master_seed: u64,
    iter_no: usize,
    stalled: usize,
    labeled: Vec<(usize, bool)>,
    unlabeled: Vec<usize>,
    eval_idx: Vec<usize>,
    iterations: Vec<IterationStats>,
}

fn validate_params(params: &LoopParams) -> Result<(), AlemError> {
    if params.seed_size == 0 {
        return Err(AlemError::InvalidConfig(
            "seed_size must be at least 1".into(),
        ));
    }
    if params.batch_size == 0 {
        return Err(AlemError::InvalidConfig(
            "batch_size must be at least 1".into(),
        ));
    }
    if params.max_labels == 0 {
        return Err(AlemError::InvalidConfig(
            "max_labels must be at least 1".into(),
        ));
    }
    if let EvalMode::Holdout { test_frac } = params.eval {
        if !(0.0..1.0).contains(&test_frac) {
            return Err(AlemError::InvalidConfig(format!(
                "holdout test_frac must be in [0, 1), got {test_frac}"
            )));
        }
    }
    if let Some(t) = params.stop_at_f1 {
        if !(0.0..=1.0).contains(&t) {
            return Err(AlemError::InvalidConfig(format!(
                "stop_at_f1 must be in [0, 1], got {t}"
            )));
        }
    }
    Ok(())
}

fn one_class(labeled: &[(usize, bool)]) -> bool {
    labeled.iter().all(|&(_, b)| b) || labeled.iter().all(|&(_, b)| !b)
}

impl<S: Strategy> ActiveLearner<S> {
    /// Run a fault-tolerant session from scratch. Like
    /// [`ActiveLearner::run`] but with checkpointing, retries, and the
    /// simulated-kill hook of `config`.
    pub fn run_session(
        &mut self,
        corpus: &Corpus,
        oracle: &dyn QueryOracle,
        seed: u64,
        config: &SessionConfig,
    ) -> Result<SessionOutcome, AlemError> {
        let params = self.params.clone();
        validate_params(&params)?;
        if corpus.is_empty() {
            return Err(AlemError::DegenerateLabels("corpus has no pairs".into()));
        }
        if oracle.universe() < corpus.len() {
            return Err(AlemError::InvalidConfig(format!(
                "oracle covers {} examples but the corpus has {}",
                oracle.universe(),
                corpus.len()
            )));
        }
        if params.seed_size > params.max_labels {
            return Err(AlemError::BudgetExhausted {
                used: params.seed_size,
                budget: params.max_labels,
            });
        }

        // One sub-RNG per setup concern, forked from slot 0 in a fixed
        // order. The hold-out split and the seed draw must not share a
        // stream: with a shared stream the split's shuffles advance the
        // generator, so merely switching `EvalMode` rewired which examples
        // the seed picked. With dedicated streams, `Progressive` and
        // `Holdout` runs on the same master seed draw the same seed labels
        // (modulo examples the split holds out).
        let mut setup_rng = derive_rng(seed, 0);
        let mut eval_rng = StdRng::seed_from_u64(setup_rng.gen());
        let mut pool_rng = StdRng::seed_from_u64(setup_rng.gen());
        let seed_span = config.obs.span("seed");

        // Build the selection pool and the evaluation set.
        let (mut pool, eval_idx): (Vec<usize>, Vec<usize>) = match params.eval {
            EvalMode::Progressive => ((0..corpus.len()).collect(), (0..corpus.len()).collect()),
            EvalMode::Holdout { test_frac } => corpus.split_holdout(test_frac, &mut eval_rng),
        };

        // Random initial seed from the pool; abstained examples go back to
        // the unlabeled pool and the cursor moves on. The pool is brought
        // to canonical order first so the seed draw is a pure function of
        // `pool_rng` and the pool's *contents*, not of how the eval split
        // happened to order it.
        pool.sort_unstable();
        pool.shuffle(&mut pool_rng);
        let seed_n = params.seed_size.min(pool.len());
        let mut labeled: Vec<(usize, bool)> = Vec::with_capacity(seed_n);
        let mut skipped: Vec<usize> = Vec::new();
        let mut cursor = 0;
        while labeled.len() < seed_n && cursor < pool.len() {
            let i = pool[cursor];
            cursor += 1;
            match config.retry.query_observed(oracle, i, &config.obs)? {
                OracleAnswer::Label(b) => labeled.push((i, b)),
                OracleAnswer::Abstain => skipped.push(i),
            }
        }
        let mut unlabeled: Vec<usize> = skipped;
        unlabeled.extend(pool.drain(cursor..));
        if labeled.is_empty() {
            return Err(AlemError::DegenerateLabels(
                "no seed labels: the oracle abstained on every seed example".into(),
            ));
        }

        // Graceful degradation: a single-class seed trains a degenerate
        // model, so draw extra random labels (bounded by one extra seed's
        // worth — a genuinely one-class corpus must not burn the budget).
        let mut extra = 0usize;
        while one_class(&labeled)
            && extra < seed_n
            && !unlabeled.is_empty()
            && labeled.len() < params.max_labels
        {
            let j = pool_rng.gen_range(0..unlabeled.len());
            let i = unlabeled.swap_remove(j);
            extra += 1;
            match config.retry.query_observed(oracle, i, &config.obs)? {
                OracleAnswer::Label(b) => labeled.push((i, b)),
                OracleAnswer::Abstain => unlabeled.push(i),
            }
        }
        if extra > 0 {
            eprintln!(
                "alem: single-class seed; drew {extra} extra random label(s) ({})",
                if one_class(&labeled) {
                    "still one class — proceeding"
                } else {
                    "now two classes"
                }
            );
        }

        if corpus.sanitized_features() > 0 {
            eprintln!(
                "alem: corpus '{}' had {} non-finite feature value(s) sanitized to 0",
                corpus.name(),
                corpus.sanitized_features()
            );
        }

        seed_span.finish();
        let state = LiveState {
            master_seed: seed,
            iter_no: 0,
            stalled: 0,
            labeled,
            unlabeled,
            eval_idx,
            iterations: Vec::new(),
        };
        self.drive(corpus, oracle, &params, config, state)
    }

    /// Resume a checkpointed session. The Oracle is fast-forwarded past
    /// the queries the interrupted run consumed, and the loop continues
    /// from the checkpointed iteration under the checkpointed parameters.
    pub fn resume_session(
        &mut self,
        corpus: &Corpus,
        oracle: &dyn QueryOracle,
        checkpoint: Checkpoint,
        config: &SessionConfig,
    ) -> Result<SessionOutcome, AlemError> {
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(AlemError::CheckpointCorrupt(format!(
                "version {} (this build reads {CHECKPOINT_VERSION})",
                checkpoint.version
            )));
        }
        if checkpoint.corpus_len != corpus.len() {
            return Err(AlemError::CheckpointCorrupt(format!(
                "checkpoint was taken on a corpus of {} pairs, this one has {}",
                checkpoint.corpus_len,
                corpus.len()
            )));
        }
        let strategy_name = self.strategy.name();
        if checkpoint.strategy != strategy_name {
            return Err(AlemError::InvalidConfig(format!(
                "checkpoint was taken with strategy '{}', learner runs '{}'",
                checkpoint.strategy, strategy_name
            )));
        }
        validate_params(&checkpoint.params)?;
        oracle.fast_forward(checkpoint.oracle_queries);

        let params = checkpoint.params.clone();
        let state = LiveState {
            master_seed: checkpoint.master_seed,
            iter_no: checkpoint.iter_no,
            stalled: checkpoint.stalled,
            labeled: checkpoint.labeled,
            unlabeled: checkpoint.unlabeled,
            eval_idx: checkpoint.eval_idx,
            iterations: checkpoint.iterations,
        };
        self.drive(corpus, oracle, &params, config, state)
    }

    /// The shared session loop (fresh runs and resumes both land here).
    fn drive(
        &mut self,
        corpus: &Corpus,
        oracle: &dyn QueryOracle,
        params: &LoopParams,
        config: &SessionConfig,
        mut st: LiveState,
    ) -> Result<SessionOutcome, AlemError> {
        let strategy_name = self.strategy.name();
        let snapshot = |st: &LiveState, queries: u64| Checkpoint {
            version: CHECKPOINT_VERSION,
            master_seed: st.master_seed,
            iter_no: st.iter_no,
            stalled: st.stalled,
            labeled: st.labeled.clone(),
            unlabeled: st.unlabeled.clone(),
            eval_idx: st.eval_idx.clone(),
            iterations: st.iterations.clone(),
            oracle_queries: queries,
            params: params.clone(),
            strategy: strategy_name.clone(),
            dataset: corpus.name().to_owned(),
            corpus_len: corpus.len(),
        };

        let obs = &config.obs;
        // Install the session's thread-count policy; results are invariant
        // to it by construction, so this only affects wall-clock.
        self.strategy.set_parallelism(config.parallelism);
        obs.gauge_set("par.threads", config.parallelism.threads() as u64);
        let mut warned_empty_selection = false;
        loop {
            let k = st.iter_no;
            obs.set_iter(k as u64);
            let iter_span = obs.span("iteration");
            obs.counter_add(
                "par.chunks",
                config.parallelism.chunk_count(st.unlabeled.len()) as u64,
            );

            // Checkpoint at iteration boundaries (idempotent on resume).
            let due = config
                .checkpoint_every
                .is_some_and(|every| every > 0 && k > 0 && k.is_multiple_of(every));
            let halting = config.halt_after == Some(k) && k > 0;
            if due || halting {
                let path = config.checkpoint_path.as_ref().ok_or_else(|| {
                    AlemError::InvalidConfig(
                        "checkpointing requested but no checkpoint_path set".into(),
                    )
                })?;
                let ckpt_span = obs.span("checkpoint.write");
                snapshot(&st, oracle.queries()).save(path)?;
                ckpt_span.finish();
                if halting {
                    return Ok(SessionOutcome::Halted {
                        checkpoint: path.clone(),
                        labels_used: st.labeled.len(),
                        iterations_done: st.iterations.len(),
                    });
                }
            }

            let mut rng = derive_rng(st.master_seed, k as u64 + 1);

            // Train on the cumulative labeled data.
            let train_span = obs.span("train");
            self.strategy.fit(corpus, &st.labeled, &mut rng)?;
            let train_time = train_span.finish();

            // Evaluate against ground truth.
            let eval_span = obs.span("eval");
            let confusion = confusion_over(
                |i| self.strategy.predict(corpus, i),
                |i| corpus.truth(i),
                &st.eval_idx,
            );
            eval_span.finish();
            let mut stats = iteration_stats(
                k,
                st.labeled.len(),
                &confusion,
                train_time,
                std::time::Duration::ZERO,
                std::time::Duration::ZERO,
            );
            let extra = self.strategy.stats();
            stats.atoms = extra.atoms;
            stats.depth = extra.depth;
            stats.accepted_models = extra.accepted_models;
            stats.pruned = extra.pruned;

            // Termination checks before selecting more labels.
            let reached_target = params.stop_at_f1.is_some_and(|t| stats.f1 >= t);
            let out_of_budget = st.labeled.len() + params.batch_size > params.max_labels;
            if reached_target
                || out_of_budget
                || st.unlabeled.is_empty()
                || self.strategy.terminated()
            {
                st.iterations.push(stats);
                break;
            }

            // Select and label the next batch.
            let select_span = obs.span("select");
            let selection = self.strategy.select(
                corpus,
                &st.labeled,
                &st.unlabeled,
                params.batch_size,
                &mut rng,
                obs,
            );
            select_span.finish();
            stats.committee_secs = selection.committee_creation.as_secs_f64();
            stats.scoring_secs = selection.scoring.as_secs_f64();
            st.iterations.push(stats);

            let mut chosen = selection.chosen;
            if chosen.is_empty() {
                if self.strategy.terminated() {
                    break; // deliberate exhaustion (e.g. LFP/LFN ran dry)
                }
                // Graceful degradation: a selector that returns an empty
                // batch without terminating gets a random batch instead.
                if !warned_empty_selection {
                    eprintln!(
                        "alem: selector returned an empty batch at iteration {k}; \
                         falling back to random sampling"
                    );
                    warned_empty_selection = true;
                }
                let mut candidates = st.unlabeled.clone();
                candidates.shuffle(&mut rng);
                candidates.truncate(params.batch_size);
                chosen = candidates;
                if chosen.is_empty() {
                    break;
                }
            }

            let oracle_span = obs.span("oracle.query");
            let mut new: Vec<(usize, bool)> = Vec::with_capacity(chosen.len());
            for &i in &chosen {
                match config.retry.query_observed(oracle, i, obs)? {
                    OracleAnswer::Label(b) => new.push((i, b)),
                    OracleAnswer::Abstain => {} // stays unlabeled, re-selectable
                }
            }
            oracle_span.finish();
            st.unlabeled.retain(|i| !new.iter().any(|&(j, _)| j == *i));
            if new.is_empty() {
                st.stalled += 1;
                if st.stalled > config.max_stalled_iters {
                    return Err(AlemError::Stalled {
                        iterations: st.stalled,
                    });
                }
            } else {
                st.stalled = 0;
                st.labeled.extend(new.iter().copied());
                self.strategy.post_label(
                    corpus,
                    &new,
                    &mut st.labeled,
                    &mut st.unlabeled,
                    &mut rng,
                    obs,
                );
            }
            obs.gauge_set("pool.unlabeled", st.unlabeled.len() as u64);
            iter_span.finish();

            st.iter_no += 1;
        }

        Ok(SessionOutcome::Complete(RunResult {
            strategy: self.strategy.name(),
            dataset: corpus.name().to_owned(),
            iterations: st.iterations,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::SvmTrainer;
    use crate::oracle::{AbstainingOracle, Oracle, TransientOracle};
    use crate::strategy::{MarginSvmStrategy, TreeQbcStrategy};
    use std::time::Duration;

    fn corpus(n: usize) -> Corpus {
        let feats: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, (i % 13) as f64 / 13.0])
            .collect();
        let truth: Vec<bool> = (0..n).map(|i| i >= 3 * n / 4).collect();
        Corpus::from_features(feats, truth)
    }

    fn params() -> LoopParams {
        LoopParams {
            seed_size: 20,
            batch_size: 10,
            max_labels: 120,
            eval: EvalMode::Progressive,
            stop_at_f1: None,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("alem-session-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let ckpt = Checkpoint {
            version: CHECKPOINT_VERSION,
            master_seed: 42,
            iter_no: 3,
            stalled: 1,
            labeled: vec![(0, true), (5, false)],
            unlabeled: vec![1, 2, 3],
            eval_idx: vec![0, 1, 2, 3, 4, 5],
            iterations: vec![],
            oracle_queries: 2,
            params: LoopParams::default(),
            strategy: "Linear-Margin".into(),
            dataset: "toy".into(),
            corpus_len: 6,
        };
        let path = tmp_path("roundtrip");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(AlemError::CheckpointCorrupt(_))
        ));
        std::fs::write(&path, "{\"version\": 999}").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(AlemError::CheckpointCorrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn halt_and_resume_matches_uninterrupted_run() {
        let c = corpus(300);

        let full = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al =
                ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
            al.run(&c, &oracle, 17).unwrap()
        };
        assert!(
            full.iterations.len() > 4,
            "need a few iterations to halt mid-run"
        );

        let path = tmp_path("halt-resume");
        let halted_cfg = SessionConfig {
            checkpoint_path: Some(path.clone()),
            halt_after: Some(3),
            ..SessionConfig::default()
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        match al.run_session(&c, &oracle, 17, &halted_cfg).unwrap() {
            SessionOutcome::Halted {
                iterations_done, ..
            } => assert_eq!(iterations_done, 3),
            SessionOutcome::Complete(_) => panic!("session should have halted"),
        }

        // A fresh learner + fresh oracle resumes from the checkpoint.
        let ckpt = Checkpoint::load(&path).unwrap();
        let oracle2 = Oracle::perfect(c.truths().to_vec());
        let mut al2 = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        let resumed = al2
            .resume_session(&c, &oracle2, ckpt, &SessionConfig::default())
            .unwrap()
            .run_result()
            .unwrap();

        assert_eq!(
            resumed.deterministic_fingerprint(),
            full.deterministic_fingerprint()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_corpus_and_strategy() {
        let c = corpus(100);
        let ckpt = Checkpoint {
            version: CHECKPOINT_VERSION,
            master_seed: 1,
            iter_no: 1,
            stalled: 0,
            labeled: vec![(0, false)],
            unlabeled: vec![1, 2],
            eval_idx: vec![0, 1, 2],
            iterations: vec![],
            oracle_queries: 1,
            params: params(),
            strategy: "Linear-Margin(AllDim)".into(),
            dataset: "toy".into(),
            corpus_len: 999, // wrong
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        assert!(matches!(
            al.resume_session(&c, &oracle, ckpt.clone(), &SessionConfig::default()),
            Err(AlemError::CheckpointCorrupt(_))
        ));

        let mut wrong_strategy = ckpt;
        wrong_strategy.corpus_len = 100;
        wrong_strategy.strategy = "SomethingElse".into();
        assert!(matches!(
            al.resume_session(&c, &oracle, wrong_strategy, &SessionConfig::default()),
            Err(AlemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_params_error_instead_of_panicking() {
        let c = corpus(50);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let bad = LoopParams {
            batch_size: 0,
            ..params()
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), bad);
        assert!(matches!(
            al.run(&c, &oracle, 1),
            Err(AlemError::InvalidConfig(_))
        ));

        let over_budget = LoopParams {
            seed_size: 80,
            max_labels: 40,
            ..params()
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), over_budget);
        assert!(matches!(
            al.run(&c, &oracle, 1),
            Err(AlemError::BudgetExhausted {
                used: 80,
                budget: 40
            })
        ));
    }

    #[test]
    fn small_oracle_is_rejected() {
        let c = corpus(50);
        let oracle = Oracle::perfect(vec![true; 10]); // covers too little
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        assert!(matches!(
            al.run(&c, &oracle, 1),
            Err(AlemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn transient_failures_with_retry_complete_the_budget() {
        let c = corpus(300);
        // 20% failure rate, 5 attempts: P(5 consecutive failures) = 0.032%
        // per query — the full budget completes with near certainty.
        let oracle = TransientOracle::new(Oracle::perfect(c.truths().to_vec()), 0.2, 71).unwrap();
        let cfg = SessionConfig {
            retry: RetryPolicy {
                max_attempts: 5,
                base_delay: Duration::from_micros(10),
                multiplier: 2.0,
                max_delay: Duration::from_micros(100),
            },
            ..SessionConfig::default()
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        let run = al
            .run_session(&c, &oracle, 13, &cfg)
            .unwrap()
            .run_result()
            .unwrap();
        assert_eq!(run.total_labels(), 120, "full budget despite 20% failures");
        assert!(oracle.failures() > 0, "fault injection actually fired");
    }

    #[test]
    fn exhausted_retries_surface_as_oracle_unavailable() {
        let c = corpus(100);
        let oracle = TransientOracle::new(Oracle::perfect(c.truths().to_vec()), 0.0, 1).unwrap();
        oracle.script_failures(3);
        let cfg = SessionConfig {
            retry: RetryPolicy::none(),
            ..SessionConfig::default()
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        match al.run_session(&c, &oracle, 5, &cfg) {
            Err(AlemError::OracleUnavailable { attempts: 1, .. }) => {}
            other => panic!("expected OracleUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn abstentions_leave_examples_reselectable() {
        let c = corpus(300);
        let oracle = AbstainingOracle::new(Oracle::perfect(c.truths().to_vec()), 0.3, 21).unwrap();
        let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
        let run = al
            .run_session(&c, &oracle, 29, &SessionConfig::default())
            .unwrap()
            .run_result()
            .unwrap();
        assert!(oracle.abstentions() > 0, "abstentions actually fired");
        // Labels still accumulate despite abstentions.
        assert!(run.total_labels() > 20, "labels: {}", run.total_labels());
    }

    #[test]
    fn telemetry_is_determinism_neutral() {
        let c = corpus(300);
        let plain = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
            al.run_session(&c, &oracle, 41, &SessionConfig::default())
                .unwrap()
                .run_result()
                .unwrap()
        };

        let obs = Registry::enabled();
        let cfg = SessionConfig {
            obs: obs.clone(),
            ..SessionConfig::default()
        };
        let observed = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
            al.run_session(&c, &oracle, 41, &cfg)
                .unwrap()
                .run_result()
                .unwrap()
        };
        assert_eq!(
            plain.deterministic_fingerprint(),
            observed.deterministic_fingerprint(),
            "enabling telemetry changed the run"
        );

        // The enabled registry really recorded the whole loop.
        let names: std::collections::BTreeSet<&str> = obs.events().iter().map(|e| e.name).collect();
        for want in [
            "seed",
            "iteration",
            "train",
            "eval",
            "select",
            "select.score",
            "oracle.query",
        ] {
            assert!(names.contains(want), "missing span {want} in {names:?}");
        }
        assert!(obs.counter_value("oracle.labels") > 0);
        // The parallel layer reports its shape even when sequential.
        assert!(names.contains("par.threads"), "missing gauge par.threads");
        assert!(obs.counter_value("par.chunks") > 0);
    }

    #[test]
    fn eval_mode_does_not_perturb_query_stream() {
        use std::sync::Mutex;

        /// Records the exact index sequence sent to the Oracle.
        struct RecordingOracle {
            inner: Oracle,
            order: Mutex<Vec<usize>>,
        }
        impl QueryOracle for RecordingOracle {
            fn try_label(&self, i: usize) -> Result<OracleAnswer, AlemError> {
                self.order.lock().unwrap().push(i);
                self.inner.try_label(i)
            }
            fn queries(&self) -> u64 {
                self.inner.queries()
            }
            fn universe(&self) -> usize {
                self.inner.universe()
            }
            fn fast_forward(&self, n: u64) {
                self.inner.fast_forward(n)
            }
        }

        let c = corpus(300);
        let run = |eval: EvalMode| -> Vec<usize> {
            let oracle = RecordingOracle {
                inner: Oracle::perfect(c.truths().to_vec()),
                order: Mutex::new(Vec::new()),
            };
            let p = LoopParams { eval, ..params() };
            let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), p);
            al.run_session(&c, &oracle, 31, &SessionConfig::default())
                .unwrap();
            oracle.order.into_inner().unwrap()
        };

        // A hold-out split that holds nothing out leaves the same pool as
        // progressive mode; with per-concern setup RNGs the *entire* query
        // stream — seed draw and every selection — must be identical.
        // (Before the fix, the split's shuffles advanced the shared setup
        // RNG and the two modes diverged from the first seed query on.)
        let progressive = run(EvalMode::Progressive);
        let holdout = run(EvalMode::Holdout { test_frac: 0.0 });
        assert_eq!(progressive, holdout);
    }

    #[test]
    fn parallelism_setting_keeps_fingerprint() {
        let c = corpus(300);
        let run = |par: Parallelism| {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let cfg = SessionConfig {
                parallelism: par,
                ..SessionConfig::default()
            };
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
            al.run_session(&c, &oracle, 47, &cfg)
                .unwrap()
                .run_result()
                .unwrap()
        };
        let seq = run(Parallelism::sequential());
        for t in [2, 4] {
            assert_eq!(
                seq.deterministic_fingerprint(),
                run(Parallelism::fixed(t)).deterministic_fingerprint(),
                "threads={t}"
            );
        }
    }

    #[test]
    fn resume_with_telemetry_keeps_fingerprint() {
        let c = corpus(300);
        let full = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al =
                ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
            al.run(&c, &oracle, 17).unwrap()
        };

        let path = tmp_path("telemetry-resume");
        let halted_cfg = SessionConfig {
            checkpoint_path: Some(path.clone()),
            halt_after: Some(3),
            obs: Registry::enabled(),
            ..SessionConfig::default()
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        al.run_session(&c, &oracle, 17, &halted_cfg).unwrap();

        let resume_cfg = SessionConfig {
            obs: Registry::enabled(),
            ..SessionConfig::default()
        };
        let ckpt = Checkpoint::load(&path).unwrap();
        let oracle2 = Oracle::perfect(c.truths().to_vec());
        let mut al2 = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        let resumed = al2
            .resume_session(&c, &oracle2, ckpt, &resume_cfg)
            .unwrap()
            .run_result()
            .unwrap();
        assert_eq!(
            resumed.deterministic_fingerprint(),
            full.deterministic_fingerprint()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn periodic_checkpoints_are_written() {
        let c = corpus(300);
        let path = tmp_path("periodic");
        let cfg = SessionConfig {
            checkpoint_every: Some(2),
            checkpoint_path: Some(path.clone()),
            ..SessionConfig::default()
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        al.run_session(&c, &oracle, 23, &cfg).unwrap();
        let ckpt = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt.version, CHECKPOINT_VERSION);
        assert!(ckpt.iter_no >= 2);
        assert_eq!(ckpt.corpus_len, 300);
        std::fs::remove_file(&path).ok();
    }
}
