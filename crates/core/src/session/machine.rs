//! [`SessionMachine`]: the active-learning session as an event-driven
//! state machine.
//!
//! The blocking session loop ([`crate::session`]) interleaves two very
//! different concerns: the deterministic learning schedule (seed draw,
//! train, evaluate, select, apply labels) and the *delivery* of oracle
//! answers (retries, backoff, telemetry). `SessionMachine` extracts the
//! first concern into a pull-driven core that never blocks: it exposes the
//! examples it is waiting on ([`SessionMachine::pending`]) and advances
//! one [`SessionMachine::deliver`] call at a time. Answer transport —
//! whether a synchronous `QueryOracle`, a retry loop, or a remote labeler
//! over a socket (`alem-serve`) — lives entirely outside.
//!
//! # Determinism contract
//!
//! The machine consumes answers *by example*, not by arrival order: a
//! batch wave is applied only once every member has answered, in the
//! selector's chosen order. Duplicate answers and answers for examples
//! the machine never asked about are ignored (and counted). Consequently
//! the [`RunResult::deterministic_fingerprint`] of a machine-driven
//! session is a pure function of the master seed and the per-example
//! answer values — independent of delivery order, duplication, timing,
//! or how often the session was checkpointed and rehydrated in between.
//! The blocking [`ActiveLearner::run_session`][rs] is itself a thin pump
//! over this machine, so the two paths cannot drift.
//!
//! [rs]: crate::loop_::ActiveLearner::run_session
//!
//! # Checkpoint boundaries
//!
//! The RNG for iteration `k` is reconstructed from `(master_seed, k)`, so
//! the machine is snapshot-able exactly at iteration boundaries: each time
//! a new iteration begins, a [`Checkpoint`] of the pre-iteration state is
//! cached and served by [`SessionMachine::checkpoint`] until the next
//! boundary. Mid-wave kills therefore replay at most one iteration's
//! worth of answers.

use super::{
    derive_rng, one_class, validate_params, Checkpoint, SessionConfig, CHECKPOINT_VERSION,
};
use crate::corpus::Corpus;
use crate::error::AlemError;
use crate::evaluator::{confusion_over, iteration_stats, IterationStats, RunResult};
use crate::loop_::{EvalMode, LoopParams};
use crate::oracle::OracleAnswer;
use crate::strategy::Strategy;
use alem_obs::Span;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One outstanding label request: answer it with
/// [`SessionMachine::deliver`]. `id` is unique within the machine (fresh
/// ids are issued if a wave is re-emitted after a resume), `example` is
/// the corpus index the label is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRequest {
    /// Monotonically increasing request id (unique per machine).
    pub id: u64,
    /// Corpus example index to label.
    pub example: usize,
}

/// Externally visible machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineState {
    /// Constructed but neither [`SessionMachine::start`]ed nor
    /// [`SessionMachine::resume`]d.
    Created,
    /// Waiting for answers to [`SessionMachine::pending`] queries.
    AwaitingAnswers,
    /// Stopped at the configured `halt_after` boundary; the caller should
    /// persist [`SessionMachine::checkpoint`].
    Halted,
    /// Ran to normal termination; [`SessionMachine::take_result`] has the
    /// [`RunResult`].
    Done,
    /// A prior call returned an error; the machine cannot advance.
    Failed,
}

/// Mutable state threaded through the session loop (and captured by
/// checkpoints).
#[derive(Default)]
struct LiveState {
    master_seed: u64,
    iter_no: usize,
    stalled: usize,
    labeled: Vec<(usize, bool)>,
    unlabeled: Vec<usize>,
    eval_idx: Vec<usize>,
    iterations: Vec<IterationStats>,
}

/// Seed-draw bookkeeping (both the main sequential draw and the
/// single-class repair draw).
struct SeedState {
    pool: Vec<usize>,
    cursor: usize,
    seed_n: usize,
    labeled: Vec<(usize, bool)>,
    skipped: Vec<usize>,
    unlabeled: Vec<usize>,
    extra: usize,
    pending_example: usize,
    pool_rng: StdRng,
    eval_idx: Vec<usize>,
    span: Option<Span>,
}

/// An in-flight batch wave: answers are collected per chosen slot and the
/// wave is applied only when complete, in chosen order.
struct BatchState {
    chosen: Vec<usize>,
    answers: Vec<Option<OracleAnswer>>,
    outstanding: usize,
    rng: StdRng,
    iter_span: Option<Span>,
    oracle_span: Option<Span>,
}

enum Phase {
    Created,
    SeedMain(SeedState),
    SeedExtra(SeedState),
    Batch(BatchState),
    Halted,
    Done,
    Failed,
}

/// The active-learning session loop with answer delivery inverted: the
/// machine asks (via [`SessionMachine::pending`]) and the caller answers
/// (via [`SessionMachine::deliver`]). See the module docs for the
/// determinism and checkpointing contracts.
pub struct SessionMachine<S: Strategy> {
    strategy: S,
    strategy_name: String,
    params: LoopParams,
    config: SessionConfig,
    master_seed: u64,
    dataset: String,
    corpus_len: usize,
    corpus_fp: u64,
    st: LiveState,
    phase: Phase,
    boundary: Option<Checkpoint>,
    answers_applied: u64,
    next_id: u64,
    pending: Vec<QueryRequest>,
    ignored_answers: u64,
    warned_empty_selection: bool,
    /// Feature-cache counter values at the last emission, so the obs
    /// counters `feat.cache_hits`/`feat.cache_misses` carry per-iteration
    /// deltas rather than re-counting the corpus lifetime totals.
    feat_base: (u64, u64),
    result: Option<RunResult>,
}

impl<S: Strategy> SessionMachine<S> {
    /// Wrap `strategy` in an un-started machine. Call
    /// [`SessionMachine::start`] or [`SessionMachine::resume`] next.
    pub fn new(strategy: S, params: LoopParams, config: SessionConfig) -> Self {
        let strategy_name = strategy.name();
        SessionMachine {
            strategy,
            strategy_name,
            params,
            config,
            master_seed: 0,
            dataset: String::new(),
            corpus_len: 0,
            corpus_fp: 0,
            st: LiveState::default(),
            phase: Phase::Created,
            boundary: None,
            answers_applied: 0,
            next_id: 0,
            pending: Vec::new(),
            ignored_answers: 0,
            warned_empty_selection: false,
            feat_base: (0, 0),
            result: None,
        }
    }

    /// Begin a fresh session with `seed`. On success the machine is either
    /// awaiting seed answers, or already `Done`/`Halted` for degenerate
    /// inputs. Errors leave the machine `Failed`.
    pub fn start(&mut self, corpus: &Corpus, seed: u64) -> Result<(), AlemError> {
        let r = self.start_inner(corpus, seed);
        if r.is_err() {
            self.fail();
        }
        r
    }

    /// Rehydrate from a checkpoint taken on the *same* corpus (length,
    /// content fingerprint, and dataset-independent identity are all
    /// verified) with the same strategy. The checkpointed [`LoopParams`]
    /// replace the machine's. Errors leave the machine `Failed`.
    ///
    /// Note the machine does not own an oracle: callers replaying a
    /// positional oracle stream must fast-forward it by
    /// `checkpoint.oracle_queries` themselves.
    pub fn resume(&mut self, corpus: &Corpus, checkpoint: Checkpoint) -> Result<(), AlemError> {
        let r = self.resume_inner(corpus, checkpoint);
        if r.is_err() {
            self.fail();
        }
        r
    }

    /// Deliver one oracle answer for `example`. Answers for examples not
    /// currently pending (duplicates, stale retransmissions) are ignored
    /// and counted in [`SessionMachine::ignored_answers`]. Errors leave
    /// the machine `Failed`.
    pub fn deliver(
        &mut self,
        corpus: &Corpus,
        example: usize,
        answer: OracleAnswer,
    ) -> Result<(), AlemError> {
        let r = self.deliver_inner(corpus, example, answer);
        if r.is_err() {
            self.fail();
        }
        r
    }

    /// Current externally visible state.
    pub fn state(&self) -> MachineState {
        match self.phase {
            Phase::Created => MachineState::Created,
            Phase::SeedMain(_) | Phase::SeedExtra(_) | Phase::Batch(_) => {
                MachineState::AwaitingAnswers
            }
            Phase::Halted => MachineState::Halted,
            Phase::Done => MachineState::Done,
            Phase::Failed => MachineState::Failed,
        }
    }

    /// The queries the machine is waiting on (empty unless
    /// [`MachineState::AwaitingAnswers`]).
    pub fn pending(&self) -> &[QueryRequest] {
        &self.pending
    }

    /// Iteration number of the most recent boundary snapshot, if the main
    /// loop has been entered.
    pub fn boundary_iter(&self) -> Option<usize> {
        self.boundary.as_ref().map(|c| c.iter_no)
    }

    /// Snapshot of the last iteration boundary (None during the seed
    /// phase). `oracle_queries` counts answers *applied* by this machine;
    /// callers pumping a positional `QueryOracle` should overwrite it with
    /// the oracle's own count before persisting.
    pub fn checkpoint(&self) -> Option<Checkpoint> {
        self.boundary.clone()
    }

    /// The completed run, once. `None` before `Done` (or after taken).
    pub fn take_result(&mut self) -> Option<RunResult> {
        self.result.take()
    }

    /// Labels consumed so far.
    pub fn labels_used(&self) -> usize {
        match &self.phase {
            Phase::SeedMain(s) | Phase::SeedExtra(s) => s.labeled.len(),
            _ => self.st.labeled.len(),
        }
    }

    /// Iterations fully recorded so far.
    pub fn iterations_done(&self) -> usize {
        self.st.iterations.len()
    }

    /// Answers that were ignored because no matching query was pending
    /// (duplicates, replays after resume, unknown examples).
    pub fn ignored_answers(&self) -> u64 {
        self.ignored_answers
    }

    /// Strategy display name.
    pub fn strategy_name(&self) -> &str {
        &self.strategy_name
    }

    fn fail(&mut self) {
        self.phase = Phase::Failed;
        self.pending.clear();
    }

    fn ask(&mut self, examples: &[usize]) {
        self.pending = examples
            .iter()
            .map(|&example| {
                let id = self.next_id;
                self.next_id += 1;
                QueryRequest { id, example }
            })
            .collect();
    }

    fn start_inner(&mut self, corpus: &Corpus, seed: u64) -> Result<(), AlemError> {
        if !matches!(self.phase, Phase::Created) {
            return Err(AlemError::InvalidConfig(
                "session machine already started".into(),
            ));
        }
        validate_params(&self.params)?;
        if corpus.is_empty() {
            return Err(AlemError::DegenerateLabels("corpus has no pairs".into()));
        }
        if self.params.seed_size > self.params.max_labels {
            return Err(AlemError::BudgetExhausted {
                used: self.params.seed_size,
                budget: self.params.max_labels,
            });
        }
        self.bind_corpus(corpus, seed);

        // One sub-RNG per setup concern, forked from slot 0 in a fixed
        // order, so the eval split cannot perturb the seed draw (see the
        // blocking loop's rationale in the parent module).
        let mut setup_rng = derive_rng(seed, 0);
        let mut eval_rng = StdRng::seed_from_u64(setup_rng.gen());
        let mut pool_rng = StdRng::seed_from_u64(setup_rng.gen());
        let span = self.config.obs.span("seed");

        let (mut pool, eval_idx): (Vec<usize>, Vec<usize>) = match self.params.eval {
            EvalMode::Progressive => ((0..corpus.len()).collect(), (0..corpus.len()).collect()),
            EvalMode::Holdout { test_frac } => corpus.split_holdout(test_frac, &mut eval_rng),
        };
        pool.sort_unstable();
        pool.shuffle(&mut pool_rng);
        let seed_n = self.params.seed_size.min(pool.len());
        let state = SeedState {
            pool,
            cursor: 0,
            seed_n,
            labeled: Vec::with_capacity(seed_n),
            skipped: Vec::new(),
            unlabeled: Vec::new(),
            extra: 0,
            pending_example: 0,
            pool_rng,
            eval_idx,
            span: Some(span),
        };
        self.advance_seed_main(corpus, state)
    }

    fn bind_corpus(&mut self, corpus: &Corpus, seed: u64) {
        self.master_seed = seed;
        self.dataset = corpus.name().to_owned();
        self.corpus_len = corpus.len();
        self.corpus_fp = corpus.content_fingerprint();
        self.feat_base = corpus.feature_cache_stats();
        self.strategy.set_parallelism(self.config.parallelism);
        self.config
            .obs
            .gauge_set("par.threads", self.config.parallelism.threads() as u64);
    }

    /// Emit the feature-cache hit/miss deltas accumulated since the last
    /// emission as `feat.cache_hits` / `feat.cache_misses`.
    fn emit_feat_cache(&mut self, corpus: &Corpus) {
        let (hits, misses) = corpus.feature_cache_stats();
        let (h0, m0) = self.feat_base;
        self.config
            .obs
            .counter_add("feat.cache_hits", hits.saturating_sub(h0));
        self.config
            .obs
            .counter_add("feat.cache_misses", misses.saturating_sub(m0));
        self.feat_base = (hits, misses);
    }

    fn resume_inner(&mut self, corpus: &Corpus, ckpt: Checkpoint) -> Result<(), AlemError> {
        if !matches!(self.phase, Phase::Created) {
            return Err(AlemError::InvalidConfig(
                "session machine already started".into(),
            ));
        }
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(AlemError::CheckpointCorrupt(format!(
                "version {} (this build reads {CHECKPOINT_VERSION})",
                ckpt.version
            )));
        }
        if ckpt.corpus_len != corpus.len() {
            return Err(AlemError::CheckpointCorrupt(format!(
                "checkpoint was taken on a corpus of {} pairs, this one has {}",
                ckpt.corpus_len,
                corpus.len()
            )));
        }
        let fp = corpus.content_fingerprint();
        if ckpt.corpus_fingerprint != fp {
            return Err(AlemError::CheckpointCorrupt(format!(
                "checkpoint corpus fingerprint {:016x} does not match this corpus ({fp:016x}); \
                 same length, different contents",
                ckpt.corpus_fingerprint
            )));
        }
        if ckpt.strategy != self.strategy_name {
            return Err(AlemError::InvalidConfig(format!(
                "checkpoint was taken with strategy '{}', learner runs '{}'",
                ckpt.strategy, self.strategy_name
            )));
        }
        validate_params(&ckpt.params)?;
        self.params = ckpt.params.clone();
        self.bind_corpus(corpus, ckpt.master_seed);
        self.answers_applied = ckpt.oracle_queries;
        // Restore incremental-training state before the first fit, so a
        // resumed warm session continues bit-identically instead of
        // falling back to a cold refit.
        if let Some(warm) = ckpt.warm.clone() {
            self.strategy.restore_warm_state(warm);
        }
        self.st = LiveState {
            master_seed: ckpt.master_seed,
            iter_no: ckpt.iter_no,
            stalled: ckpt.stalled,
            labeled: ckpt.labeled,
            unlabeled: ckpt.unlabeled,
            eval_idx: ckpt.eval_idx,
            iterations: ckpt.iterations,
        };
        self.begin_iteration(corpus)
    }

    fn deliver_inner(
        &mut self,
        corpus: &Corpus,
        example: usize,
        answer: OracleAnswer,
    ) -> Result<(), AlemError> {
        match std::mem::replace(&mut self.phase, Phase::Failed) {
            Phase::SeedMain(mut s) => {
                if s.pending_example != example || self.pending.is_empty() {
                    self.ignored_answers += 1;
                    self.phase = Phase::SeedMain(s);
                    return Ok(());
                }
                self.pending.clear();
                self.answers_applied += 1;
                match answer {
                    OracleAnswer::Label(b) => s.labeled.push((example, b)),
                    OracleAnswer::Abstain => s.skipped.push(example),
                }
                self.advance_seed_main(corpus, s)
            }
            Phase::SeedExtra(mut s) => {
                if s.pending_example != example || self.pending.is_empty() {
                    self.ignored_answers += 1;
                    self.phase = Phase::SeedExtra(s);
                    return Ok(());
                }
                self.pending.clear();
                self.answers_applied += 1;
                match answer {
                    OracleAnswer::Label(b) => s.labeled.push((example, b)),
                    OracleAnswer::Abstain => s.unlabeled.push(example),
                }
                self.advance_seed_extra(corpus, s)
            }
            Phase::Batch(mut b) => {
                let slot = b
                    .chosen
                    .iter()
                    .enumerate()
                    .find(|&(p, &c)| c == example && b.answers[p].is_none())
                    .map(|(p, _)| p);
                let Some(p) = slot else {
                    self.ignored_answers += 1;
                    self.phase = Phase::Batch(b);
                    return Ok(());
                };
                b.answers[p] = Some(answer);
                b.outstanding -= 1;
                self.answers_applied += 1;
                if let Some(pos) = self.pending.iter().position(|q| q.example == example) {
                    self.pending.remove(pos);
                }
                if b.outstanding == 0 {
                    self.complete_batch(corpus, b)
                } else {
                    self.phase = Phase::Batch(b);
                    Ok(())
                }
            }
            other => {
                // Delivery against a settled machine (Done/Halted/Failed
                // or never started): ignore, preserve the phase.
                self.ignored_answers += 1;
                self.phase = other;
                Ok(())
            }
        }
    }

    /// Emit the next sequential seed query, or finish the main seed draw.
    fn advance_seed_main(&mut self, corpus: &Corpus, mut s: SeedState) -> Result<(), AlemError> {
        if s.labeled.len() < s.seed_n && s.cursor < s.pool.len() {
            let i = s.pool[s.cursor];
            s.cursor += 1;
            s.pending_example = i;
            self.ask(&[i]);
            self.phase = Phase::SeedMain(s);
            return Ok(());
        }
        let mut unlabeled = std::mem::take(&mut s.skipped);
        unlabeled.extend(s.pool.drain(s.cursor..));
        s.unlabeled = unlabeled;
        if s.labeled.is_empty() {
            return Err(AlemError::DegenerateLabels(
                "no seed labels: the oracle abstained on every seed example".into(),
            ));
        }
        self.advance_seed_extra(corpus, s)
    }

    /// Draw extra random labels while the seed is single-class (bounded by
    /// one extra seed's worth), then enter the main loop.
    fn advance_seed_extra(&mut self, corpus: &Corpus, mut s: SeedState) -> Result<(), AlemError> {
        if one_class(&s.labeled)
            && s.extra < s.seed_n
            && !s.unlabeled.is_empty()
            && s.labeled.len() < self.params.max_labels
        {
            let j = s.pool_rng.gen_range(0..s.unlabeled.len());
            let i = s.unlabeled.swap_remove(j);
            s.extra += 1;
            s.pending_example = i;
            self.ask(&[i]);
            self.phase = Phase::SeedExtra(s);
            return Ok(());
        }
        if s.extra > 0 {
            eprintln!(
                "alem: single-class seed; drew {} extra random label(s) ({})",
                s.extra,
                if one_class(&s.labeled) {
                    "still one class — proceeding"
                } else {
                    "now two classes"
                }
            );
        }
        if corpus.sanitized_features() > 0 {
            eprintln!(
                "alem: corpus '{}' had {} non-finite feature value(s) sanitized to 0",
                corpus.name(),
                corpus.sanitized_features()
            );
        }
        if let Some(span) = s.span.take() {
            span.finish();
        }
        self.st = LiveState {
            master_seed: self.master_seed,
            iter_no: 0,
            stalled: 0,
            labeled: s.labeled,
            unlabeled: s.unlabeled,
            eval_idx: s.eval_idx,
            iterations: Vec::new(),
        };
        self.begin_iteration(corpus)
    }

    fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            master_seed: self.st.master_seed,
            iter_no: self.st.iter_no,
            stalled: self.st.stalled,
            labeled: self.st.labeled.clone(),
            unlabeled: self.st.unlabeled.clone(),
            eval_idx: self.st.eval_idx.clone(),
            iterations: self.st.iterations.clone(),
            oracle_queries: self.answers_applied,
            params: self.params.clone(),
            strategy: self.strategy_name.clone(),
            dataset: self.dataset.clone(),
            corpus_len: self.corpus_len,
            corpus_fingerprint: self.corpus_fp,
            warm: self.strategy.warm_state(),
        }
    }

    /// Run one iteration up to (and including) batch selection: snapshot
    /// the boundary, honor `halt_after`, train, evaluate, check
    /// termination, select, and emit the batch wave.
    fn begin_iteration(&mut self, corpus: &Corpus) -> Result<(), AlemError> {
        let obs = self.config.obs.clone();
        let k = self.st.iter_no;
        obs.set_iter(k as u64);
        let iter_span = obs.span("iteration");
        obs.counter_add(
            "par.chunks",
            self.config.parallelism.chunk_count(self.st.unlabeled.len()) as u64,
        );
        self.boundary = Some(self.snapshot());

        if self.config.halt_after == Some(k) && k > 0 {
            self.phase = Phase::Halted;
            return Ok(());
        }

        let mut rng = derive_rng(self.st.master_seed, k as u64 + 1);

        // Train on the cumulative labeled data.
        let train_span = obs.span("train");
        self.strategy.fit(corpus, &self.st.labeled, &mut rng)?;
        let train_time = train_span.finish();
        if let Some(warm) = self.strategy.warm_state() {
            obs.gauge_set("train.warm_rounds", warm.rounds());
        }

        // Evaluate against ground truth.
        let eval_span = obs.span("eval");
        let confusion = confusion_over(
            |i| self.strategy.predict(corpus, i),
            |i| corpus.truth(i),
            &self.st.eval_idx,
        );
        eval_span.finish();
        let mut stats = iteration_stats(
            k,
            self.st.labeled.len(),
            &confusion,
            train_time,
            std::time::Duration::ZERO,
            std::time::Duration::ZERO,
        );
        let extra = self.strategy.stats();
        stats.atoms = extra.atoms;
        stats.depth = extra.depth;
        stats.accepted_models = extra.accepted_models;
        stats.pruned = extra.pruned;

        // Termination checks before selecting more labels.
        let reached_target = self.params.stop_at_f1.is_some_and(|t| stats.f1 >= t);
        let out_of_budget = self.st.labeled.len() + self.params.batch_size > self.params.max_labels;
        if reached_target
            || out_of_budget
            || self.st.unlabeled.is_empty()
            || self.strategy.terminated()
        {
            self.st.iterations.push(stats);
            return self.finish();
        }

        // Select the next batch.
        let select_span = obs.span("select");
        let selection = self.strategy.select(
            corpus,
            &self.st.labeled,
            &self.st.unlabeled,
            self.params.batch_size,
            &mut rng,
            &obs,
        );
        select_span.finish();
        self.emit_feat_cache(corpus);
        stats.committee_secs = selection.committee_creation.as_secs_f64();
        stats.scoring_secs = selection.scoring.as_secs_f64();
        self.st.iterations.push(stats);

        let mut chosen = selection.chosen;
        if chosen.is_empty() {
            if self.strategy.terminated() {
                return self.finish(); // deliberate exhaustion (e.g. LFP/LFN ran dry)
            }
            // Graceful degradation: a selector that returns an empty
            // batch without terminating gets a random batch instead.
            if !self.warned_empty_selection {
                eprintln!(
                    "alem: selector returned an empty batch at iteration {k}; \
                     falling back to random sampling"
                );
                self.warned_empty_selection = true;
            }
            let mut candidates = self.st.unlabeled.clone();
            candidates.shuffle(&mut rng);
            candidates.truncate(self.params.batch_size);
            chosen = candidates;
            if chosen.is_empty() {
                return self.finish();
            }
        }

        let oracle_span = obs.span("oracle.query");
        self.ask(&chosen);
        let outstanding = chosen.len();
        self.phase = Phase::Batch(BatchState {
            answers: vec![None; outstanding],
            outstanding,
            chosen,
            rng,
            iter_span: Some(iter_span),
            oracle_span: Some(oracle_span),
        });
        Ok(())
    }

    /// Apply a fully answered wave in chosen order, then start the next
    /// iteration.
    fn complete_batch(&mut self, corpus: &Corpus, mut b: BatchState) -> Result<(), AlemError> {
        let obs = self.config.obs.clone();
        if let Some(span) = b.oracle_span.take() {
            span.finish();
        }
        let new: Vec<(usize, bool)> = b
            .chosen
            .iter()
            .zip(b.answers.iter())
            .filter_map(|(&i, a)| match a {
                Some(OracleAnswer::Label(l)) => Some((i, *l)),
                _ => None, // abstained: stays unlabeled, re-selectable
            })
            .collect();
        self.st
            .unlabeled
            .retain(|i| !new.iter().any(|&(j, _)| j == *i));
        if new.is_empty() {
            self.st.stalled += 1;
            if self.st.stalled > self.config.max_stalled_iters {
                return Err(AlemError::Stalled {
                    iterations: self.st.stalled,
                });
            }
        } else {
            self.st.stalled = 0;
            self.st.labeled.extend(new.iter().copied());
            self.strategy.post_label(
                corpus,
                &new,
                &mut self.st.labeled,
                &mut self.st.unlabeled,
                &mut b.rng,
                &obs,
            );
        }
        obs.gauge_set("pool.unlabeled", self.st.unlabeled.len() as u64);
        if let Some(span) = b.iter_span.take() {
            span.finish();
        }
        self.st.iter_no += 1;
        self.begin_iteration(corpus)
    }

    fn finish(&mut self) -> Result<(), AlemError> {
        self.result = Some(RunResult {
            strategy: self.strategy.name(),
            dataset: self.dataset.clone(),
            iterations: self.st.iterations.clone(),
        });
        self.phase = Phase::Done;
        self.pending.clear();
        Ok(())
    }
}
