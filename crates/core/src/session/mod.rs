//! Fault-tolerant, checkpointable active-learning sessions.
//!
//! A session is [`crate::loop_::ActiveLearner::run`] with survival gear: it
//! validates its configuration up front ([`AlemError::InvalidConfig`]
//! instead of panics), rides out transient Oracle failures with a
//! [`RetryPolicy`], degrades gracefully around degenerate inputs
//! (single-class seeds, empty selector batches, non-finite features), and
//! can write a [`Checkpoint`] every N iterations so a killed run resumes
//! exactly where it stopped.
//!
//! # Determinism and resume
//!
//! Every iteration `k` draws from its own RNG, derived from the master
//! seed: `seed ⊕ φ·(k+1)`. Setup forks slot 0 into one sub-RNG per concern
//! (hold-out split, seed draw) so the evaluation mode cannot perturb the
//! selection stream. The checkpointed "RNG
//! state" is therefore just `(master_seed, iter_no)` — resuming
//! reconstructs iteration `k`'s generator bit-for-bit. For strategies that
//! refit from scratch each iteration (all of the paper's core strategies),
//! a resumed run's [`RunResult`] is identical to the uninterrupted run's
//! on every deterministic field (see
//! [`RunResult::deterministic_fingerprint`]); wall-clock timings naturally
//! differ. Strategies carrying mutable cross-iteration state (the active
//! ensemble, LFP/LFN caches) resume correctly but not bit-identically —
//! DESIGN.md documents the fault model in full.

mod machine;

pub use machine::{MachineState, QueryRequest, SessionMachine};

use crate::corpus::Corpus;
use crate::error::AlemError;
use crate::evaluator::{IterationStats, RunResult};
use crate::loop_::{ActiveLearner, EvalMode, LoopParams};
use crate::oracle::{QueryOracle, RetryPolicy};
use crate::strategy::Strategy;
use alem_obs::Registry;
use alem_par::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Format version written into checkpoints; loading any other version
/// fails with [`AlemError::CheckpointCorrupt`]. Version 2 added
/// `corpus_fingerprint` so a resume against a different corpus of the
/// same length is rejected instead of silently producing garbage.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Derive the RNG for a session slot (0 = setup, k+1 = iteration k).
fn derive_rng(master_seed: u64, slot: u64) -> StdRng {
    StdRng::seed_from_u64(master_seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(slot + 1))
}

/// Session-level knobs layered on top of [`LoopParams`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Write a checkpoint every N iterations (`None` = never).
    pub checkpoint_every: Option<usize>,
    /// Where checkpoints go (required when `checkpoint_every` or
    /// `halt_after` is set).
    pub checkpoint_path: Option<PathBuf>,
    /// Retry policy for transient Oracle failures.
    pub retry: RetryPolicy,
    /// Simulate a kill: checkpoint and stop at the start of iteration N
    /// (testing hook for the resume invariant; `None` = run to completion).
    pub halt_after: Option<usize>,
    /// Consecutive zero-progress iterations (every selected example
    /// abstained) tolerated before the session fails with
    /// [`AlemError::Stalled`].
    pub max_stalled_iters: usize,
    /// Telemetry registry; defaults to [`Registry::disabled`]. Spans,
    /// counters, and gauges recorded here never feed back into the
    /// learner, so enabling it cannot change a run's
    /// [`RunResult::deterministic_fingerprint`].
    pub obs: Registry,
    /// Thread-count policy for the parallel hot paths (committee/forest
    /// training and pool scoring). Results are byte-identical for any
    /// value — chunk boundaries depend only on `(len, n_threads)` and
    /// per-member RNG seeds are pre-drawn — so this knob only trades
    /// wall-clock for cores. Defaults to [`Parallelism::auto`];
    /// [`Parallelism::sequential`] reproduces the single-threaded path.
    pub parallelism: Parallelism,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            checkpoint_every: None,
            checkpoint_path: None,
            retry: RetryPolicy::default(),
            halt_after: None,
            max_stalled_iters: 5,
            obs: Registry::disabled(),
            parallelism: Parallelism::default(),
        }
    }
}

/// Serializable snapshot of a session at an iteration boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The master seed the session was started with.
    pub master_seed: u64,
    /// Iteration about to run when the snapshot was taken.
    pub iter_no: usize,
    /// Consecutive zero-progress iterations at snapshot time.
    pub stalled: usize,
    /// Cumulative labeled examples (index, oracle label).
    pub labeled: Vec<(usize, bool)>,
    /// Remaining unlabeled pool indices.
    pub unlabeled: Vec<usize>,
    /// Evaluation set indices.
    pub eval_idx: Vec<usize>,
    /// Per-iteration statistics recorded so far.
    pub iterations: Vec<IterationStats>,
    /// Oracle queries consumed so far (replayed on resume via
    /// [`QueryOracle::fast_forward`]).
    pub oracle_queries: u64,
    /// Loop parameters in force (resume uses these, not the learner's).
    pub params: LoopParams,
    /// Strategy name — resuming under a different strategy is rejected.
    pub strategy: String,
    /// Dataset name.
    pub dataset: String,
    /// Corpus size — resuming on a different corpus is rejected.
    pub corpus_len: usize,
    /// [`Corpus::content_fingerprint`] of the corpus the session ran on —
    /// resuming on same-length-but-different contents is rejected.
    pub corpus_fingerprint: u64,
    /// Warm-training continuation state of the strategy at the snapshot
    /// boundary, when the strategy trains incrementally (see
    /// [`crate::model_io::WarmState`]). Absent in older checkpoints and
    /// for cold-only strategies — both deserialize to `None` and resume
    /// with an ordinary cold refit.
    #[serde(default)]
    pub warm: Option<crate::model_io::WarmState>,
}

impl Checkpoint {
    /// Atomically write the checkpoint to `path` (temp file + rename, so a
    /// kill mid-write never leaves a truncated checkpoint behind).
    pub fn save(&self, path: &Path) -> Result<(), AlemError> {
        let json = serde_json::to_string(self)
            .map_err(|e| AlemError::Io(format!("serializing checkpoint: {e}")))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load and validate a checkpoint from `path`.
    ///
    /// A stale `.tmp` sibling (left behind when a process died between
    /// [`Checkpoint::save`]'s write and rename) is removed best-effort:
    /// its contents are possibly truncated and the rename never happened,
    /// so the durable file at `path` is always the authoritative snapshot.
    pub fn load(path: &Path) -> Result<Self, AlemError> {
        let tmp = path.with_extension("tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp).ok();
        }
        let text = std::fs::read_to_string(path)?;
        let ckpt: Checkpoint = serde_json::from_str(&text)
            .map_err(|e| AlemError::CheckpointCorrupt(format!("{}: {e}", path.display())))?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(AlemError::CheckpointCorrupt(format!(
                "version {} (this build reads {CHECKPOINT_VERSION})",
                ckpt.version
            )));
        }
        Ok(ckpt)
    }
}

/// How a session ended.
#[derive(Debug)]
pub enum SessionOutcome {
    /// The loop ran to a normal termination.
    Complete(RunResult),
    /// The session stopped at a simulated kill point after checkpointing.
    Halted {
        /// Where the checkpoint was written.
        checkpoint: PathBuf,
        /// Labels consumed when halted.
        labels_used: usize,
        /// Iterations fully recorded before halting.
        iterations_done: usize,
    },
}

impl SessionOutcome {
    /// The run result, if the session completed.
    pub fn run_result(self) -> Option<RunResult> {
        match self {
            SessionOutcome::Complete(r) => Some(r),
            SessionOutcome::Halted { .. } => None,
        }
    }
}

fn validate_params(params: &LoopParams) -> Result<(), AlemError> {
    if params.seed_size == 0 {
        return Err(AlemError::InvalidConfig(
            "seed_size must be at least 1".into(),
        ));
    }
    if params.batch_size == 0 {
        return Err(AlemError::InvalidConfig(
            "batch_size must be at least 1".into(),
        ));
    }
    if params.max_labels == 0 {
        return Err(AlemError::InvalidConfig(
            "max_labels must be at least 1".into(),
        ));
    }
    if let EvalMode::Holdout { test_frac } = params.eval {
        if !(0.0..1.0).contains(&test_frac) {
            return Err(AlemError::InvalidConfig(format!(
                "holdout test_frac must be in [0, 1), got {test_frac}"
            )));
        }
    }
    if let Some(t) = params.stop_at_f1 {
        if !(0.0..=1.0).contains(&t) {
            return Err(AlemError::InvalidConfig(format!(
                "stop_at_f1 must be in [0, 1], got {t}"
            )));
        }
    }
    Ok(())
}

fn one_class(labeled: &[(usize, bool)]) -> bool {
    labeled.iter().all(|&(_, b)| b) || labeled.iter().all(|&(_, b)| !b)
}

impl<S: Strategy> ActiveLearner<S> {
    /// Run a fault-tolerant session from scratch. Like
    /// [`ActiveLearner::run`] but with checkpointing, retries, and the
    /// simulated-kill hook of `config`.
    pub fn run_session(
        &mut self,
        corpus: &Corpus,
        oracle: &dyn QueryOracle,
        seed: u64,
        config: &SessionConfig,
    ) -> Result<SessionOutcome, AlemError> {
        let params = self.params.clone();
        validate_params(&params)?;
        if corpus.is_empty() {
            return Err(AlemError::DegenerateLabels("corpus has no pairs".into()));
        }
        if oracle.universe() < corpus.len() {
            return Err(AlemError::InvalidConfig(format!(
                "oracle covers {} examples but the corpus has {}",
                oracle.universe(),
                corpus.len()
            )));
        }
        if params.seed_size > params.max_labels {
            return Err(AlemError::BudgetExhausted {
                used: params.seed_size,
                budget: params.max_labels,
            });
        }

        let mut machine = SessionMachine::new(&mut self.strategy, params, config.clone());
        machine.start(corpus, seed)?;
        pump(machine, corpus, oracle, config)
    }

    /// Resume a checkpointed session. The Oracle is fast-forwarded past
    /// the queries the interrupted run consumed, and the loop continues
    /// from the checkpointed iteration under the checkpointed parameters.
    pub fn resume_session(
        &mut self,
        corpus: &Corpus,
        oracle: &dyn QueryOracle,
        checkpoint: Checkpoint,
        config: &SessionConfig,
    ) -> Result<SessionOutcome, AlemError> {
        let consumed = checkpoint.oracle_queries;
        let mut machine =
            SessionMachine::new(&mut self.strategy, self.params.clone(), config.clone());
        // Validation (version, corpus length + fingerprint, strategy,
        // params) happens inside resume; only fast-forward the oracle once
        // the checkpoint is accepted.
        machine.resume(corpus, checkpoint)?;
        oracle.fast_forward(consumed);
        pump(machine, corpus, oracle, config)
    }
}

/// Drive a [`SessionMachine`] to completion against a blocking
/// [`QueryOracle`], answering every pending query in order through the
/// session's [`RetryPolicy`] and handling the machine's boundary side
/// effects (periodic checkpoints, `halt_after`). Fresh runs and resumes
/// both land here, so the blocking API is a thin pump over the same state
/// machine `alem-serve` drives over the wire.
fn pump<S: Strategy>(
    mut machine: SessionMachine<S>,
    corpus: &Corpus,
    oracle: &dyn QueryOracle,
    config: &SessionConfig,
) -> Result<SessionOutcome, AlemError> {
    let mut written: Option<usize> = None;
    loop {
        // Boundary side effects first: the machine snapshots the
        // pre-iteration state before training, and no oracle queries can
        // be in flight at that point, so `oracle.queries()` still equals
        // its value at the boundary.
        let halted = machine.state() == MachineState::Halted;
        if let Some(k) = machine.boundary_iter() {
            let due = config
                .checkpoint_every
                .is_some_and(|every| every > 0 && k > 0 && k.is_multiple_of(every));
            if (due && written != Some(k)) || halted {
                let path = config.checkpoint_path.as_ref().ok_or_else(|| {
                    AlemError::InvalidConfig(
                        "checkpointing requested but no checkpoint_path set".into(),
                    )
                })?;
                let Some(mut ckpt) = machine.checkpoint() else {
                    return Err(AlemError::InvalidConfig(
                        "internal: boundary without a checkpoint snapshot".into(),
                    ));
                };
                ckpt.oracle_queries = oracle.queries();
                let ckpt_span = config.obs.span("checkpoint.write");
                ckpt.save(path)?;
                ckpt_span.finish();
                written = Some(k);
                if halted {
                    return Ok(SessionOutcome::Halted {
                        checkpoint: path.clone(),
                        labels_used: ckpt.labeled.len(),
                        iterations_done: ckpt.iterations.len(),
                    });
                }
            }
        }
        match machine.state() {
            MachineState::Done => {
                let Some(run) = machine.take_result() else {
                    return Err(AlemError::InvalidConfig(
                        "internal: completed session has no result".into(),
                    ));
                };
                return Ok(SessionOutcome::Complete(run));
            }
            MachineState::AwaitingAnswers => {
                let wave: Vec<usize> = machine.pending().iter().map(|q| q.example).collect();
                for i in wave {
                    let answer = config.retry.query_observed(oracle, i, &config.obs)?;
                    machine.deliver(corpus, i, answer)?;
                }
            }
            _ => {
                return Err(AlemError::InvalidConfig(
                    "internal: session machine made no progress".into(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::SvmTrainer;
    use crate::oracle::{AbstainingOracle, Oracle, OracleAnswer, TransientOracle};
    use crate::strategy::{MarginSvmStrategy, TreeQbcStrategy};
    use std::time::Duration;

    fn corpus(n: usize) -> Corpus {
        let feats: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, (i % 13) as f64 / 13.0])
            .collect();
        let truth: Vec<bool> = (0..n).map(|i| i >= 3 * n / 4).collect();
        Corpus::from_features(feats, truth)
    }

    fn params() -> LoopParams {
        LoopParams {
            seed_size: 20,
            batch_size: 10,
            max_labels: 120,
            eval: EvalMode::Progressive,
            stop_at_f1: None,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("alem-session-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let ckpt = Checkpoint {
            version: CHECKPOINT_VERSION,
            master_seed: 42,
            iter_no: 3,
            stalled: 1,
            labeled: vec![(0, true), (5, false)],
            unlabeled: vec![1, 2, 3],
            eval_idx: vec![0, 1, 2, 3, 4, 5],
            iterations: vec![],
            oracle_queries: 2,
            params: LoopParams::default(),
            strategy: "Linear-Margin".into(),
            dataset: "toy".into(),
            corpus_len: 6,
            corpus_fingerprint: 0xdead_beef_0123_4567,
            warm: None,
        };
        let path = tmp_path("roundtrip");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(AlemError::CheckpointCorrupt(_))
        ));
        std::fs::write(&path, "{\"version\": 999}").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(AlemError::CheckpointCorrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn halt_and_resume_matches_uninterrupted_run() {
        let c = corpus(300);

        let full = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al =
                ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
            al.run(&c, &oracle, 17).unwrap()
        };
        assert!(
            full.iterations.len() > 4,
            "need a few iterations to halt mid-run"
        );

        let path = tmp_path("halt-resume");
        let halted_cfg = SessionConfig {
            checkpoint_path: Some(path.clone()),
            halt_after: Some(3),
            ..SessionConfig::default()
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        match al.run_session(&c, &oracle, 17, &halted_cfg).unwrap() {
            SessionOutcome::Halted {
                iterations_done, ..
            } => assert_eq!(iterations_done, 3),
            SessionOutcome::Complete(_) => panic!("session should have halted"),
        }

        // A fresh learner + fresh oracle resumes from the checkpoint.
        let ckpt = Checkpoint::load(&path).unwrap();
        let oracle2 = Oracle::perfect(c.truths().to_vec());
        let mut al2 = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        let resumed = al2
            .resume_session(&c, &oracle2, ckpt, &SessionConfig::default())
            .unwrap()
            .run_result()
            .unwrap();

        assert_eq!(
            resumed.deterministic_fingerprint(),
            full.deterministic_fingerprint()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_lazy_halt_and_resume_matches_uninterrupted_run() {
        // Warm-started Pegasos + lazy two-phase selection: the checkpoint
        // carries the optimizer continuation, so a halt/resume run must
        // fingerprint-match the uninterrupted one bit for bit.
        let c = corpus(300).with_bounded_features();
        let fresh = || {
            MarginSvmStrategy::builder()
                .warm_start()
                .lazy_topk(1)
                .build()
        };

        let full = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al = ActiveLearner::new(fresh(), params());
            al.run(&c, &oracle, 17).unwrap()
        };

        let path = tmp_path("warm-halt-resume");
        let halted_cfg = SessionConfig {
            checkpoint_path: Some(path.clone()),
            halt_after: Some(3),
            ..SessionConfig::default()
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(fresh(), params());
        assert!(matches!(
            al.run_session(&c, &oracle, 17, &halted_cfg).unwrap(),
            SessionOutcome::Halted { .. }
        ));

        let ckpt = Checkpoint::load(&path).unwrap();
        assert!(ckpt.warm.is_some(), "warm strategy must checkpoint state");
        let oracle2 = Oracle::perfect(c.truths().to_vec());
        let mut al2 = ActiveLearner::new(fresh(), params());
        let resumed = al2
            .resume_session(&c, &oracle2, ckpt, &SessionConfig::default())
            .unwrap()
            .run_result()
            .unwrap();
        assert_eq!(
            resumed.deterministic_fingerprint(),
            full.deterministic_fingerprint()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_corpus_and_strategy() {
        let c = corpus(100);
        let ckpt = Checkpoint {
            version: CHECKPOINT_VERSION,
            master_seed: 1,
            iter_no: 1,
            stalled: 0,
            labeled: vec![(0, false)],
            unlabeled: vec![1, 2],
            eval_idx: vec![0, 1, 2],
            iterations: vec![],
            oracle_queries: 1,
            params: params(),
            strategy: "Linear-Margin(AllDim)".into(),
            dataset: "toy".into(),
            corpus_len: 999, // wrong
            corpus_fingerprint: c.content_fingerprint(),
            warm: None,
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        assert!(matches!(
            al.resume_session(&c, &oracle, ckpt.clone(), &SessionConfig::default()),
            Err(AlemError::CheckpointCorrupt(_))
        ));

        // Same length, different contents: the fingerprint catches what
        // `corpus_len` cannot.
        let mut wrong_content = ckpt.clone();
        wrong_content.corpus_len = 100;
        wrong_content.corpus_fingerprint ^= 1;
        assert!(matches!(
            al.resume_session(&c, &oracle, wrong_content, &SessionConfig::default()),
            Err(AlemError::CheckpointCorrupt(_))
        ));

        let mut wrong_strategy = ckpt;
        wrong_strategy.corpus_len = 100;
        wrong_strategy.strategy = "SomethingElse".into();
        assert!(matches!(
            al.resume_session(&c, &oracle, wrong_strategy, &SessionConfig::default()),
            Err(AlemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_params_error_instead_of_panicking() {
        let c = corpus(50);
        let oracle = Oracle::perfect(c.truths().to_vec());
        let bad = LoopParams {
            batch_size: 0,
            ..params()
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), bad);
        assert!(matches!(
            al.run(&c, &oracle, 1),
            Err(AlemError::InvalidConfig(_))
        ));

        let over_budget = LoopParams {
            seed_size: 80,
            max_labels: 40,
            ..params()
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), over_budget);
        assert!(matches!(
            al.run(&c, &oracle, 1),
            Err(AlemError::BudgetExhausted {
                used: 80,
                budget: 40
            })
        ));
    }

    #[test]
    fn small_oracle_is_rejected() {
        let c = corpus(50);
        let oracle = Oracle::perfect(vec![true; 10]); // covers too little
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        assert!(matches!(
            al.run(&c, &oracle, 1),
            Err(AlemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn transient_failures_with_retry_complete_the_budget() {
        let c = corpus(300);
        // 20% failure rate, 5 attempts: P(5 consecutive failures) = 0.032%
        // per query — the full budget completes with near certainty.
        let oracle = TransientOracle::new(Oracle::perfect(c.truths().to_vec()), 0.2, 71).unwrap();
        let cfg = SessionConfig {
            retry: RetryPolicy {
                max_attempts: 5,
                base_delay: Duration::from_micros(10),
                multiplier: 2.0,
                max_delay: Duration::from_micros(100),
            },
            ..SessionConfig::default()
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        let run = al
            .run_session(&c, &oracle, 13, &cfg)
            .unwrap()
            .run_result()
            .unwrap();
        assert_eq!(run.total_labels(), 120, "full budget despite 20% failures");
        assert!(oracle.failures() > 0, "fault injection actually fired");
    }

    #[test]
    fn exhausted_retries_surface_as_oracle_unavailable() {
        let c = corpus(100);
        let oracle = TransientOracle::new(Oracle::perfect(c.truths().to_vec()), 0.0, 1).unwrap();
        oracle.script_failures(3);
        let cfg = SessionConfig {
            retry: RetryPolicy::none(),
            ..SessionConfig::default()
        };
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        match al.run_session(&c, &oracle, 5, &cfg) {
            Err(AlemError::OracleUnavailable { attempts: 1, .. }) => {}
            other => panic!("expected OracleUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn abstentions_leave_examples_reselectable() {
        let c = corpus(300);
        let oracle = AbstainingOracle::new(Oracle::perfect(c.truths().to_vec()), 0.3, 21).unwrap();
        let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
        let run = al
            .run_session(&c, &oracle, 29, &SessionConfig::default())
            .unwrap()
            .run_result()
            .unwrap();
        assert!(oracle.abstentions() > 0, "abstentions actually fired");
        // Labels still accumulate despite abstentions.
        assert!(run.total_labels() > 20, "labels: {}", run.total_labels());
    }

    #[test]
    fn telemetry_is_determinism_neutral() {
        let c = corpus(300);
        let plain = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
            al.run_session(&c, &oracle, 41, &SessionConfig::default())
                .unwrap()
                .run_result()
                .unwrap()
        };

        let obs = Registry::enabled();
        let cfg = SessionConfig {
            obs: obs.clone(),
            ..SessionConfig::default()
        };
        let observed = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
            al.run_session(&c, &oracle, 41, &cfg)
                .unwrap()
                .run_result()
                .unwrap()
        };
        assert_eq!(
            plain.deterministic_fingerprint(),
            observed.deterministic_fingerprint(),
            "enabling telemetry changed the run"
        );

        // The enabled registry really recorded the whole loop.
        let names: std::collections::BTreeSet<&str> = obs.events().iter().map(|e| e.name).collect();
        for want in [
            "seed",
            "iteration",
            "train",
            "eval",
            "select",
            "select.score",
            "oracle.query",
        ] {
            assert!(names.contains(want), "missing span {want} in {names:?}");
        }
        assert!(obs.counter_value("oracle.labels") > 0);
        // The parallel layer reports its shape even when sequential.
        assert!(names.contains("par.threads"), "missing gauge par.threads");
        assert!(obs.counter_value("par.chunks") > 0);
    }

    #[test]
    fn eval_mode_does_not_perturb_query_stream() {
        use std::sync::Mutex;

        /// Records the exact index sequence sent to the Oracle.
        struct RecordingOracle {
            inner: Oracle,
            order: Mutex<Vec<usize>>,
        }
        impl QueryOracle for RecordingOracle {
            fn try_label(&self, i: usize) -> Result<OracleAnswer, AlemError> {
                self.order.lock().unwrap().push(i);
                self.inner.try_label(i)
            }
            fn queries(&self) -> u64 {
                self.inner.queries()
            }
            fn universe(&self) -> usize {
                self.inner.universe()
            }
            fn fast_forward(&self, n: u64) {
                self.inner.fast_forward(n)
            }
        }

        let c = corpus(300);
        let run = |eval: EvalMode| -> Vec<usize> {
            let oracle = RecordingOracle {
                inner: Oracle::perfect(c.truths().to_vec()),
                order: Mutex::new(Vec::new()),
            };
            let p = LoopParams { eval, ..params() };
            let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), p);
            al.run_session(&c, &oracle, 31, &SessionConfig::default())
                .unwrap();
            oracle.order.into_inner().unwrap()
        };

        // A hold-out split that holds nothing out leaves the same pool as
        // progressive mode; with per-concern setup RNGs the *entire* query
        // stream — seed draw and every selection — must be identical.
        // (Before the fix, the split's shuffles advanced the shared setup
        // RNG and the two modes diverged from the first seed query on.)
        let progressive = run(EvalMode::Progressive);
        let holdout = run(EvalMode::Holdout { test_frac: 0.0 });
        assert_eq!(progressive, holdout);
    }

    #[test]
    fn parallelism_setting_keeps_fingerprint() {
        let c = corpus(300);
        let run = |par: Parallelism| {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let cfg = SessionConfig {
                parallelism: par,
                ..SessionConfig::default()
            };
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
            al.run_session(&c, &oracle, 47, &cfg)
                .unwrap()
                .run_result()
                .unwrap()
        };
        let seq = run(Parallelism::sequential());
        for t in [2, 4] {
            assert_eq!(
                seq.deterministic_fingerprint(),
                run(Parallelism::fixed(t)).deterministic_fingerprint(),
                "threads={t}"
            );
        }
    }

    #[test]
    fn resume_with_telemetry_keeps_fingerprint() {
        let c = corpus(300);
        let full = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al =
                ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
            al.run(&c, &oracle, 17).unwrap()
        };

        let path = tmp_path("telemetry-resume");
        let halted_cfg = SessionConfig {
            checkpoint_path: Some(path.clone()),
            halt_after: Some(3),
            obs: Registry::enabled(),
            ..SessionConfig::default()
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        al.run_session(&c, &oracle, 17, &halted_cfg).unwrap();

        let resume_cfg = SessionConfig {
            obs: Registry::enabled(),
            ..SessionConfig::default()
        };
        let ckpt = Checkpoint::load(&path).unwrap();
        let oracle2 = Oracle::perfect(c.truths().to_vec());
        let mut al2 = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        let resumed = al2
            .resume_session(&c, &oracle2, ckpt, &resume_cfg)
            .unwrap()
            .run_result()
            .unwrap();
        assert_eq!(
            resumed.deterministic_fingerprint(),
            full.deterministic_fingerprint()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn periodic_checkpoints_are_written() {
        let c = corpus(300);
        let path = tmp_path("periodic");
        let cfg = SessionConfig {
            checkpoint_every: Some(2),
            checkpoint_path: Some(path.clone()),
            ..SessionConfig::default()
        };
        let oracle = Oracle::perfect(c.truths().to_vec());
        let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
        al.run_session(&c, &oracle, 23, &cfg).unwrap();
        let ckpt = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt.version, CHECKPOINT_VERSION);
        assert!(ckpt.iter_no >= 2);
        assert_eq!(ckpt.corpus_len, 300);
        assert_eq!(ckpt.corpus_fingerprint, c.content_fingerprint());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_tmp_sibling_is_removed_on_load() {
        let ckpt = Checkpoint {
            version: CHECKPOINT_VERSION,
            master_seed: 7,
            iter_no: 1,
            stalled: 0,
            labeled: vec![(0, true)],
            unlabeled: vec![1],
            eval_idx: vec![0, 1],
            iterations: vec![],
            oracle_queries: 1,
            params: LoopParams::default(),
            strategy: "Linear-Margin".into(),
            dataset: "toy".into(),
            corpus_len: 2,
            corpus_fingerprint: 9,
            warm: None,
        };
        let path = tmp_path("stale-tmp");
        ckpt.save(&path).unwrap();
        // Simulate a kill between write and rename: a truncated .tmp
        // sibling next to a good checkpoint.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, "{\"version\": 2, \"truncat").unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt, "durable file is authoritative");
        assert!(!tmp.exists(), "stale .tmp should be cleaned up");
        std::fs::remove_file(&path).ok();
    }

    /// Drive the `SessionMachine` by hand, delivering each batch wave in
    /// reverse arrival order with duplicated and bogus answers thrown in.
    /// The fingerprint must equal the blocking run's: answer *values*
    /// matter, delivery order and duplication must not.
    #[test]
    fn machine_is_invariant_to_answer_delivery_order() {
        let c = corpus(300);
        let blocking = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params());
            al.run(&c, &oracle, 53).unwrap()
        };

        let mut machine =
            SessionMachine::new(TreeQbcStrategy::new(5), params(), SessionConfig::default());
        machine.start(&c, 53).unwrap();
        let mut waves = 0usize;
        while machine.state() == MachineState::AwaitingAnswers {
            let mut wave: Vec<usize> = machine.pending().iter().map(|q| q.example).collect();
            wave.reverse();
            waves += 1;
            // An answer for an example nobody asked about must be ignored.
            machine
                .deliver(&c, usize::MAX, OracleAnswer::Label(true))
                .unwrap();
            let n = wave.len();
            for (pos, i) in wave.into_iter().enumerate() {
                machine
                    .deliver(&c, i, OracleAnswer::Label(c.truth(i)))
                    .unwrap();
                // Mid-wave duplicates (with a contradicting label!) must be
                // ignored; after the last answer the machine has already
                // advanced, so a duplicate there could hit the next wave.
                if pos + 1 < n {
                    machine
                        .deliver(&c, i, OracleAnswer::Label(!c.truth(i)))
                        .unwrap();
                }
            }
        }
        assert_eq!(machine.state(), MachineState::Done);
        assert!(machine.ignored_answers() > 0, "duplicates actually fired");
        assert!(waves > 2, "expected several waves, got {waves}");
        let run = machine.take_result().unwrap();
        assert_eq!(
            run.deterministic_fingerprint(),
            blocking.deterministic_fingerprint(),
            "delivery order changed the run"
        );
    }

    /// Checkpoint the machine at a boundary, rebuild a fresh machine from
    /// that checkpoint, and finish: fingerprint must match the
    /// uninterrupted blocking run.
    #[test]
    fn machine_checkpoint_rehydrates_bit_identically() {
        let c = corpus(300);
        let full = {
            let oracle = Oracle::perfect(c.truths().to_vec());
            let mut al =
                ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params());
            al.run(&c, &oracle, 61).unwrap()
        };

        let mut machine = SessionMachine::new(
            MarginSvmStrategy::new(SvmTrainer::default()),
            params(),
            SessionConfig::default(),
        );
        machine.start(&c, 61).unwrap();
        // Answer waves until the third iteration boundary, then snapshot.
        while machine.state() == MachineState::AwaitingAnswers && machine.boundary_iter() != Some(3)
        {
            let wave: Vec<usize> = machine.pending().iter().map(|q| q.example).collect();
            for i in wave {
                machine
                    .deliver(&c, i, OracleAnswer::Label(c.truth(i)))
                    .unwrap();
            }
        }
        let ckpt = machine.checkpoint().expect("boundary reached");
        assert_eq!(ckpt.iter_no, 3);
        drop(machine);

        let mut resumed = SessionMachine::new(
            MarginSvmStrategy::new(SvmTrainer::default()),
            params(),
            SessionConfig::default(),
        );
        resumed.resume(&c, ckpt).unwrap();
        while resumed.state() == MachineState::AwaitingAnswers {
            let wave: Vec<usize> = resumed.pending().iter().map(|q| q.example).collect();
            for i in wave {
                resumed
                    .deliver(&c, i, OracleAnswer::Label(c.truth(i)))
                    .unwrap();
            }
        }
        assert_eq!(resumed.state(), MachineState::Done);
        let run = resumed.take_result().unwrap();
        assert_eq!(
            run.deterministic_fingerprint(),
            full.deterministic_fingerprint()
        );
    }
}
