//! Strategies: a learner paired with a compatible example selector.
//!
//! The paper's framework records which selectors are compatible with which
//! learners through a class hierarchy (Fig. 2); here each valid combination
//! is a concrete [`Strategy`] implementation the [`crate::loop_`] driver
//! can run:
//!
//! | Strategy | Learner | Selector |
//! |---|---|---|
//! | [`QbcStrategy`] | any [`Trainer`] | learner-agnostic bootstrap QBC |
//! | [`TreeQbcStrategy`] | random forest | learner-aware QBC over its trees |
//! | [`MarginSvmStrategy`] | linear SVM | margin, optionally blocking-dims |
//! | [`MarginNnStrategy`] | neural net | margin (pre-sigmoid affine output) |
//! | [`LfpLfnStrategy`] | DNF rules | LFP/LFN heuristic |
//! | [`RandomStrategy`] | any [`Trainer`] | uniform random (supervised baseline) |
//!
//! The active-ensemble optimization lives in [`crate::ensemble`].

use crate::corpus::Corpus;
use crate::error::AlemError;
use crate::interpret;
use crate::learner::{DnfTrainer, ForestTrainer, NnTrainer, SvmTrainer, Trainer};
use crate::selector::{self, Selection};
use alem_obs::Registry;
use alem_par::Parallelism;
use mlcore::forest::RandomForest;
use mlcore::nn::NeuralNet;
use mlcore::rules::{Conjunction, Dnf};
use mlcore::svm::LinearSvm;
use mlcore::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Optional per-iteration extras a strategy can report.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrategyStats {
    /// #DNF atoms of the current interpretable model.
    pub atoms: Option<usize>,
    /// Maximum tree depth of the current ensemble.
    pub depth: Option<usize>,
    /// Accepted models in an active ensemble.
    pub accepted_models: Option<usize>,
    /// Unlabeled examples pruned by blocking dimensions last selection.
    pub pruned: Option<usize>,
}

/// A learner + selector combination runnable by the active-learning loop.
///
/// # Fallibility
///
/// [`Strategy::fit`] is the validation point: it returns an
/// [`AlemError`] when the corpus cannot support the strategy (e.g. a rule
/// learner on a corpus without Boolean predicate features). Once `fit`
/// has succeeded, [`Strategy::select`] and [`Strategy::predict`] cannot
/// fail; called *before* a successful `fit` they degrade instead of
/// panicking — `select` returns an empty [`Selection`] (the session
/// driver falls back to random sampling) and `predict` returns `false`
/// (no evidence of a match).
pub trait Strategy {
    /// Report label, e.g. `"Trees(20)"`.
    fn name(&self) -> String;

    /// (Re)train on the cumulative labeled data. Errors when the corpus
    /// is unusable for this strategy ([`AlemError::InvalidConfig`]).
    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError>;

    /// Choose up to `batch` examples from the unlabeled pool. Timing in
    /// the returned [`Selection`] is sourced from `obs` spans
    /// (`select.committee` / `select.score`); pass
    /// [`Registry::disabled`] when telemetry is off.
    #[allow(clippy::too_many_arguments)] // mirrors the pipeline's natural inputs
    fn select(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection;

    /// Batch ambiguity scores for the unlabeled pool: entry `j` scores
    /// `unlabeled[j]`, higher means more informative, and
    /// [`selector::EXCLUDED`] marks examples this strategy refuses to
    /// select (pruned by blocking dimensions, covered by accepted rules).
    ///
    /// This is the uniform batch-scoring surface behind every selector:
    /// [`Strategy::select`] implementations are thin top-k consumers of
    /// these scores, and the parallel fan-out (see
    /// [`Strategy::set_parallelism`]) happens inside this single method
    /// family instead of once per selector.
    ///
    /// Errors with [`AlemError::InvalidConfig`] when the strategy has no
    /// scoring model yet (e.g. `fit`/`select` not called). The default
    /// implementation scores every example `0.0` — sequentially, with no
    /// model consulted — so a generic top-k consumer degrades to uniform
    /// random sampling (ties are randomized).
    fn score_pool(&self, _corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        Ok(vec![0.0; unlabeled.len()])
    }

    /// Install the thread-count policy used by `score_pool`/`select`/`fit`
    /// fan-outs. Results are byte-identical for any setting; only wall
    /// clock changes. The default ignores it (inherently sequential
    /// strategies). Strategies start out sequential until the session
    /// driver calls this with [`crate::session::SessionConfig`]'s value.
    fn set_parallelism(&mut self, _par: Parallelism) {}

    /// Predict the label of corpus example `i` with the current model.
    fn predict(&self, corpus: &Corpus, i: usize) -> bool;

    /// Per-iteration extras (interpretability, ensemble size, pruning).
    fn stats(&self) -> StrategyStats {
        StrategyStats::default()
    }

    /// Strategy-initiated termination (e.g. LFP/LFN exhaustion).
    fn terminated(&self) -> bool {
        false
    }

    /// Hook after new labels arrive; ensemble strategies prune pools here.
    #[allow(clippy::too_many_arguments)] // mirrors the pipeline's natural inputs
    fn post_label(
        &mut self,
        _corpus: &Corpus,
        _new: &[(usize, bool)],
        _labeled: &mut Vec<(usize, bool)>,
        _unlabeled: &mut Vec<usize>,
        _rng: &mut StdRng,
        _obs: &Registry,
    ) {
    }

    /// Snapshot the trained model for persistence, if this strategy's
    /// family supports it (see [`crate::model_io::SavedModel`]).
    fn saved_model(&self) -> Option<crate::model_io::SavedModel> {
        None
    }

    /// Snapshot the warm-training state (optimizer continuation, rotation
    /// counters) for checkpointing, if this strategy trains incrementally
    /// (see [`crate::model_io::WarmState`]). `None` for cold-only
    /// strategies or before the first fit.
    fn warm_state(&self) -> Option<crate::model_io::WarmState> {
        None
    }

    /// Restore warm-training state captured by [`Strategy::warm_state`],
    /// so a resumed session's next fit continues bit-identically. The
    /// default (cold-only strategies) ignores it.
    fn restore_warm_state(&mut self, _warm: crate::model_io::WarmState) {}
}

/// Mutable references delegate, so a [`crate::session::SessionMachine`]
/// can borrow a strategy (e.g. out of an
/// [`crate::loop_::ActiveLearner`]) instead of owning it.
impl<S: Strategy + ?Sized> Strategy for &mut S {
    fn name(&self) -> String {
        (**self).name()
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        (**self).fit(corpus, labeled, rng)
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        (**self).select(corpus, labeled, unlabeled, batch, rng, obs)
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        (**self).score_pool(corpus, unlabeled)
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        (**self).set_parallelism(par);
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        (**self).predict(corpus, i)
    }

    fn stats(&self) -> StrategyStats {
        (**self).stats()
    }

    fn terminated(&self) -> bool {
        (**self).terminated()
    }

    fn post_label(
        &mut self,
        corpus: &Corpus,
        new: &[(usize, bool)],
        labeled: &mut Vec<(usize, bool)>,
        unlabeled: &mut Vec<usize>,
        rng: &mut StdRng,
        obs: &Registry,
    ) {
        (**self).post_label(corpus, new, labeled, unlabeled, rng, obs);
    }

    fn saved_model(&self) -> Option<crate::model_io::SavedModel> {
        (**self).saved_model()
    }

    fn warm_state(&self) -> Option<crate::model_io::WarmState> {
        (**self).warm_state()
    }

    fn restore_warm_state(&mut self, warm: crate::model_io::WarmState) {
        (**self).restore_warm_state(warm);
    }
}

impl Strategy for Box<dyn Strategy + Send> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        (**self).fit(corpus, labeled, rng)
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        (**self).select(corpus, labeled, unlabeled, batch, rng, obs)
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        (**self).score_pool(corpus, unlabeled)
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        (**self).set_parallelism(par);
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        (**self).predict(corpus, i)
    }

    fn stats(&self) -> StrategyStats {
        (**self).stats()
    }

    fn terminated(&self) -> bool {
        (**self).terminated()
    }

    fn post_label(
        &mut self,
        corpus: &Corpus,
        new: &[(usize, bool)],
        labeled: &mut Vec<(usize, bool)>,
        unlabeled: &mut Vec<usize>,
        rng: &mut StdRng,
        obs: &Registry,
    ) {
        (**self).post_label(corpus, new, labeled, unlabeled, rng, obs);
    }

    fn saved_model(&self) -> Option<crate::model_io::SavedModel> {
        (**self).saved_model()
    }

    fn warm_state(&self) -> Option<crate::model_io::WarmState> {
        (**self).warm_state()
    }

    fn restore_warm_state(&mut self, warm: crate::model_io::WarmState) {
        (**self).restore_warm_state(warm);
    }
}

/// Gather labeled feature rows for training. Errors when `use_bool` is
/// requested on a corpus without Boolean predicate features — the one
/// user-reachable way to hand a rule-family strategy the wrong corpus.
pub(crate) fn labeled_rows(
    corpus: &Corpus,
    labeled: &[(usize, bool)],
    use_bool: bool,
    // alem-lint: allow(flat-feature-store) -- O(labeled) training rows gathered per fit, not the pool-sized matrix
) -> Result<(Vec<Vec<f64>>, Vec<bool>), AlemError> {
    let xs = if use_bool {
        let bools = corpus.bool_features().ok_or_else(|| {
            AlemError::InvalidConfig(format!(
                "corpus '{}' has no Boolean predicate features; build it with \
                 Corpus::from_candidates or Corpus::with_bool_features",
                corpus.name()
            ))
        })?;
        labeled.iter().map(|&(i, _)| bools[i].clone()).collect()
    } else {
        labeled.iter().map(|&(i, _)| corpus.x(i).to_vec()).collect()
    };
    let ys = labeled.iter().map(|&(_, y)| y).collect();
    Ok((xs, ys))
}

// ---------------------------------------------------------------------------
// Learner-agnostic QBC
// ---------------------------------------------------------------------------

/// Learner-agnostic bootstrap QBC over any trainer (§4.1).
pub struct QbcStrategy<T: Trainer> {
    trainer: T,
    committee_size: usize,
    use_bool: bool,
    model: Option<T::Model>,
    /// Committee from the most recent selection round, kept so
    /// [`Strategy::score_pool`] can score without retraining.
    committee: Vec<T::Model>,
    par: Parallelism,
}

/// Builder for [`QbcStrategy`]; start from [`QbcStrategy::builder`].
#[derive(Debug, Clone)]
pub struct QbcStrategyBuilder<T: Trainer> {
    trainer: T,
    committee_size: usize,
    use_bool: bool,
}

impl<T: Trainer> QbcStrategyBuilder<T> {
    /// Committee size `B` (paper sweeps 2, 10, 20; default 20).
    pub fn committee_size(mut self, size: usize) -> Self {
        self.committee_size = size;
        self
    }

    /// Train committee members on Boolean predicate features instead of
    /// continuous similarities (rule learners, Fig. 19).
    pub fn bool_features(mut self, use_bool: bool) -> Self {
        self.use_bool = use_bool;
        self
    }

    /// Finish building the strategy.
    pub fn build(self) -> QbcStrategy<T> {
        QbcStrategy {
            trainer: self.trainer,
            committee_size: self.committee_size,
            use_bool: self.use_bool,
            model: None,
            committee: Vec::new(),
            par: Parallelism::sequential(),
        }
    }
}

impl<T: Trainer> QbcStrategy<T> {
    /// QBC with a committee of `committee_size` models over continuous
    /// features.
    pub fn new(trainer: T, committee_size: usize) -> Self {
        QbcStrategy::builder(trainer)
            .committee_size(committee_size)
            .build()
    }

    /// Configure a QBC strategy; defaults to a committee of 20 over
    /// continuous features.
    pub fn builder(trainer: T) -> QbcStrategyBuilder<T> {
        QbcStrategyBuilder {
            trainer,
            committee_size: 20,
            use_bool: false,
        }
    }

    /// QBC over Boolean predicate features (rule learners, Fig. 19).
    #[deprecated(
        note = "use QbcStrategy::builder(trainer).committee_size(n).bool_features(true).build()"
    )]
    pub fn new_bool(trainer: T, committee_size: usize) -> Self {
        QbcStrategy::builder(trainer)
            .committee_size(committee_size)
            .bool_features(true)
            .build()
    }

    /// The current trained model, if any.
    pub fn model(&self) -> Option<&T::Model> {
        self.model.as_ref()
    }
}

impl<T: Trainer> Strategy for QbcStrategy<T> {
    fn name(&self) -> String {
        format!("{}-QBC({})", self.trainer.name(), self.committee_size)
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        let (xs, ys) = labeled_rows(corpus, labeled, self.use_bool)?;
        self.model = Some(self.trainer.train(&xs, &ys, rng));
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let (sel, committee) = selector::qbc::select(
            &self.trainer,
            self.committee_size,
            corpus,
            labeled,
            unlabeled,
            batch,
            rng,
            self.use_bool,
            obs,
            &self.par,
        );
        self.committee = committee;
        sel
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        if self.committee.is_empty() {
            return Err(AlemError::InvalidConfig(
                "QBC has no committee yet; run select once before score_pool".to_owned(),
            ));
        }
        Ok(selector::qbc::score_pool(
            &self.committee,
            corpus,
            unlabeled,
            self.use_bool,
            &self.par,
        ))
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        let Some(model) = self.model.as_ref() else {
            return false;
        };
        if self.use_bool {
            corpus
                .bool_features()
                .is_some_and(|bools| model.predict(&bools[i]))
        } else {
            model.predict(corpus.x(i))
        }
    }
}

// ---------------------------------------------------------------------------
// Learner-aware QBC for tree ensembles
// ---------------------------------------------------------------------------

/// Trees retrained per warm round are bootstrap-capped at this many
/// resampled examples, which is what keeps per-round train cost flat as
/// the labeled pool grows.
const REFRESH_BOOTSTRAP_CAP: usize = 256;

/// Random forest with learner-aware QBC over its own trees (§4.1.1) — the
/// paper's best-performing combination, labeled `Trees(n)` in the figures.
pub struct TreeQbcStrategy {
    trainer: ForestTrainer,
    /// When set, warm rounds retrain only this fraction of the committee
    /// (rotating deterministically) instead of the whole forest.
    refresh_frac: Option<f64>,
    model: Option<RandomForest>,
    /// Warm (partial-refresh) rounds since the last cold fit; drives the
    /// member rotation.
    warm_rounds: u64,
    par: Parallelism,
}

/// Builder for [`TreeQbcStrategy`]; start from [`TreeQbcStrategy::builder`].
#[derive(Debug, Clone)]
pub struct TreeQbcStrategyBuilder {
    trainer: ForestTrainer,
    refresh_frac: Option<f64>,
}

impl TreeQbcStrategyBuilder {
    /// Number of trees (paper sweeps 2, 10, 20).
    pub fn trees(mut self, n_trees: usize) -> Self {
        self.trainer = ForestTrainer::with_trees(n_trees);
        self
    }

    /// Use a custom forest trainer (ablation benches).
    pub fn trainer(mut self, trainer: ForestTrainer) -> Self {
        self.trainer = trainer;
        self
    }

    /// Warm-start retraining: after the first (cold) fit, each round
    /// retrains only `ceil(frac × n_trees)` committee members, chosen by
    /// deterministic rotation, on a bootstrap capped at
    /// [`REFRESH_BOOTSTRAP_CAP`] examples — so per-round train cost stops
    /// scaling with the labeled-pool size. `frac` is clamped to
    /// `(0, 1]`-sensible membership (at least one tree, at most all).
    pub fn refresh_frac(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "refresh_frac must be in (0, 1]");
        self.refresh_frac = Some(frac);
        self
    }

    /// Finish building the strategy.
    pub fn build(self) -> TreeQbcStrategy {
        TreeQbcStrategy {
            trainer: self.trainer,
            refresh_frac: self.refresh_frac,
            model: None,
            warm_rounds: 0,
            par: Parallelism::sequential(),
        }
    }
}

impl TreeQbcStrategy {
    /// Forest of `n_trees` with Corleone settings.
    pub fn new(n_trees: usize) -> Self {
        TreeQbcStrategy::builder().trees(n_trees).build()
    }

    /// Configure a tree-QBC strategy; defaults to a 10-tree forest with
    /// Corleone settings.
    pub fn builder() -> TreeQbcStrategyBuilder {
        TreeQbcStrategyBuilder {
            trainer: ForestTrainer::default(),
            refresh_frac: None,
        }
    }

    /// Use a custom forest trainer (ablation benches).
    #[deprecated(note = "use TreeQbcStrategy::builder().trainer(t).build()")]
    pub fn with_trainer(trainer: ForestTrainer) -> Self {
        TreeQbcStrategy::builder().trainer(trainer).build()
    }

    /// The current forest, if trained.
    pub fn model(&self) -> Option<&RandomForest> {
        self.model.as_ref()
    }
}

impl Strategy for TreeQbcStrategy {
    fn name(&self) -> String {
        format!("Trees({})", self.trainer.0.n_trees)
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        let (xs, ys) = labeled_rows(corpus, labeled, false)?;
        let set = mlcore::data::TrainSet::new(&xs, &ys);
        match (self.refresh_frac, self.model.take()) {
            (Some(frac), Some(forest)) if !set.is_empty() => {
                let n = self.trainer.0.n_trees;
                let m = ((frac * n as f64).ceil() as usize).clamp(1, n);
                // Rotate through the committee so every tree is eventually
                // refreshed; consecutive integers mod n are distinct while
                // m ≤ n, so members never collide within a round.
                let start = (self.warm_rounds as usize).wrapping_mul(m);
                let members: Vec<usize> = (0..m).map(|j| (start + j) % n).collect();
                self.model = Some(self.trainer.0.refresh_with(
                    &forest,
                    &members,
                    &set,
                    Some(REFRESH_BOOTSTRAP_CAP),
                    rng,
                    &self.par,
                ));
                self.warm_rounds += 1;
            }
            _ => {
                self.model = Some(self.trainer.0.train_with(&set, rng, &self.par));
                self.warm_rounds = 0;
            }
        }
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let Some(forest) = self.model.as_ref() else {
            return Selection::default();
        };
        selector::tree_qbc::select(forest, corpus, unlabeled, batch, rng, obs, &self.par)
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        let forest = self.model.as_ref().ok_or_else(|| {
            AlemError::InvalidConfig("tree QBC has no forest yet; call fit first".to_owned())
        })?;
        Ok(selector::tree_qbc::score_pool(
            forest, corpus, unlabeled, &self.par,
        ))
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        self.model
            .as_ref()
            .is_some_and(|forest| forest.predict(corpus.x(i)))
    }

    fn stats(&self) -> StrategyStats {
        let forest = self.model.as_ref();
        StrategyStats {
            atoms: forest.map(interpret::forest_atom_count),
            depth: forest.map(RandomForest::depth),
            ..StrategyStats::default()
        }
    }

    fn saved_model(&self) -> Option<crate::model_io::SavedModel> {
        self.model.clone().map(crate::model_io::SavedModel::Forest)
    }

    fn warm_state(&self) -> Option<crate::model_io::WarmState> {
        match (self.refresh_frac, &self.model) {
            (Some(_), Some(model)) => Some(crate::model_io::WarmState::Forest {
                model: model.clone(),
                rounds: self.warm_rounds,
            }),
            _ => None,
        }
    }

    fn restore_warm_state(&mut self, warm: crate::model_io::WarmState) {
        if let crate::model_io::WarmState::Forest { model, rounds } = warm {
            self.model = Some(model);
            self.warm_rounds = rounds;
        }
    }
}

// ---------------------------------------------------------------------------
// Margin for linear SVMs (with optional blocking dimensions)
// ---------------------------------------------------------------------------

/// Replay sample size mixed into each warm SVM round alongside the new
/// labels, so old decision boundaries are not forgotten while per-round
/// train cost stays flat as the labeled pool grows.
const WARM_REPLAY_CAP: usize = 32;

/// Fraction of the fresh top-`k` weight mass the sticky phase-1 dim set
/// must retain to be kept for another round (see
/// [`MarginSvmStrategy`]'s `lazy_dims`). Below it the set is refreshed
/// from the current weights.
const LAZY_DIMS_STICKINESS: f64 = 0.9;

/// Linear SVM with margin-based selection (§4.2.1); `blocking_k` enables
/// the §5.1 blocking-dimension pruning.
pub struct MarginSvmStrategy {
    trainer: SvmTrainer,
    blocking_k: Option<usize>,
    lazy: Option<selector::lazy_margin::LazyParams>,
    /// Sticky phase-1 dim set: kept across rounds while it retains
    /// [`LAZY_DIMS_STICKINESS`] of the fresh top-`k` weight mass,
    /// refreshed otherwise. Selection is bit-identical for any dim set
    /// (see [`selector::lazy_margin::select_with_dims`]), so stickiness
    /// only moves the speed/pruning trade-off: a stable set keeps the
    /// lazy store's partial-cell memo near `pool × topk` instead of
    /// growing every round as the top-weight ranking churns, while the
    /// mass test still tracks real weight drift. Derived state: not
    /// checkpointed, re-derived from the restored model on resume.
    lazy_dims: Option<Vec<usize>>,
    /// Warm-start Pegasos across rounds instead of refitting from scratch.
    warm: bool,
    /// Resumable optimizer state when `warm` and at least one fit ran.
    warm_state: Option<mlcore::svm::SvmWarmState>,
    /// Labeled examples already absorbed into `warm_state`.
    seen: usize,
    /// Warm rounds since the last cold fit.
    warm_rounds: u64,
    model: Option<LinearSvm>,
    last_pruned: Option<usize>,
    par: Parallelism,
}

/// Builder for [`MarginSvmStrategy`]; start from
/// [`MarginSvmStrategy::builder`].
#[derive(Debug, Clone, Default)]
pub struct MarginSvmStrategyBuilder {
    trainer: SvmTrainer,
    blocking_k: Option<usize>,
    lazy: Option<selector::lazy_margin::LazyParams>,
    warm: bool,
}

impl MarginSvmStrategyBuilder {
    /// Use a custom SVM trainer.
    pub fn trainer(mut self, trainer: SvmTrainer) -> Self {
        self.trainer = trainer;
        self
    }

    /// Prune with the top-`k` blocking dimensions of §5.1.
    pub fn blocking_dims(mut self, k: usize) -> Self {
        self.blocking_k = Some(k);
        self
    }

    /// Select with two-phase lazy extraction: phase 1 reads only the `k`
    /// highest-`|weight|` dims and interval-bounds each pair's margin;
    /// only pairs inside the uncertain band get their full vector
    /// materialized. The chosen batches are bit-identical to eager
    /// selection (see [`selector::lazy_margin`]); engaged only on corpora
    /// with `[0, 1]`-bounded features, eager fallback otherwise. Ignored
    /// when blocking dims are configured (that path already prunes).
    pub fn lazy_topk(mut self, k: usize) -> Self {
        self.lazy = Some(selector::lazy_margin::LazyParams::new(k));
        self
    }

    /// Widen the phase-2 band of [`MarginSvmStrategyBuilder::lazy_topk`]:
    /// pairs whose score upper bound lands within `band` of the phase-1
    /// threshold are also materialized. Zero (the default) is already
    /// exact; implies `lazy_topk`'s default if not set.
    pub fn lazy_band(mut self, band: f64) -> Self {
        let params = self
            .lazy
            .take()
            .unwrap_or_else(|| selector::lazy_margin::LazyParams::new(8));
        self.lazy = Some(selector::lazy_margin::LazyParams { band, ..params });
        self
    }

    /// Warm-start training: the first fit is an ordinary cold Pegasos
    /// solve; every later round *continues* that optimization — a few
    /// passes over the newly labeled examples plus a replay sample of at
    /// most [`WARM_REPLAY_CAP`] older ones — so per-round train cost
    /// stops scaling with the labeled-pool size.
    pub fn warm_start(mut self) -> Self {
        self.warm = true;
        self
    }

    /// Finish building the strategy.
    pub fn build(self) -> MarginSvmStrategy {
        MarginSvmStrategy {
            trainer: self.trainer,
            blocking_k: self.blocking_k,
            lazy: self.lazy,
            lazy_dims: None,
            warm: self.warm,
            warm_state: None,
            seen: 0,
            warm_rounds: 0,
            model: None,
            last_pruned: None,
            par: Parallelism::sequential(),
        }
    }
}

impl MarginSvmStrategy {
    /// Vanilla margin over all dimensions.
    pub fn new(trainer: SvmTrainer) -> Self {
        MarginSvmStrategy::builder().trainer(trainer).build()
    }

    /// Configure a margin-SVM strategy; defaults to a vanilla margin over
    /// all dimensions with a default SVM trainer.
    pub fn builder() -> MarginSvmStrategyBuilder {
        MarginSvmStrategyBuilder::default()
    }

    /// Margin with top-`k` blocking dimensions.
    #[deprecated(note = "use MarginSvmStrategy::builder().trainer(t).blocking_dims(k).build()")]
    pub fn with_blocking(trainer: SvmTrainer, k: usize) -> Self {
        MarginSvmStrategy::builder()
            .trainer(trainer)
            .blocking_dims(k)
            .build()
    }

    /// The current SVM, if trained.
    pub fn model(&self) -> Option<&LinearSvm> {
        self.model.as_ref()
    }
}

impl Strategy for MarginSvmStrategy {
    fn name(&self) -> String {
        match self.blocking_k {
            Some(k) => format!("Linear-Margin({k}Dim)"),
            None => "Linear-Margin".to_owned(),
        }
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        if !self.warm {
            let (xs, ys) = labeled_rows(corpus, labeled, false)?;
            self.model = Some(self.trainer.train(&xs, &ys, rng));
            return Ok(());
        }
        match self.warm_state.take() {
            None => {
                // First fit is the ordinary cold solve; it seeds the
                // optimizer state the warm rounds continue from.
                let (xs, ys) = labeled_rows(corpus, labeled, false)?;
                let model = self.trainer.train(&xs, &ys, rng);
                self.warm_state = Some(mlcore::svm::SvmWarmState::after_cold_fit(
                    &model,
                    &self.trainer.0,
                    labeled.len(),
                ));
                self.seen = labeled.len();
                self.warm_rounds = 0;
                self.model = Some(model);
            }
            Some(state) => {
                let seen = self.seen.min(labeled.len());
                let mut round: Vec<(usize, bool)> = labeled[seen..].to_vec();
                // Replay a small sample of older labels so the boundary
                // keeps honoring them without a full-pool pass.
                let replay_n = WARM_REPLAY_CAP.min(seen);
                round.extend((0..replay_n).map(|_| labeled[rng.gen_range(0..seen)]));
                let (xs, ys) = labeled_rows(corpus, &round, false)?;
                let set = mlcore::data::TrainSet::new(&xs, &ys);
                if !set.is_empty() && set.dim() != state.weights.len() {
                    // Dimensionality changed under us (different corpus);
                    // the continuation is meaningless, fall back to cold.
                    let (xs, ys) = labeled_rows(corpus, labeled, false)?;
                    let model = self.trainer.train(&xs, &ys, rng);
                    self.warm_state = Some(mlcore::svm::SvmWarmState::after_cold_fit(
                        &model,
                        &self.trainer.0,
                        labeled.len(),
                    ));
                    self.seen = labeled.len();
                    self.warm_rounds = 0;
                    self.model = Some(model);
                    return Ok(());
                }
                let epochs = (self.trainer.0.epochs / 5).max(2);
                let (model, next) = self.trainer.0.train_warm(&set, state, epochs, rng);
                self.warm_state = Some(next);
                self.seen = labeled.len();
                self.warm_rounds += 1;
                self.model = Some(model);
            }
        }
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let Some(svm) = self.model.as_ref() else {
            return Selection::default();
        };
        match (self.blocking_k, &self.lazy) {
            (Some(k), _) => {
                let out = selector::blocking_dim::select(
                    svm, k, corpus, unlabeled, batch, rng, obs, &self.par,
                );
                self.last_pruned = Some(out.pruned);
                out.selection
            }
            (None, Some(params)) if corpus.features_bounded_01() => {
                // Drop a stale set if the dimensionality changed under us
                // (different corpus mid-run).
                if self
                    .lazy_dims
                    .as_ref()
                    .is_some_and(|d| d.iter().any(|&x| x >= svm.weights().len()))
                {
                    self.lazy_dims = None;
                }
                let topk = params.topk.min(svm.weights().len());
                let fresh = svm.top_weight_dims(topk);
                let mass =
                    |dims: &[usize]| dims.iter().map(|&d| svm.weights()[d].abs()).sum::<f64>();
                let keep = self.lazy_dims.as_ref().is_some_and(|cur| {
                    cur.len() == fresh.len() && mass(cur) >= LAZY_DIMS_STICKINESS * mass(&fresh)
                });
                let dims: &[usize] = if keep {
                    self.lazy_dims.as_deref().unwrap_or(&[])
                } else {
                    self.lazy_dims.insert(fresh)
                };
                let out = selector::lazy_margin::select_with_dims(
                    svm,
                    corpus,
                    unlabeled,
                    batch,
                    dims,
                    params.band,
                    rng,
                    obs,
                    &self.par,
                );
                out.selection
            }
            (None, _) => selector::margin::select(
                |x| svm.margin(x),
                corpus,
                unlabeled,
                batch,
                rng,
                obs,
                &self.par,
            ),
        }
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        let svm = self.model.as_ref().ok_or_else(|| {
            AlemError::InvalidConfig("margin SVM has no model yet; call fit first".to_owned())
        })?;
        Ok(match self.blocking_k {
            Some(k) => selector::blocking_dim::score_pool(svm, k, corpus, unlabeled, &self.par),
            None => selector::margin::score_pool(|x| svm.margin(x), corpus, unlabeled, &self.par),
        })
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        self.model
            .as_ref()
            .is_some_and(|svm| svm.predict(corpus.x(i)))
    }

    fn stats(&self) -> StrategyStats {
        StrategyStats {
            pruned: self.last_pruned,
            ..StrategyStats::default()
        }
    }

    fn saved_model(&self) -> Option<crate::model_io::SavedModel> {
        self.model.clone().map(crate::model_io::SavedModel::Svm)
    }

    fn warm_state(&self) -> Option<crate::model_io::WarmState> {
        if !self.warm {
            return None;
        }
        self.warm_state
            .clone()
            .map(|state| crate::model_io::WarmState::Svm {
                state,
                seen: self.seen,
                rounds: self.warm_rounds,
            })
    }

    fn restore_warm_state(&mut self, warm: crate::model_io::WarmState) {
        if let crate::model_io::WarmState::Svm {
            state,
            seen,
            rounds,
        } = warm
        {
            self.model = Some(LinearSvm::from_parts(state.weights.clone(), state.bias));
            self.warm_state = Some(state);
            self.seen = seen;
            self.warm_rounds = rounds;
        }
    }
}

// ---------------------------------------------------------------------------
// Margin via LSH (the Jain et al. baseline of §5.1)
// ---------------------------------------------------------------------------

/// Linear SVM with approximate margin selection through random-hyperplane
/// LSH — the alternative speed-up §5.1 compares its blocking dimensions
/// against. The signature index is built lazily on the first selection
/// (its cost shows up in that round's scoring time, mirroring how an
/// offline index build would be amortized).
pub struct LshMarginStrategy {
    trainer: SvmTrainer,
    bits: usize,
    oversample: usize,
    model: Option<LinearSvm>,
    index: Option<selector::lsh::HyperplaneLsh>,
    par: Parallelism,
}

impl LshMarginStrategy {
    /// LSH margin with `bits`-bit signatures and an `oversample × batch`
    /// exact-scoring shortlist.
    pub fn new(trainer: SvmTrainer, bits: usize, oversample: usize) -> Self {
        LshMarginStrategy {
            trainer,
            bits,
            oversample,
            model: None,
            index: None,
            par: Parallelism::sequential(),
        }
    }
}

impl Strategy for LshMarginStrategy {
    fn name(&self) -> String {
        format!("Linear-Margin(LSH{})", self.bits)
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        let (xs, ys) = labeled_rows(corpus, labeled, false)?;
        self.model = Some(self.trainer.train(&xs, &ys, rng));
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        if self.model.is_none() {
            return Selection::default();
        }
        if self.index.is_none() {
            self.index = Some(selector::lsh::HyperplaneLsh::build(
                corpus, self.bits, rng, obs,
            ));
        }
        match (self.model.as_ref(), self.index.as_ref()) {
            (Some(svm), Some(index)) => {
                index.select(svm, corpus, unlabeled, batch, self.oversample, rng, obs)
            }
            _ => Selection::default(),
        }
    }

    /// Exact margin scores — the LSH approximation only shortcuts
    /// `select`'s candidate shortlist, not the scoring surface.
    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        let svm = self.model.as_ref().ok_or_else(|| {
            AlemError::InvalidConfig("LSH margin has no model yet; call fit first".to_owned())
        })?;
        Ok(selector::margin::score_pool(
            |x| svm.margin(x),
            corpus,
            unlabeled,
            &self.par,
        ))
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        self.model
            .as_ref()
            .is_some_and(|svm| svm.predict(corpus.x(i)))
    }
}

// ---------------------------------------------------------------------------
// Margin for neural networks
// ---------------------------------------------------------------------------

/// Neural network with margin-based selection on the pre-sigmoid affine
/// output (§4.2.2).
pub struct MarginNnStrategy {
    trainer: NnTrainer,
    model: Option<NeuralNet>,
    par: Parallelism,
}

impl MarginNnStrategy {
    /// Margin selection over a neural-net trainer.
    pub fn new(trainer: NnTrainer) -> Self {
        MarginNnStrategy {
            trainer,
            model: None,
            par: Parallelism::sequential(),
        }
    }

    /// The current network, if trained.
    pub fn model(&self) -> Option<&NeuralNet> {
        self.model.as_ref()
    }
}

impl Strategy for MarginNnStrategy {
    fn name(&self) -> String {
        "NN-Margin".to_owned()
    }

    fn saved_model(&self) -> Option<crate::model_io::SavedModel> {
        self.model
            .clone()
            .map(|m| crate::model_io::SavedModel::NeuralNet(Box::new(m)))
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        let (xs, ys) = labeled_rows(corpus, labeled, false)?;
        self.model = Some(self.trainer.train(&xs, &ys, rng));
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let Some(net) = self.model.as_ref() else {
            return Selection::default();
        };
        selector::margin::select(
            |x| net.margin(x).abs(),
            corpus,
            unlabeled,
            batch,
            rng,
            obs,
            &self.par,
        )
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        let net = self.model.as_ref().ok_or_else(|| {
            AlemError::InvalidConfig("NN margin has no model yet; call fit first".to_owned())
        })?;
        Ok(selector::margin::score_pool(
            |x| net.margin(x).abs(),
            corpus,
            unlabeled,
            &self.par,
        ))
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        self.model
            .as_ref()
            .is_some_and(|net| net.predict(corpus.x(i)))
    }
}

// ---------------------------------------------------------------------------
// IWAL (importance-weighted active learning) over a linear SVM
// ---------------------------------------------------------------------------

/// IWAL baseline: rejection-sampled queries with inverse-propensity
/// weights fed into weighted hinge-loss training (see
/// [`selector::iwal`]). Included to reproduce the paper's related-work
/// claim that IWAL is label-inefficient for EM (§2).
pub struct IwalSvmStrategy {
    svm_config: mlcore::svm::SvmConfig,
    iwal: selector::iwal::IwalConfig,
    model: Option<LinearSvm>,
    /// Importance weight per labeled example (seed labels weigh 1.0).
    /// Ordered map: iteration order must not depend on hasher state.
    weights: std::collections::BTreeMap<usize, f64>,
}

impl IwalSvmStrategy {
    /// IWAL over a linear SVM with the given rejection parameters.
    pub fn new(svm_config: mlcore::svm::SvmConfig, iwal: selector::iwal::IwalConfig) -> Self {
        IwalSvmStrategy {
            svm_config,
            iwal,
            model: None,
            weights: std::collections::BTreeMap::new(),
        }
    }
}

impl Strategy for IwalSvmStrategy {
    fn name(&self) -> String {
        "Linear-IWAL".to_owned()
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        let (xs, ys) = labeled_rows(corpus, labeled, false)?;
        let ws: Vec<f64> = labeled
            .iter()
            .map(|&(i, _)| self.weights.get(&i).copied().unwrap_or(1.0))
            .collect();
        let set = mlcore::data::TrainSet::new(&xs, &ys);
        self.model = Some(self.svm_config.train_weighted(&set, Some(&ws), rng));
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let Some(svm) = self.model.as_ref() else {
            return Selection::default();
        };
        let out = self.iwal.select(svm, corpus, unlabeled, batch, rng, obs);
        for (&i, &w) in out.selection.chosen.iter().zip(&out.weights) {
            self.weights.insert(i, w);
        }
        out.selection
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        self.model
            .as_ref()
            .is_some_and(|svm| svm.predict(corpus.x(i)))
    }
}

// ---------------------------------------------------------------------------
// Rules with LFP/LFN
// ---------------------------------------------------------------------------

/// DNF rule learner driven by the LFP/LFN heuristic (§4.3). Maintains an
/// ensemble of accepted high-precision rules plus one candidate rule under
/// refinement.
pub struct LfpLfnStrategy {
    trainer: DnfTrainer,
    /// Precision threshold a candidate must reach on newly labeled
    /// examples to join the accepted ensemble.
    accept_precision: f64,
    accepted: Dnf,
    candidate: Option<Conjunction>,
    terminated: bool,
    par: Parallelism,
}

impl LfpLfnStrategy {
    /// Rule learning with the paper's acceptance threshold τ.
    pub fn new(trainer: DnfTrainer, accept_precision: f64) -> Self {
        LfpLfnStrategy {
            trainer,
            accept_precision,
            accepted: Dnf::empty(),
            candidate: None,
            terminated: false,
            par: Parallelism::sequential(),
        }
    }

    /// The accepted rule ensemble.
    pub fn accepted(&self) -> &Dnf {
        &self.accepted
    }

    /// Accepted ensemble plus the current candidate — the model used for
    /// prediction.
    pub fn effective_dnf(&self) -> Dnf {
        let mut d = self.accepted.clone();
        if let Some(c) = &self.candidate {
            d.push(c.clone());
        }
        d
    }
}

impl Strategy for LfpLfnStrategy {
    fn name(&self) -> String {
        "Rules(LFP/LFN)".to_owned()
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        _rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        let (xs, ys) = labeled_rows(corpus, labeled, true)?;
        // Positives not yet covered by the accepted ensemble drive the
        // next candidate clause.
        let active: Vec<bool> = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| y && !self.accepted.matches(x))
            .collect();
        let set = mlcore::data::TrainSet::new(&xs, &ys);
        self.candidate = self.trainer.0.learn_conjunction(&set, &active);
        // When no clause is learnable yet we keep going: more labels may
        // unlock one, and selection will report exhaustion otherwise.
        Ok(())
    }

    fn select(
        &mut self,
        corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let Some(candidate) = &self.candidate else {
            self.terminated = true;
            return Selection::default();
        };
        let out = selector::lfp_lfn::select(
            candidate,
            &self.accepted,
            corpus,
            unlabeled,
            batch,
            rng,
            obs,
            &self.par,
        );
        if out.exhausted() {
            self.terminated = true;
        }
        out.selection
    }

    fn score_pool(&self, corpus: &Corpus, unlabeled: &[usize]) -> Result<Vec<f64>, AlemError> {
        let candidate = self.candidate.as_ref().ok_or_else(|| {
            AlemError::InvalidConfig("LFP/LFN has no candidate rule yet; call fit first".to_owned())
        })?;
        Ok(selector::lfp_lfn::score_pool(
            candidate,
            &self.accepted,
            corpus,
            unlabeled,
            &self.par,
        ))
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        let Some(bools) = corpus.bool_features() else {
            return false;
        };
        let x = &bools[i];
        self.accepted.matches(x) || self.candidate.as_ref().is_some_and(|c| c.matches(x))
    }

    fn stats(&self) -> StrategyStats {
        StrategyStats {
            atoms: Some(self.effective_dnf().atom_count()),
            ..StrategyStats::default()
        }
    }

    fn saved_model(&self) -> Option<crate::model_io::SavedModel> {
        Some(crate::model_io::SavedModel::Rules(self.effective_dnf()))
    }

    fn terminated(&self) -> bool {
        self.terminated
    }

    fn post_label(
        &mut self,
        corpus: &Corpus,
        new: &[(usize, bool)],
        _labeled: &mut Vec<(usize, bool)>,
        _unlabeled: &mut Vec<usize>,
        _rng: &mut StdRng,
        obs: &Registry,
    ) {
        // Accept the candidate if its precision on the newly labeled
        // examples it claims as matches reaches τ.
        let Some(candidate) = &self.candidate else {
            return;
        };
        let Some(bools) = corpus.bool_features() else {
            return;
        };
        let mut claimed = 0usize;
        let mut correct = 0usize;
        for &(i, y) in new {
            if candidate.matches(&bools[i]) {
                claimed += 1;
                if y {
                    correct += 1;
                }
            }
        }
        if claimed > 0 && correct as f64 / claimed as f64 >= self.accept_precision {
            obs.counter_add("rules.clauses_accepted", 1);
            self.accepted.push(candidate.clone());
            self.candidate = None;
        }
    }
}

// ---------------------------------------------------------------------------
// Random selection (supervised baseline)
// ---------------------------------------------------------------------------

/// Uniform-random example selection — the supervised-learning baseline of
/// Figs. 16–17 ("SupervisedTrees(Random-n)", and the DeepMatcher proxy
/// when paired with a wide NN trainer and `train_frac = 0.75`).
pub struct RandomStrategy<T: Trainer> {
    trainer: T,
    label: String,
    /// Fraction of the labeled pool actually used for training (DeepMatcher
    /// holds out 1/4 of the labels as a validation set it never trains on).
    train_frac: f64,
    model: Option<T::Model>,
}

/// Builder for [`RandomStrategy`]; start from [`RandomStrategy::builder`].
#[derive(Debug, Clone)]
pub struct RandomStrategyBuilder<T: Trainer> {
    trainer: T,
    label: String,
    train_frac: f64,
}

impl<T: Trainer> RandomStrategyBuilder<T> {
    /// Train on only this fraction of the labeled pool (3:1
    /// train:validation, like the paper's DeepMatcher runs).
    pub fn train_frac(mut self, train_frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&train_frac));
        self.train_frac = train_frac;
        self
    }

    /// Finish building the strategy.
    pub fn build(self) -> RandomStrategy<T> {
        RandomStrategy {
            trainer: self.trainer,
            label: self.label,
            train_frac: self.train_frac,
            model: None,
        }
    }
}

impl<T: Trainer> RandomStrategy<T> {
    /// Random selection training on all labels.
    pub fn new(trainer: T, label: &str) -> Self {
        RandomStrategy::builder(trainer, label).build()
    }

    /// Configure a random-selection baseline; defaults to training on all
    /// labels. Random selection keeps the default uniform
    /// [`Strategy::score_pool`] — scoring every example equally *is* this
    /// strategy's policy.
    pub fn builder(trainer: T, label: &str) -> RandomStrategyBuilder<T> {
        RandomStrategyBuilder {
            trainer,
            label: label.to_owned(),
            train_frac: 1.0,
        }
    }

    /// Random selection training on a fraction of labels (3:1
    /// train:validation, like the paper's DeepMatcher runs).
    #[deprecated(note = "use RandomStrategy::builder(trainer, label).train_frac(f).build()")]
    pub fn with_train_frac(trainer: T, label: &str, train_frac: f64) -> Self {
        RandomStrategy::builder(trainer, label)
            .train_frac(train_frac)
            .build()
    }
}

impl<T: Trainer> Strategy for RandomStrategy<T> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn fit(
        &mut self,
        corpus: &Corpus,
        labeled: &[(usize, bool)],
        rng: &mut StdRng,
    ) -> Result<(), AlemError> {
        let n_train = ((labeled.len() as f64) * self.train_frac).round().max(1.0) as usize;
        let mut pool: Vec<&(usize, bool)> = labeled.iter().collect();
        pool.shuffle(rng);
        let subset: Vec<(usize, bool)> = pool
            .into_iter()
            .take(n_train.min(labeled.len()))
            .copied()
            .collect();
        let (xs, ys) = labeled_rows(corpus, &subset, false)?;
        self.model = Some(self.trainer.train(&xs, &ys, rng));
        Ok(())
    }

    fn select(
        &mut self,
        _corpus: &Corpus,
        _labeled: &[(usize, bool)],
        unlabeled: &[usize],
        batch: usize,
        rng: &mut StdRng,
        obs: &Registry,
    ) -> Selection {
        let score_span = obs.span("select.score");
        let mut pool = unlabeled.to_vec();
        pool.shuffle(rng);
        pool.truncate(batch);
        Selection {
            chosen: pool,
            committee_creation: std::time::Duration::ZERO,
            scoring: score_span.finish(),
        }
    }

    fn predict(&self, corpus: &Corpus, i: usize) -> bool {
        self.model.as_ref().is_some_and(|m| m.predict(corpus.x(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn corpus() -> Corpus {
        let feats: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 80.0]).collect();
        let truth: Vec<bool> = (0..80).map(|i| i >= 40).collect();
        let bools: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![f64::from(u8::from(i >= 40))])
            .collect();
        Corpus::from_features(feats, truth).with_bool_features(bools)
    }

    fn seed_labeled(c: &Corpus) -> Vec<(usize, bool)> {
        [5, 15, 25, 35, 45, 55, 65, 75]
            .iter()
            .map(|&i| (i, c.truth(i)))
            .collect()
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(
            QbcStrategy::new(SvmTrainer::default(), 20).name(),
            "Linear-QBC(20)"
        );
        assert_eq!(TreeQbcStrategy::new(20).name(), "Trees(20)");
        assert_eq!(
            MarginSvmStrategy::new(SvmTrainer::default()).name(),
            "Linear-Margin"
        );
        assert_eq!(
            MarginSvmStrategy::builder().blocking_dims(1).build().name(),
            "Linear-Margin(1Dim)"
        );
        assert_eq!(
            MarginNnStrategy::new(NnTrainer::default()).name(),
            "NN-Margin"
        );
        assert_eq!(
            LfpLfnStrategy::new(DnfTrainer::default(), 0.85).name(),
            "Rules(LFP/LFN)"
        );
    }

    #[test]
    fn margin_svm_fit_select_predict() {
        let c = corpus();
        let labeled = seed_labeled(&c);
        let unlabeled: Vec<usize> = (0..80)
            .filter(|i| !labeled.iter().any(|(j, _)| j == i))
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = MarginSvmStrategy::new(SvmTrainer::default());
        s.fit(&c, &labeled, &mut rng).unwrap();
        assert!(s.predict(&c, 79));
        assert!(!s.predict(&c, 0));
        let sel = s.select(&c, &labeled, &unlabeled, 5, &mut rng, &Registry::disabled());
        assert_eq!(sel.chosen.len(), 5);
    }

    #[test]
    fn tree_qbc_reports_interpretability() {
        let c = corpus();
        let labeled = seed_labeled(&c);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = TreeQbcStrategy::new(5);
        s.fit(&c, &labeled, &mut rng).unwrap();
        let st = s.stats();
        assert!(st.atoms.is_some());
        assert!(st.depth.is_some());
    }

    #[test]
    fn lfp_lfn_learns_and_accepts() {
        let c = corpus();
        let labeled = seed_labeled(&c);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = LfpLfnStrategy::new(DnfTrainer::default(), 0.85);
        s.fit(&c, &labeled, &mut rng).unwrap();
        assert!(s.candidate.is_some());
        // Feed it a perfectly-labeled batch the candidate claims.
        let new: Vec<(usize, bool)> = vec![(50, true), (60, true)];
        let mut l = labeled.clone();
        let mut u = vec![];
        s.post_label(&c, &new, &mut l, &mut u, &mut rng, &Registry::disabled());
        assert_eq!(s.accepted().clauses().len(), 1);
        assert!(s.predict(&c, 70));
        assert!(!s.predict(&c, 10));
    }

    #[test]
    #[allow(deprecated)] // shim-equivalence: builders must match the old constructors
    fn builders_replace_constructor_zoo() {
        let a = QbcStrategy::new_bool(SvmTrainer::default(), 7);
        let b = QbcStrategy::builder(SvmTrainer::default())
            .committee_size(7)
            .bool_features(true)
            .build();
        assert_eq!(a.name(), b.name());
        let c = MarginSvmStrategy::with_blocking(SvmTrainer::default(), 2);
        let d = MarginSvmStrategy::builder().blocking_dims(2).build();
        assert_eq!(c.name(), d.name());
        let e = TreeQbcStrategy::with_trainer(ForestTrainer::with_trees(4));
        let f = TreeQbcStrategy::builder().trees(4).build();
        assert_eq!(e.name(), f.name());
        let g = RandomStrategy::with_train_frac(SvmTrainer::default(), "R", 0.75);
        let h = RandomStrategy::builder(SvmTrainer::default(), "R")
            .train_frac(0.75)
            .build();
        assert_eq!(g.name(), h.name());
    }

    #[test]
    fn score_pool_errors_before_fit_and_aligns_after() {
        let c = corpus();
        let labeled = seed_labeled(&c);
        let unlabeled: Vec<usize> = (0..40).collect();
        let mut s = MarginSvmStrategy::new(SvmTrainer::default());
        assert!(s.score_pool(&c, &unlabeled).is_err());
        let mut rng = StdRng::seed_from_u64(1);
        s.fit(&c, &labeled, &mut rng).unwrap();
        let scores = s.score_pool(&c, &unlabeled).unwrap();
        assert_eq!(scores.len(), unlabeled.len());
        // The default implementation scores every example equally — the
        // random baseline's uniform policy.
        let r = RandomStrategy::new(SvmTrainer::default(), "Random");
        let uniform = r.score_pool(&c, &unlabeled).unwrap();
        assert!(uniform.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_svm_rounds_continue_and_checkpoint_roundtrips() {
        let c = corpus();
        let mut labeled = seed_labeled(&c);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = MarginSvmStrategy::builder().warm_start().build();
        s.fit(&c, &labeled, &mut rng).unwrap();
        assert_eq!(s.warm_state().unwrap().rounds(), 0);
        // New labels arrive; the next fits continue the optimization.
        for &i in &[2, 12, 22, 32, 42, 52] {
            labeled.push((i, c.truth(i)));
            s.fit(&c, &labeled, &mut rng).unwrap();
        }
        assert_eq!(s.warm_state().unwrap().rounds(), 6);
        assert!(s.predict(&c, 79));
        assert!(!s.predict(&c, 0));

        // Checkpoint roundtrip restores identical continuation state.
        let warm = s.warm_state().unwrap();
        let js = serde_json::to_string(&warm).unwrap();
        let back: crate::model_io::WarmState = serde_json::from_str(&js).unwrap();
        let mut restored = MarginSvmStrategy::builder().warm_start().build();
        restored.restore_warm_state(back);
        assert_eq!(restored.warm_state().unwrap(), warm);
        labeled.push((62, c.truth(62)));
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        s.fit(&c, &labeled, &mut rng_a).unwrap();
        restored.fit(&c, &labeled, &mut rng_b).unwrap();
        assert_eq!(s.model().unwrap(), restored.model().unwrap());
    }

    #[test]
    fn warm_forest_refreshes_a_rotating_subset() {
        let c = corpus();
        let labeled = seed_labeled(&c);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = TreeQbcStrategy::builder()
            .trees(10)
            .refresh_frac(0.3)
            .build();
        s.fit(&c, &labeled, &mut rng).unwrap();
        let cold = s.model().unwrap().clone();
        s.fit(&c, &labeled, &mut rng).unwrap();
        let warm = s.model().unwrap();
        // ceil(0.3 × 10) = 3 members refresh per round; the other 7 trees
        // must be carried over untouched.
        let unchanged = cold
            .trees()
            .iter()
            .zip(warm.trees())
            .filter(|(a, b)| a == b)
            .count();
        assert_eq!(unchanged, 7);
        assert_eq!(s.warm_state().unwrap().rounds(), 1);
        // Name (and hence run fingerprints' strategy label) is unaffected.
        assert_eq!(s.name(), "Trees(10)");
    }

    #[test]
    fn random_strategy_selects_uniformly() {
        let c = corpus();
        let labeled = seed_labeled(&c);
        let unlabeled: Vec<usize> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = RandomStrategy::new(ForestTrainer::with_trees(3), "SupervisedTrees(Random-3)");
        s.fit(&c, &labeled, &mut rng).unwrap();
        let sel = s.select(
            &c,
            &labeled,
            &unlabeled,
            10,
            &mut rng,
            &Registry::disabled(),
        );
        assert_eq!(sel.chosen.len(), 10);
        let mut sorted = sel.chosen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }
}
