//! Regression tests for the determinism invariant alem-lint enforces:
//! two identical runs — same data, same seed — must produce byte-identical
//! [`RunResult::deterministic_fingerprint`]s, and the blocking step must
//! emit the same candidate pairs every time. These would have caught the
//! hash-ordered collections this PR replaced with `BTreeMap`/`BTreeSet`:
//! `HashMap` iteration order varies per process, so per-run identity can
//! hold while cross-run identity silently breaks.

use alem_core::blocking::BlockingConfig;
use alem_core::corpus::Corpus;
use alem_core::learner::SvmTrainer;
use alem_core::loop_::{ActiveLearner, EvalMode, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::schema::{AttrKind, EmDataset, Record, Schema, Table};
use alem_core::strategy::{MarginSvmStrategy, TreeQbcStrategy};

/// Deterministic token soup: a tiny LCG keeps the dataset reproducible
/// without depending on any RNG crate in the test.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const WORDS: &[&str] = &[
    "apple", "ipod", "nano", "sony", "walkman", "dell", "laptop", "canon", "printer", "nikon",
    "camera", "lens", "hp", "monitor", "asus", "router", "bose", "speaker", "logitech", "mouse",
];

fn synthetic_dataset(n: usize) -> EmDataset {
    let schema = || Schema::new(vec![("title", AttrKind::Text), ("brand", AttrKind::Text)]);
    let mut rng = Lcg(0x5eed);
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut matches = std::collections::BTreeSet::new();
    for i in 0..n {
        let a = WORDS[(rng.next() as usize) % WORDS.len()];
        let b = WORDS[(rng.next() as usize) % WORDS.len()];
        left.push(Record::new(vec![
            Some(format!("{a} {b}")),
            Some(a.to_owned()),
        ]));
        if rng.next().is_multiple_of(2) {
            // A dirty duplicate: both tokens plus one extra (high Jaccard).
            let c = WORDS[(rng.next() as usize) % WORDS.len()];
            right.push(Record::new(vec![
                Some(format!("{a} {b} {c}")),
                Some(a.to_owned()),
            ]));
            matches.insert((i as u32, i as u32));
        } else {
            // A near-miss: shares one token, labeled a non-match, so the
            // post-blocking pool keeps both classes.
            let d = WORDS[(rng.next() as usize) % WORDS.len()];
            right.push(Record::new(vec![
                Some(format!("{a} {d}")),
                Some(d.to_owned()),
            ]));
        }
    }
    EmDataset {
        left: Table::new("l", schema(), left),
        right: Table::new("r", schema(), right),
        matches,
        name: "synthetic".into(),
    }
}

#[test]
fn blocking_emits_identical_pairs_across_runs() {
    let ds = synthetic_dataset(120);
    let cfg = BlockingConfig {
        jaccard_threshold: 0.3,
    };
    let first = cfg.block(&ds);
    let second = cfg.block(&ds);
    assert!(!first.is_empty(), "blocking pruned everything");
    assert_eq!(first, second, "blocking must be run-order independent");
}

fn fingerprint_of_run(corpus: &Corpus, seed: u64) -> String {
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let params = LoopParams {
        seed_size: 16,
        batch_size: 8,
        max_labels: 80,
        eval: EvalMode::Progressive,
        stop_at_f1: None,
    };
    let mut al = ActiveLearner::new(MarginSvmStrategy::new(SvmTrainer::default()), params);
    al.run(corpus, &oracle, seed)
        .expect("run succeeds")
        .deterministic_fingerprint()
}

#[test]
fn end_to_end_fingerprint_is_stable_across_identical_runs() {
    let ds = synthetic_dataset(120);
    let cfg = BlockingConfig {
        jaccard_threshold: 0.2,
    };
    // Rebuild the corpus from scratch both times so the whole path —
    // blocking, featurization, session — is exercised twice.
    let (corpus_a, _) = Corpus::from_candidates(&ds, &cfg).unwrap();
    let (corpus_b, _) = Corpus::from_candidates(&ds, &cfg).unwrap();
    assert!(corpus_a.len() > 40, "need a non-trivial pair pool");
    let a = fingerprint_of_run(&corpus_a, 42);
    let b = fingerprint_of_run(&corpus_b, 42);
    assert_eq!(a, b, "identical runs must fingerprint identically");
    // Different seeds must still diverge — the fingerprint is not a constant.
    let c = fingerprint_of_run(&corpus_a, 43);
    assert_ne!(a, c, "fingerprint must depend on the seed");
}

#[test]
fn tree_strategy_fingerprint_is_stable_across_identical_runs() {
    let ds = synthetic_dataset(120);
    let (corpus, _) = Corpus::from_candidates(&ds, &BlockingConfig::default()).unwrap();
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let params = LoopParams {
        seed_size: 16,
        batch_size: 8,
        max_labels: 64,
        eval: EvalMode::Progressive,
        stop_at_f1: None,
    };
    let run = |seed: u64| {
        let mut al = ActiveLearner::new(TreeQbcStrategy::new(5), params.clone());
        al.run(&corpus, &oracle, seed)
            .expect("run succeeds")
            .deterministic_fingerprint()
    };
    assert_eq!(run(7), run(7));
}
