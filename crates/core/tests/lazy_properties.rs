//! Property tests for the lazy two-phase extraction path: the chosen
//! batch must be bit-identical to eager selection for *any* phase-1 dim
//! set, warm+lazy sessions must fingerprint identically across thread
//! counts and against the eager-corpus golden, and the feature-cache
//! telemetry must account for every materialization exactly once across
//! a halt/resume boundary.

use alem_core::blocking::BlockingConfig;
use alem_core::corpus::Corpus;
use alem_core::loop_::{ActiveLearner, EvalMode, LoopParams};
use alem_core::oracle::Oracle;
use alem_core::schema::{AttrKind, EmDataset, Record, Schema, Table};
use alem_core::selector::{lazy_margin, margin};
use alem_core::session::{Checkpoint, SessionConfig, SessionOutcome};
use alem_core::strategy::MarginSvmStrategy;
use alem_obs::Registry;
use alem_par::Parallelism;
use mlcore::svm::LinearSvm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lazy selector's chosen batch equals the eager selector's bit
    /// for bit, for any corpus, model, batch size, and phase-1 dim set —
    /// including the empty set (all mass unread) and the full set
    /// (bounds are exact). This is the invariant that lets the strategy
    /// choose dims for speed alone.
    #[test]
    fn lazy_selection_matches_eager_for_any_dim_set(
        n in 20usize..120,
        dim in 2usize..14,
        seed in 0u64..500,
        batch in 1usize..12,
        dim_mask in prop::collection::vec(any::<bool>(), 14),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let feats: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let truth: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let corpus = Corpus::from_features(feats, truth).with_bounded_features();
        let w: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let svm = LinearSvm::from_parts(w, rng.gen::<f64>() - 0.5);
        let unlabeled: Vec<usize> = (0..n).collect();
        let dims: Vec<usize> = (0..dim).filter(|&d| dim_mask[d]).collect();

        let eager = margin::select(
            |x| svm.margin(x),
            &corpus,
            &unlabeled,
            batch,
            &mut StdRng::seed_from_u64(seed ^ 0xabcd),
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        let lazy = lazy_margin::select_with_dims(
            &svm,
            &corpus,
            &unlabeled,
            batch,
            &dims,
            0.0,
            &mut StdRng::seed_from_u64(seed ^ 0xabcd),
            &Registry::disabled(),
            &Parallelism::sequential(),
        );
        prop_assert_eq!(&lazy.selection.chosen, &eager.chosen);
        // Pruning can never exceed the pool it pruned from.
        prop_assert!(lazy.phase1_only <= n);
    }
}

/// Deterministic token soup (no RNG crate in the data itself) for
/// building an `EmDataset` the lazy corpus path can extract from.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const WORDS: &[&str] = &[
    "apple", "ipod", "nano", "sony", "walkman", "dell", "laptop", "canon", "printer", "nikon",
    "camera", "lens", "hp", "monitor", "asus", "router", "bose", "speaker", "logitech", "mouse",
];

fn synthetic_dataset(n: usize) -> EmDataset {
    let schema = || Schema::new(vec![("title", AttrKind::Text), ("brand", AttrKind::Text)]);
    let mut rng = Lcg(0x5eed);
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut matches = std::collections::BTreeSet::new();
    for i in 0..n {
        let a = WORDS[(rng.next() as usize) % WORDS.len()];
        let b = WORDS[(rng.next() as usize) % WORDS.len()];
        left.push(Record::new(vec![
            Some(format!("{a} {b}")),
            Some(a.to_owned()),
        ]));
        if rng.next().is_multiple_of(2) {
            let c = WORDS[(rng.next() as usize) % WORDS.len()];
            right.push(Record::new(vec![
                Some(format!("{a} {b} {c}")),
                Some(a.to_owned()),
            ]));
            matches.insert((i as u32, i as u32));
        } else {
            let d = WORDS[(rng.next() as usize) % WORDS.len()];
            right.push(Record::new(vec![
                Some(format!("{a} {d}")),
                Some(d.to_owned()),
            ]));
        }
    }
    EmDataset {
        left: Table::new("left", schema(), left),
        right: Table::new("right", schema(), right),
        matches,
        name: "lazy-props".into(),
    }
}

fn warm_lazy_strategy() -> MarginSvmStrategy {
    MarginSvmStrategy::builder()
        .warm_start()
        .lazy_topk(3)
        .build()
}

fn params() -> LoopParams {
    LoopParams {
        seed_size: 16,
        batch_size: 8,
        max_labels: 72,
        eval: EvalMode::Holdout { test_frac: 0.25 },
        stop_at_f1: None,
    }
}

fn run_fingerprint(corpus: &Corpus, threads: usize, seed: u64) -> String {
    let oracle = Oracle::perfect(corpus.truths().to_vec());
    let config = SessionConfig {
        parallelism: Parallelism::fixed(threads),
        ..SessionConfig::default()
    };
    ActiveLearner::new(warm_lazy_strategy(), params())
        .run_session(corpus, &oracle, seed, &config)
        .expect("session runs")
        .run_result()
        .expect("session completes")
        .deterministic_fingerprint()
}

/// Warm + lazy sessions fingerprint identically at 1/2/4/8 threads, and
/// all of them match the eager-corpus run — the eager fingerprint is the
/// golden value the lazy path must reproduce byte for byte.
#[test]
fn warm_lazy_fingerprints_thread_invariant_and_match_eager_golden() {
    let ds = synthetic_dataset(150);
    let blocking = BlockingConfig {
        jaccard_threshold: 0.2,
    };
    let (eager, _) =
        Corpus::from_candidates_with(&ds, &blocking, &Parallelism::sequential()).unwrap();
    assert!(eager.len() > 60, "need a non-trivial pair pool");
    for seed in [7u64, 23] {
        let golden = run_fingerprint(&eager, 1, seed);
        for threads in [1usize, 2, 4, 8] {
            // A fresh lazy corpus per run: the memo state must never
            // leak into results, only into timings.
            let (lazy, _) =
                Corpus::from_candidates_lazy_with(&ds, &blocking, &Parallelism::fixed(threads))
                    .unwrap();
            assert_eq!(
                run_fingerprint(&lazy, threads, seed),
                golden,
                "lazy/warm diverged from eager golden at {threads} threads (seed {seed})"
            );
        }
    }
}

fn counters(obs: &Registry) -> (u64, u64) {
    (
        obs.counter_value("feat.cache_hits"),
        obs.counter_value("feat.cache_misses"),
    )
}

/// `feat.cache_hits`/`feat.cache_misses` account for cache traffic
/// exactly once across a halt/resume boundary: the halted half plus the
/// resumed half equals an uninterrupted run's counters, and the miss
/// total equals the store's own materialization count — nothing is
/// double-counted when resume re-bases against a corpus whose memo
/// already holds the first half's rows.
#[test]
fn feat_cache_counters_are_exact_across_halt_resume() {
    let ds = synthetic_dataset(150);
    let blocking = BlockingConfig {
        jaccard_threshold: 0.2,
    };

    // Uninterrupted run on a fresh lazy corpus.
    let (full_corpus, _) =
        Corpus::from_candidates_lazy_with(&ds, &blocking, &Parallelism::sequential()).unwrap();
    let full_obs = Registry::enabled();
    let full = {
        let oracle = Oracle::perfect(full_corpus.truths().to_vec());
        let config = SessionConfig {
            obs: full_obs.clone(),
            ..SessionConfig::default()
        };
        ActiveLearner::new(warm_lazy_strategy(), params())
            .run_session(&full_corpus, &oracle, 7, &config)
            .unwrap()
            .run_result()
            .unwrap()
    };

    // Same run halted after 2 iterations, then resumed on the same
    // (already partly materialized) corpus.
    let (corpus, _) =
        Corpus::from_candidates_lazy_with(&ds, &blocking, &Parallelism::sequential()).unwrap();
    let path = std::env::temp_dir().join(format!("alem-lazy-props-{}.ckpt", std::process::id()));
    let first_obs = Registry::enabled();
    {
        let oracle = Oracle::perfect(corpus.truths().to_vec());
        let config = SessionConfig {
            obs: first_obs.clone(),
            checkpoint_path: Some(path.clone()),
            halt_after: Some(2),
            ..SessionConfig::default()
        };
        let out = ActiveLearner::new(warm_lazy_strategy(), params())
            .run_session(&corpus, &oracle, 7, &config)
            .unwrap();
        assert!(matches!(out, SessionOutcome::Halted { .. }));
    }
    let second_obs = Registry::enabled();
    let resumed = {
        let ckpt = Checkpoint::load(&path).unwrap();
        let oracle = Oracle::perfect(corpus.truths().to_vec());
        let config = SessionConfig {
            obs: second_obs.clone(),
            ..SessionConfig::default()
        };
        ActiveLearner::new(warm_lazy_strategy(), params())
            .resume_session(&corpus, &oracle, ckpt, &config)
            .unwrap()
            .run_result()
            .unwrap()
    };
    std::fs::remove_file(&path).ok();

    assert_eq!(
        resumed.deterministic_fingerprint(),
        full.deterministic_fingerprint(),
        "resume must not change results"
    );
    let (fh, fm) = counters(&full_obs);
    let (h1, m1) = counters(&first_obs);
    let (h2, m2) = counters(&second_obs);
    assert_eq!(
        (h1 + h2, m1 + m2),
        (fh, fm),
        "halted + resumed counter halves must equal the uninterrupted run"
    );
    // The emitted miss total is the store's own materialization ledger at
    // the last emission boundary: every miss emitted exactly once.
    let (_, store_misses) = corpus.feature_cache_stats();
    let (_, full_store_misses) = full_corpus.feature_cache_stats();
    assert_eq!(store_misses, full_store_misses);
    assert!(m1 + m2 <= store_misses);
    assert!(fm <= full_store_misses);
}
