//! Per-dataset generation configs tuned to Table 1 of the paper.
//!
//! `family_size` controls class skew (skew ≈ 1/family_size), `n_families`
//! scales the post-blocking pair count (≈ n_families × family_size²), and
//! the perturbers set the difficulty: heavy for product datasets, light for
//! publications. `scale` multiplies `n_families` so tests and quick benches
//! can run on smaller corpora with the same shape; `scale = 1.0`
//! approximates the paper's sizes.

use crate::domains::DomainKind;
use crate::perturb::Perturber;

/// Everything needed to generate one synthetic EM dataset.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Dataset name, e.g. `"Abt-Buy"`.
    pub name: String,
    /// Which domain generator to use.
    pub domain: DomainKind,
    /// Number of entity families at `scale = 1.0`.
    pub n_families: usize,
    /// Entities per family (≈ 1/class-skew).
    pub family_size: usize,
    /// Perturbation applied to left-table mentions.
    pub perturb_left: Perturber,
    /// Perturbation applied to right-table mentions.
    pub perturb_right: Perturber,
    /// Offline blocking threshold (paper §6).
    pub blocking_threshold: f64,
}

/// The paper's nine public datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Abt-Buy (products; hard, skew 0.12, threshold 0.1875).
    AbtBuy,
    /// Amazon-GoogleProducts (products; hard, skew 0.09, threshold 0.12).
    AmazonGoogle,
    /// DBLP-ACM (publications; easy, skew 0.198, threshold 0.1875).
    DblpAcm,
    /// DBLP-Scholar (publications; medium, skew 0.109, threshold 0.1875).
    DblpScholar,
    /// Cora (citations; medium, skew 0.124, threshold 0.16).
    Cora,
    /// Walmart-Amazon (products; hard, skew 0.083, threshold 0.16).
    WalmartAmazon,
    /// Amazon-BestBuy (electronics; tiny labeled set, skew 0.147).
    AmazonBestBuy,
    /// BeerAdvocate-RateBeer (beer; tiny labeled set, skew 0.151).
    Beer,
    /// BuyBuyBaby-BabiesRUs (baby products; tiny labeled set, skew 0.27).
    BabyProducts,
}

/// All nine datasets in Table 1 order.
pub const ALL_DATASETS: [PaperDataset; 9] = [
    PaperDataset::AbtBuy,
    PaperDataset::AmazonGoogle,
    PaperDataset::DblpAcm,
    PaperDataset::DblpScholar,
    PaperDataset::Cora,
    PaperDataset::WalmartAmazon,
    PaperDataset::AmazonBestBuy,
    PaperDataset::Beer,
    PaperDataset::BabyProducts,
];

impl PaperDataset {
    /// Dataset name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::AbtBuy => "Abt-Buy",
            PaperDataset::AmazonGoogle => "Amazon-GoogleProducts",
            PaperDataset::DblpAcm => "DBLP-ACM",
            PaperDataset::DblpScholar => "DBLP-Scholar",
            PaperDataset::Cora => "Cora",
            PaperDataset::WalmartAmazon => "Walmart-Amazon",
            PaperDataset::AmazonBestBuy => "Amazon-BestBuy",
            PaperDataset::Beer => "BeerAdvocate-RateBeer",
            PaperDataset::BabyProducts => "BuyBuyBaby-BabiesRUs",
        }
    }

    /// Paper-reported post-blocking pair count (Table 1), for reference.
    pub fn paper_post_blocking(self) -> usize {
        match self {
            PaperDataset::AbtBuy => 8682,
            PaperDataset::AmazonGoogle => 14294,
            PaperDataset::DblpAcm => 11194,
            PaperDataset::DblpScholar => 49042,
            PaperDataset::Cora => 114_525,
            PaperDataset::WalmartAmazon => 13843,
            PaperDataset::AmazonBestBuy => 395,
            PaperDataset::Beer => 450,
            PaperDataset::BabyProducts => 400,
        }
    }

    /// Paper-reported class skew (Table 1), for reference.
    pub fn paper_skew(self) -> f64 {
        match self {
            PaperDataset::AbtBuy => 0.12,
            PaperDataset::AmazonGoogle => 0.09,
            PaperDataset::DblpAcm => 0.198,
            PaperDataset::DblpScholar => 0.109,
            PaperDataset::Cora => 0.124,
            PaperDataset::WalmartAmazon => 0.083,
            PaperDataset::AmazonBestBuy => 0.147,
            PaperDataset::Beer => 0.151,
            PaperDataset::BabyProducts => 0.27,
        }
    }

    /// Generation config at `scale` (scale 1.0 ≈ paper sizes; tests use
    /// 0.02–0.1). `n_families` never drops below 4.
    pub fn config(self, scale: f64) -> GenConfig {
        assert!(scale > 0.0, "scale must be positive");
        let (domain, n_families, family_size, left, right, threshold) = match self {
            PaperDataset::AbtBuy => (
                DomainKind::AbtBuy,
                136,
                8,
                Perturber::HEAVY,
                Perturber::HEAVY,
                0.1875,
            ),
            PaperDataset::AmazonGoogle => (
                DomainKind::AmazonGoogle,
                118,
                11,
                Perturber::HEAVY,
                // Google's product feed is cleaner than the Amazon scrape;
                // one heavy + one medium side lands linear-classifier F1
                // near the paper's ~0.7.
                Perturber {
                    typo_rate: 0.05,
                    token_drop_rate: 0.15,
                    token_swap_rate: 0.10,
                    abbrev_rate: 0.05,
                    missing_rate: 0.06,
                    numeric_jitter: 0.05,
                },
                0.12,
            ),
            PaperDataset::DblpAcm => (
                DomainKind::DblpAcm,
                448,
                5,
                Perturber::CLEAN,
                Perturber::LIGHT,
                0.1875,
            ),
            PaperDataset::DblpScholar => (
                DomainKind::DblpScholar,
                605,
                9,
                Perturber::LIGHT,
                // Scholar is scraped & noisier than curated DBLP.
                Perturber {
                    typo_rate: 0.05,
                    token_drop_rate: 0.12,
                    token_swap_rate: 0.1,
                    abbrev_rate: 0.3,
                    missing_rate: 0.08,
                    numeric_jitter: 0.0,
                },
                0.1875,
            ),
            PaperDataset::Cora => (
                DomainKind::Cora,
                1790,
                8,
                // Cora citations are free-text strings parsed into fields;
                // both sides carry abbreviation/typo noise and frequent
                // missing fields, which keeps linear models below the
                // near-perfect regime (paper: 0.89–0.95).
                Perturber {
                    typo_rate: 0.05,
                    token_drop_rate: 0.12,
                    token_swap_rate: 0.10,
                    abbrev_rate: 0.30,
                    missing_rate: 0.12,
                    numeric_jitter: 0.0,
                },
                Perturber {
                    typo_rate: 0.06,
                    token_drop_rate: 0.18,
                    token_swap_rate: 0.12,
                    abbrev_rate: 0.45,
                    missing_rate: 0.18,
                    numeric_jitter: 0.0,
                },
                0.16,
            ),
            PaperDataset::WalmartAmazon => (
                DomainKind::WalmartAmazon,
                96,
                12,
                Perturber::HEAVY,
                Perturber::HEAVY,
                0.16,
            ),
            PaperDataset::AmazonBestBuy => (
                DomainKind::AmazonBestBuy,
                8,
                7,
                Perturber::HEAVY,
                Perturber::LIGHT,
                0.12,
            ),
            PaperDataset::Beer => (
                DomainKind::Beer,
                9,
                7,
                Perturber::LIGHT,
                Perturber::LIGHT,
                0.12,
            ),
            PaperDataset::BabyProducts => (
                DomainKind::BabyProducts,
                25,
                4,
                Perturber::HEAVY,
                Perturber::HEAVY,
                0.12,
            ),
        };
        GenConfig {
            name: self.name().to_owned(),
            domain,
            n_families: ((n_families as f64 * scale).round() as usize).max(4),
            family_size,
            perturb_left: left,
            perturb_right: right,
            blocking_threshold: threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_approximates_inverse_family_size() {
        for d in ALL_DATASETS {
            let cfg = d.config(1.0);
            let implied = 1.0 / cfg.family_size as f64;
            let paper = d.paper_skew();
            assert!(
                (implied - paper).abs() < 0.06,
                "{}: implied skew {implied:.3} vs paper {paper:.3}",
                d.name()
            );
        }
    }

    #[test]
    fn scale_shrinks_families() {
        let full = PaperDataset::Cora.config(1.0);
        let small = PaperDataset::Cora.config(0.01);
        assert!(small.n_families < full.n_families);
        assert!(small.n_families >= 4);
        assert_eq!(small.family_size, full.family_size);
    }

    #[test]
    fn approximate_pair_counts_match_paper_order_of_magnitude() {
        for d in ALL_DATASETS {
            let cfg = d.config(1.0);
            let implied = cfg.n_families * cfg.family_size * cfg.family_size;
            let paper = d.paper_post_blocking();
            let ratio = implied as f64 / paper as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: implied {implied} vs paper {paper}",
                d.name()
            );
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = ALL_DATASETS.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
