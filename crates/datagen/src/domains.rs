//! Canonical entity generation per dataset domain.
//!
//! Entities are generated in *families*: groups of near-duplicate entities
//! sharing a brand / venue / product line and most of their name tokens.
//! Within-family record pairs survive Jaccard blocking as hard non-matches,
//! which is how the generated corpora hit the paper's class skew — a family
//! of size `f` contributes ≈ `f²` post-blocking pairs of which `f` are
//! matches, so skew ≈ `1/f`.

use crate::vocab;
use alem_core::schema::{AttrKind, Schema};
use rand::seq::SliceRandom;
use rand::Rng;

/// A canonical (pre-perturbation) attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum CanonValue {
    /// Free text, shared by both tables' mentions.
    Text(String),
    /// Table-specific text: the left and right mention start from
    /// *different* canonical values. Models store-specific marketing
    /// descriptions — for the same product, Abt and Buy write different
    /// copy — which is what makes product datasets hard: a matched pair's
    /// descriptions are no more similar than a sibling pair's.
    SideText(String, String),
    /// Numeric value (perturbed with jitter).
    Num(f64),
}

/// Family context shared by sibling entities.
#[derive(Debug, Clone)]
pub struct Family {
    /// Brand / brewery / lead-author-lab identity.
    pub brand: String,
    /// Tokens every sibling's name/title shares.
    pub shared_tokens: Vec<String>,
    /// Small description vocabulary all siblings draw from, so sibling
    /// records keep enough token overlap to survive Jaccard blocking.
    pub theme: Vec<String>,
    /// Author pool (publication domains).
    pub authors: Vec<String>,
    /// Venue (publication domains).
    pub venue: String,
    /// Base price / ABV / year anchor.
    pub base_num: f64,
    /// Category / group name.
    pub category: String,
}

/// The nine paper domains (Table 1 schemas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// Abt-Buy: {name, description, price}.
    AbtBuy,
    /// Amazon-GoogleProducts: {name, description, manufacturer, price}.
    AmazonGoogle,
    /// DBLP-ACM: {title, authors, venue, year}.
    DblpAcm,
    /// DBLP-Scholar: {title, authors, venue, year}.
    DblpScholar,
    /// Cora: 9 citation attributes.
    Cora,
    /// Walmart-Amazon: 10 product attributes.
    WalmartAmazon,
    /// Amazon-BestBuy: {brand, title, price, features}.
    AmazonBestBuy,
    /// BeerAdvocate-RateBeer: {beer_name, brew_factory_name, style, ABV}.
    Beer,
    /// BuyBuyBaby-BabiesRUs: 14 baby-product attributes.
    BabyProducts,
}

fn pick<'a, R: Rng>(v: &[&'a str], rng: &mut R) -> &'a str {
    v.choose(rng).copied().unwrap_or("")
}

fn pick_n<R: Rng>(v: &[&str], n: usize, rng: &mut R) -> Vec<String> {
    let mut pool: Vec<&str> = v.to_vec();
    pool.shuffle(rng);
    pool.into_iter().take(n).map(str::to_owned).collect()
}

/// A short alphanumeric model code like `dsc-w55`.
fn model_code<R: Rng>(rng: &mut R) -> String {
    let letters: String = (0..rng.gen_range(2..4usize))
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect();
    let digits: String = (0..rng.gen_range(2..4usize))
        .map(|_| (b'0' + rng.gen_range(0..10u8)) as char)
        .collect();
    format!("{letters}{digits}")
}

fn person<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} {}",
        pick(vocab::FIRST_NAMES, rng),
        pick(vocab::LAST_NAMES, rng)
    )
}

/// A description sentence drawn mostly (3 in 4 words) from the family's
/// theme vocabulary, keeping sibling records similar enough to block
/// together.
fn sentence<R: Rng>(theme: &[String], len: usize, rng: &mut R) -> String {
    let mut words: Vec<String> = Vec::with_capacity(len);
    for i in 0..len {
        if i % 4 != 3 && !theme.is_empty() {
            words.push(theme[rng.gen_range(0..theme.len())].clone());
        } else {
            words.push(pick(vocab::FILLER, rng).to_owned());
        }
    }
    words.join(" ")
}

impl DomainKind {
    /// The aligned schema (the "Matched Columns" of Table 1).
    pub fn schema(self) -> Schema {
        use AttrKind::{Numeric, Text};
        match self {
            DomainKind::AbtBuy => Schema::new(vec![
                ("name", Text),
                ("description", Text),
                ("price", Numeric),
            ]),
            DomainKind::AmazonGoogle => Schema::new(vec![
                ("name", Text),
                ("description", Text),
                ("manufacturer", Text),
                ("price", Numeric),
            ]),
            DomainKind::DblpAcm | DomainKind::DblpScholar => Schema::new(vec![
                ("title", Text),
                ("authors", Text),
                ("venue", Text),
                ("year", Numeric),
            ]),
            DomainKind::Cora => Schema::new(vec![
                ("author", Text),
                ("title", Text),
                ("venue", Text),
                ("address", Text),
                ("publisher", Text),
                ("editor", Text),
                ("date", Numeric),
                ("vol", Numeric),
                ("pgs", Text),
            ]),
            DomainKind::WalmartAmazon => Schema::new(vec![
                ("brand", Text),
                ("modelno", Text),
                ("title", Text),
                ("price", Numeric),
                ("dimensions", Text),
                ("shipweight", Text),
                ("orig_longdescr", Text),
                ("shortdescr", Text),
                ("longdescr", Text),
                ("groupname", Text),
            ]),
            DomainKind::AmazonBestBuy => Schema::new(vec![
                ("brand", Text),
                ("title", Text),
                ("price", Numeric),
                ("features", Text),
            ]),
            DomainKind::Beer => Schema::new(vec![
                ("beer_name", Text),
                ("brew_factory_name", Text),
                ("style", Text),
                ("ABV", Numeric),
            ]),
            DomainKind::BabyProducts => Schema::new(vec![
                ("title", Text),
                ("price", Numeric),
                ("is_discounted", Text),
                ("category", Text),
                ("company_struct", Text),
                ("company_free", Text),
                ("brand", Text),
                ("weight", Text),
                ("length", Text),
                ("width", Text),
                ("height", Text),
                ("fabrics", Text),
                ("colors", Text),
                ("materials", Text),
            ]),
        }
    }

    /// Draw a new family context.
    pub fn family<R: Rng>(self, rng: &mut R) -> Family {
        match self {
            DomainKind::AbtBuy
            | DomainKind::AmazonGoogle
            | DomainKind::WalmartAmazon
            | DomainKind::AmazonBestBuy => {
                let shared_tokens = {
                    let mut t = pick_n(vocab::PRODUCT_NOUNS, 1, rng);
                    t.extend(pick_n(vocab::MODIFIERS, 2, rng));
                    t
                };
                let mut theme = shared_tokens.clone();
                theme.extend(pick_n(vocab::MODIFIERS, 6, rng));
                Family {
                    brand: pick(vocab::BRANDS, rng).to_owned(),
                    shared_tokens,
                    theme,
                    authors: Vec::new(),
                    venue: String::new(),
                    base_num: rng.gen_range(20.0..800.0),
                    category: pick(vocab::CATEGORIES, rng).to_owned(),
                }
            }
            DomainKind::DblpAcm | DomainKind::DblpScholar | DomainKind::Cora => {
                let shared_tokens = pick_n(vocab::TITLE_WORDS, 4, rng);
                let mut theme = shared_tokens.clone();
                theme.extend(pick_n(vocab::TITLE_WORDS, 4, rng));
                Family {
                    brand: String::new(),
                    shared_tokens,
                    theme,
                    authors: (0..4).map(|_| person(rng)).collect(),
                    venue: pick(vocab::VENUES, rng).to_owned(),
                    base_num: f64::from(rng.gen_range(1995..2020)),
                    category: pick(vocab::CITIES, rng).to_owned(),
                }
            }
            DomainKind::Beer => {
                let shared_tokens = pick_n(vocab::BEER_WORDS, 2, rng);
                Family {
                    brand: format!(
                        "{} {} {}",
                        pick(vocab::BEER_WORDS, rng),
                        pick(vocab::BEER_WORDS, rng),
                        pick(vocab::BREWERY_WORDS, rng)
                    ),
                    theme: shared_tokens.clone(),
                    shared_tokens,
                    authors: Vec::new(),
                    venue: pick(vocab::BEER_STYLES, rng).to_owned(),
                    base_num: rng.gen_range(4.0..12.0),
                    category: String::new(),
                }
            }
            DomainKind::BabyProducts => {
                let shared_tokens = {
                    let mut t = pick_n(vocab::BABY_WORDS, 1, rng);
                    t.extend(pick_n(vocab::COLORS, 1, rng));
                    t
                };
                let mut theme = shared_tokens.clone();
                theme.extend(pick_n(vocab::BABY_WORDS, 4, rng));
                Family {
                    brand: pick(vocab::BABY_BRANDS, rng).to_owned(),
                    shared_tokens,
                    theme,
                    authors: Vec::new(),
                    venue: String::new(),
                    base_num: rng.gen_range(10.0..300.0),
                    category: pick(vocab::CATEGORIES, rng).to_owned(),
                }
            }
        }
    }

    /// Canonical attribute values for one sibling entity of a family.
    pub fn canonical<R: Rng>(self, fam: &Family, rng: &mut R) -> Vec<CanonValue> {
        use CanonValue::{Num, SideText, Text};
        match self {
            DomainKind::AbtBuy => {
                let name = product_name(fam, rng);
                vec![
                    Text(name),
                    SideText(sentence(&fam.theme, 10, rng), sentence(&fam.theme, 10, rng)),
                    Num(member_price(fam, rng)),
                ]
            }
            DomainKind::AmazonGoogle => {
                let name = product_name(fam, rng);
                vec![
                    Text(name),
                    SideText(sentence(&fam.theme, 10, rng), sentence(&fam.theme, 10, rng)),
                    Text(fam.brand.clone()),
                    Num(member_price(fam, rng)),
                ]
            }
            DomainKind::DblpAcm | DomainKind::DblpScholar => {
                let (title, authors) = publication(fam, rng);
                vec![
                    Text(title),
                    Text(authors),
                    Text(fam.venue.clone()),
                    Num(fam.base_num + f64::from(rng.gen_range(0..3))),
                ]
            }
            DomainKind::Cora => {
                let (title, authors) = publication(fam, rng);
                vec![
                    Text(authors),
                    Text(title),
                    Text(fam.venue.clone()),
                    Text(fam.category.clone()),
                    Text(pick(vocab::PUBLISHERS, rng).to_owned()),
                    Text(person(rng)),
                    Num(fam.base_num + f64::from(rng.gen_range(0..3))),
                    Num(f64::from(rng.gen_range(1..40))),
                    Text(format!(
                        "{}--{}",
                        rng.gen_range(1..400),
                        rng.gen_range(400..800)
                    )),
                ]
            }
            DomainKind::WalmartAmazon => {
                let code = model_code(rng);
                let name = format!("{} {} {}", product_name(fam, rng), code, fam.category);
                vec![
                    Text(fam.brand.clone()),
                    Text(code),
                    Text(name),
                    Num(member_price(fam, rng)),
                    Text(format!(
                        "{} x {} x {} inches",
                        rng.gen_range(1..30),
                        rng.gen_range(1..30),
                        rng.gen_range(1..30)
                    )),
                    Text(format!("{} pounds", rng.gen_range(1..50))),
                    SideText(sentence(&fam.theme, 14, rng), sentence(&fam.theme, 14, rng)),
                    SideText(sentence(&fam.theme, 6, rng), sentence(&fam.theme, 6, rng)),
                    SideText(sentence(&fam.theme, 14, rng), sentence(&fam.theme, 14, rng)),
                    Text(fam.category.clone()),
                ]
            }
            DomainKind::AmazonBestBuy => {
                vec![
                    Text(fam.brand.clone()),
                    Text(product_name(fam, rng)),
                    Num(member_price(fam, rng)),
                    SideText(sentence(&fam.theme, 8, rng), sentence(&fam.theme, 8, rng)),
                ]
            }
            DomainKind::Beer => {
                let name = format!(
                    "{} {} {}",
                    fam.shared_tokens.join(" "),
                    pick(vocab::BEER_WORDS, rng),
                    fam.venue.split_whitespace().last().unwrap_or("ale")
                );
                vec![
                    Text(name),
                    Text(fam.brand.clone()),
                    Text(fam.venue.clone()),
                    Num(fam.base_num + rng.gen_range(-0.5..0.5)),
                ]
            }
            DomainKind::BabyProducts => {
                let title = format!(
                    "{} {} {} {}",
                    fam.brand,
                    fam.shared_tokens.join(" "),
                    pick(vocab::BABY_WORDS, rng),
                    model_code(rng)
                );
                vec![
                    Text(title),
                    Num(member_price(fam, rng)),
                    Text(if rng.gen_bool(0.3) { "yes" } else { "no" }.to_owned()),
                    Text(fam.category.clone()),
                    Text(format!("{} inc", fam.brand)),
                    Text(fam.brand.clone()),
                    Text(fam.brand.clone()),
                    Text(format!("{:.1} pounds", rng.gen_range(0.5..20.0))),
                    Text(format!("{} in", rng.gen_range(5..40))),
                    Text(format!("{} in", rng.gen_range(5..40))),
                    Text(format!("{} in", rng.gen_range(5..40))),
                    Text(pick(vocab::FABRICS, rng).to_owned()),
                    Text(pick(vocab::COLORS, rng).to_owned()),
                    Text(pick(vocab::FABRICS, rng).to_owned()),
                ]
            }
        }
    }
}

/// Product name: brand + shared line tokens + a member-distinct model code
/// and modifier. Siblings share brand + line → they survive blocking as
/// hard negatives; the code keeps them distinguishable.
fn product_name<R: Rng>(fam: &Family, rng: &mut R) -> String {
    format!(
        "{} {} {} {}",
        fam.brand,
        fam.shared_tokens.join(" "),
        model_code(rng),
        pick(vocab::MODIFIERS, rng),
    )
}

/// Sibling publications share theme words and an author pool; each member
/// adds distinct title words, like revisions/extensions of the same work.
fn publication<R: Rng>(fam: &Family, rng: &mut R) -> (String, String) {
    let mut title_words = fam.shared_tokens.clone();
    title_words.extend(pick_n(vocab::TITLE_WORDS, 3, rng));
    let n_auth = rng.gen_range(1..=fam.authors.len().max(1));
    let mut authors = fam.authors.clone();
    authors.shuffle(rng);
    authors.truncate(n_auth);
    (title_words.join(" "), authors.join(" "))
}

/// Sibling prices cluster around the family base with member-level spread.
fn member_price<R: Rng>(fam: &Family, rng: &mut R) -> f64 {
    (fam.base_num * rng.gen_range(0.8..1.2)).max(1.0)
}

/// All nine domains, for exhaustive tests.
pub const ALL_DOMAINS: [DomainKind; 9] = [
    DomainKind::AbtBuy,
    DomainKind::AmazonGoogle,
    DomainKind::DblpAcm,
    DomainKind::DblpScholar,
    DomainKind::Cora,
    DomainKind::WalmartAmazon,
    DomainKind::AmazonBestBuy,
    DomainKind::Beer,
    DomainKind::BabyProducts,
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schemas_match_table1_arity() {
        assert_eq!(DomainKind::AbtBuy.schema().len(), 3);
        assert_eq!(DomainKind::AmazonGoogle.schema().len(), 4);
        assert_eq!(DomainKind::DblpAcm.schema().len(), 4);
        assert_eq!(DomainKind::DblpScholar.schema().len(), 4);
        assert_eq!(DomainKind::Cora.schema().len(), 9);
        assert_eq!(DomainKind::WalmartAmazon.schema().len(), 10);
        assert_eq!(DomainKind::AmazonBestBuy.schema().len(), 4);
        assert_eq!(DomainKind::Beer.schema().len(), 4);
        assert_eq!(DomainKind::BabyProducts.schema().len(), 14);
    }

    #[test]
    fn canonical_matches_schema_arity() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in ALL_DOMAINS {
            let fam = d.family(&mut rng);
            let vals = d.canonical(&fam, &mut rng);
            assert_eq!(vals.len(), d.schema().len(), "{d:?}");
        }
    }

    #[test]
    fn siblings_share_tokens() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DomainKind::AbtBuy;
        let fam = d.family(&mut rng);
        let a = d.canonical(&fam, &mut rng);
        let b = d.canonical(&fam, &mut rng);
        let name = |v: &[CanonValue]| -> String {
            match &v[0] {
                CanonValue::Text(s) => s.clone(),
                CanonValue::SideText(..) | CanonValue::Num(_) => unreachable!(),
            }
        };
        let na = name(&a);
        let nb = name(&b);
        let sa: std::collections::HashSet<&str> = na.split_whitespace().collect();
        let sb: std::collections::HashSet<&str> = nb.split_whitespace().collect();
        let inter = sa.intersection(&sb).count();
        assert!(inter >= 3, "siblings share only {inter} name tokens");
    }

    #[test]
    fn families_are_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = DomainKind::DblpAcm;
        let f1 = d.family(&mut rng);
        let f2 = d.family(&mut rng);
        assert!(
            f1.shared_tokens != f2.shared_tokens || f1.venue != f2.venue,
            "two families drew identical context"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let d = DomainKind::Beer;
            let fam = d.family(&mut rng);
            d.canonical(&fam, &mut rng)
        };
        assert_eq!(gen(7), gen(7));
    }
}
