//! Materializing a [`GenConfig`] into an [`EmDataset`].
//!
//! Every entity gets one mention in each table (so the ground truth is a
//! perfect 1-1 matching, like the curated benchmark datasets); left and
//! right mentions are independently perturbed per the config.

use crate::configs::GenConfig;
use crate::domains::CanonValue;
use crate::perturb::Perturber;
use alem_core::schema::{AttrKind, EmDataset, Record, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Which table a mention goes to (selects the side of
/// [`CanonValue::SideText`]).
#[derive(Clone, Copy)]
enum Side {
    Left,
    Right,
}

/// Perturb a canonical value into a mention value.
fn mention<R: Rng>(
    canon: &CanonValue,
    kind: AttrKind,
    side: Side,
    p: &Perturber,
    rng: &mut R,
) -> Option<String> {
    match canon {
        CanonValue::Text(s) => p.text(s, rng),
        CanonValue::SideText(l, r) => match side {
            Side::Left => p.text(l, rng),
            Side::Right => p.text(r, rng),
        },
        CanonValue::Num(v) => {
            debug_assert_eq!(kind, AttrKind::Numeric);
            p.numeric(*v, rng)
        }
    }
}

/// Generate a synthetic EM dataset deterministically from `seed`.
pub fn generate(cfg: &GenConfig, seed: u64) -> EmDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = cfg.domain.schema();
    let kinds: Vec<AttrKind> = schema.attributes().iter().map(|a| a.kind).collect();

    let mut left_records = Vec::new();
    let mut right_records = Vec::new();
    let mut matches: BTreeSet<(u32, u32)> = BTreeSet::new();

    for _ in 0..cfg.n_families {
        let fam = cfg.domain.family(&mut rng);
        for _ in 0..cfg.family_size {
            let canon = cfg.domain.canonical(&fam, &mut rng);
            let left: Vec<Option<String>> = canon
                .iter()
                .zip(&kinds)
                .map(|(c, &k)| mention(c, k, Side::Left, &cfg.perturb_left, &mut rng))
                .collect();
            let right: Vec<Option<String>> = canon
                .iter()
                .zip(&kinds)
                .map(|(c, &k)| mention(c, k, Side::Right, &cfg.perturb_right, &mut rng))
                .collect();
            let l_idx = left_records.len() as u32;
            let r_idx = right_records.len() as u32;
            left_records.push(Record::new(left));
            right_records.push(Record::new(right));
            matches.insert((l_idx, r_idx));
        }
    }

    EmDataset {
        left: Table::new(&format!("{}-left", cfg.name), schema.clone(), left_records),
        right: Table::new(&format!("{}-right", cfg.name), schema, right_records),
        matches,
        name: cfg.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::PaperDataset;
    use alem_core::blocking::{stats, BlockingConfig};

    #[test]
    fn generates_one_mention_per_table_per_entity() {
        let cfg = PaperDataset::AbtBuy.config(0.05);
        let ds = generate(&cfg, 1);
        let n = cfg.n_families * cfg.family_size;
        assert_eq!(ds.left.len(), n);
        assert_eq!(ds.right.len(), n);
        assert_eq!(ds.matches.len(), n);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PaperDataset::Beer.config(1.0);
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a.left.records(), b.left.records());
        assert_eq!(a.right.records(), b.right.records());
        let c = generate(&cfg, 43);
        assert_ne!(a.left.records(), c.left.records());
    }

    #[test]
    fn blocking_yields_paperlike_skew() {
        // Family construction should land within ~2x of the paper's skew.
        let cfg = PaperDataset::DblpAcm.config(0.1);
        let ds = generate(&cfg, 7);
        let pairs = BlockingConfig {
            jaccard_threshold: cfg.blocking_threshold,
        }
        .block(&ds);
        let s = stats(&ds, &pairs);
        assert!(
            s.post_blocking_pairs > 100,
            "too few pairs: {}",
            s.post_blocking_pairs
        );
        let paper = PaperDataset::DblpAcm.paper_skew();
        assert!(
            s.class_skew > paper * 0.4 && s.class_skew < paper * 2.5,
            "skew {:.3} too far from paper {paper:.3}",
            s.class_skew
        );
    }

    #[test]
    fn every_dataset_generates_blocks_and_keeps_matches() {
        use crate::configs::ALL_DATASETS;
        for d in ALL_DATASETS {
            let cfg = d.config(0.05);
            let ds = generate(&cfg, 11);
            assert_eq!(ds.left.schema(), ds.right.schema(), "{}", d.name());
            let pairs = BlockingConfig {
                jaccard_threshold: cfg.blocking_threshold,
            }
            .block(&ds);
            let s = stats(&ds, &pairs);
            assert!(
                s.post_blocking_pairs > 0,
                "{}: blocking produced nothing",
                d.name()
            );
            assert!(
                s.matches_retained * 3 >= s.matches_total,
                "{}: lost too many matches ({}/{})",
                d.name(),
                s.matches_retained,
                s.matches_total
            );
            assert!(
                s.class_skew > 0.01 && s.class_skew < 0.6,
                "{}: implausible skew {:.3}",
                d.name(),
                s.class_skew
            );
        }
    }

    #[test]
    fn most_matches_survive_blocking() {
        let cfg = PaperDataset::AbtBuy.config(0.1);
        let ds = generate(&cfg, 7);
        let pairs = BlockingConfig {
            jaccard_threshold: cfg.blocking_threshold,
        }
        .block(&ds);
        let s = stats(&ds, &pairs);
        // Heavy product-domain perturbation loses some true matches at the
        // blocking step, as on the real datasets; progressive F1 is
        // evaluated over post-blocking pairs, so this only affects realism.
        let retention = s.matches_retained as f64 / s.matches_total as f64;
        assert!(retention > 0.4, "only {retention:.2} of matches retained");
    }
}
