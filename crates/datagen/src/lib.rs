//! `datagen` — seeded synthetic EM dataset generators.
//!
//! The paper evaluates on nine public datasets (Table 1) plus a private
//! social-media corpus; none of them is redistributable inside this
//! offline reproduction, so this crate generates synthetic stand-ins that
//! preserve what the experiments actually depend on:
//!
//! * each dataset's **aligned schema** (the "Matched Columns" of Table 1),
//! * its approximate **post-blocking pair count** and **class skew**, via a
//!   family-based construction: entities are generated in families of
//!   near-duplicates (same brand/venue, overlapping names) so that
//!   within-family pairs survive Jaccard blocking as hard non-matches —
//!   family size ≈ 1/skew,
//! * its **difficulty ordering**: product datasets get heavier mention
//!   perturbation (typos, token drops, reordering, missing values) than
//!   publication datasets, mirroring why Abt-Buy tops out near F1 0.6–0.7
//!   for linear models while DBLP-ACM approaches 0.98.
//!
//! Every generator is fully deterministic given a seed.
//!
//! ```
//! use datagen::{PaperDataset, generate};
//! let ds = generate(&PaperDataset::AbtBuy.config(0.05), 42);
//! assert_eq!(ds.left.schema().len(), 3); // {name, description, price}
//! assert!(!ds.matches.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod domains;
pub mod generate;
pub mod perturb;
pub mod social;
pub mod vocab;

pub use configs::{GenConfig, PaperDataset};
pub use generate::generate;
pub use social::{generate_social, SocialConfig};
