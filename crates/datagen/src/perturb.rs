//! Mention perturbation: turning a canonical entity value into a noisy
//! table-specific mention.
//!
//! The knobs model the corruption found in the real datasets: character
//! typos (Abt vs Buy product names), dropped/reordered tokens (truncated
//! titles), abbreviations (author first initials in DBLP/Scholar/Cora),
//! missing values (null prices) and numeric jitter (prices differing by a
//! few percent between stores).

use rand::seq::SliceRandom;
use rand::Rng;

/// Perturbation strengths; all rates are per-opportunity probabilities.
#[derive(Debug, Clone, Copy)]
pub struct Perturber {
    /// Per-token probability of one character edit (swap/delete/replace).
    pub typo_rate: f64,
    /// Per-token probability of being dropped (kept ≥ 1 token).
    pub token_drop_rate: f64,
    /// Probability of shuffling two adjacent tokens.
    pub token_swap_rate: f64,
    /// Per-token probability of being abbreviated to its initial.
    pub abbrev_rate: f64,
    /// Probability the whole value goes missing (`None`).
    pub missing_rate: f64,
    /// Relative jitter for numeric values (e.g. 0.05 = ±5%).
    pub numeric_jitter: f64,
}

impl Perturber {
    /// No perturbation at all (clean mentions).
    pub const CLEAN: Perturber = Perturber {
        typo_rate: 0.0,
        token_drop_rate: 0.0,
        token_swap_rate: 0.0,
        abbrev_rate: 0.0,
        missing_rate: 0.0,
        numeric_jitter: 0.0,
    };

    /// Light perturbation — publication-domain difficulty.
    pub const LIGHT: Perturber = Perturber {
        typo_rate: 0.02,
        token_drop_rate: 0.05,
        token_swap_rate: 0.05,
        abbrev_rate: 0.15,
        missing_rate: 0.02,
        numeric_jitter: 0.0,
    };

    /// Heavy perturbation — product-domain difficulty.
    pub const HEAVY: Perturber = Perturber {
        typo_rate: 0.10,
        token_drop_rate: 0.28,
        token_swap_rate: 0.20,
        abbrev_rate: 0.05,
        missing_rate: 0.15,
        numeric_jitter: 0.10,
    };

    /// Perturb a text value; `None` when the value goes missing.
    pub fn text<R: Rng>(&self, value: &str, rng: &mut R) -> Option<String> {
        if self.missing_rate > 0.0 && rng.gen::<f64>() < self.missing_rate {
            return None;
        }
        let mut tokens: Vec<String> = value.split_whitespace().map(str::to_owned).collect();
        if tokens.is_empty() {
            return Some(String::new());
        }
        // Drop tokens (never below one).
        if self.token_drop_rate > 0.0 {
            let mut kept: Vec<String> = tokens
                .iter()
                .filter(|_| rng.gen::<f64>() >= self.token_drop_rate)
                .cloned()
                .collect();
            if kept.is_empty() {
                kept.push(tokens[rng.gen_range(0..tokens.len())].clone());
            }
            tokens = kept;
        }
        // Swap one adjacent pair.
        if tokens.len() >= 2 && rng.gen::<f64>() < self.token_swap_rate {
            let i = rng.gen_range(0..tokens.len() - 1);
            tokens.swap(i, i + 1);
        }
        // Abbreviate and typo per token.
        for t in &mut tokens {
            if t.len() > 1 && rng.gen::<f64>() < self.abbrev_rate {
                let initial: String = t.chars().take(1).collect();
                *t = initial;
                continue;
            }
            if rng.gen::<f64>() < self.typo_rate {
                *t = typo(t, rng);
            }
        }
        Some(tokens.join(" "))
    }

    /// Perturb a numeric value rendered as text.
    pub fn numeric<R: Rng>(&self, value: f64, rng: &mut R) -> Option<String> {
        if self.missing_rate > 0.0 && rng.gen::<f64>() < self.missing_rate {
            return None;
        }
        let jittered = if self.numeric_jitter > 0.0 {
            let f = 1.0 + rng.gen_range(-self.numeric_jitter..=self.numeric_jitter);
            value * f
        } else {
            value
        };
        // Integers render without a fraction — "2005.00" would tokenize to
        // {2005, 00} and the spurious "00" token would inflate Jaccard
        // between unrelated records.
        if (jittered - jittered.round()).abs() < 0.005 {
            Some(format!("{}", jittered.round() as i64))
        } else {
            Some(format!("{jittered:.2}"))
        }
    }
}

/// Apply one random character edit to a token.
fn typo<R: Rng>(token: &str, rng: &mut R) -> String {
    let mut chars: Vec<char> = token.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    match rng.gen_range(0..3) {
        0 if chars.len() >= 2 => {
            // Swap two adjacent characters.
            let i = rng.gen_range(0..chars.len() - 1);
            chars.swap(i, i + 1);
        }
        1 if chars.len() >= 2 => {
            // Delete one character.
            let i = rng.gen_range(0..chars.len());
            chars.remove(i);
        }
        _ => {
            // Replace one character with a random lowercase letter.
            let i = rng.gen_range(0..chars.len());
            chars[i] = b"abcdefghijklmnopqrstuvwxyz"
                .choose(rng)
                .map_or('x', |&b| b as char);
        }
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = Perturber::CLEAN.text("sony dvd player", &mut rng);
        assert_eq!(v.as_deref(), Some("sony dvd player"));
        let n = Perturber::CLEAN.numeric(19.5, &mut rng);
        assert_eq!(n.as_deref(), Some("19.50"));
    }

    #[test]
    fn heavy_changes_most_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut changed = 0;
        for _ in 0..200 {
            let v =
                Perturber::HEAVY.text("panasonic widescreen plasma television remote", &mut rng);
            if v.as_deref() != Some("panasonic widescreen plasma television remote") {
                changed += 1;
            }
        }
        assert!(changed > 150, "only {changed}/200 perturbed");
    }

    #[test]
    fn missing_rate_produces_nones() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Perturber {
            missing_rate: 0.5,
            ..Perturber::CLEAN
        };
        let nones = (0..1000)
            .filter(|_| p.text("abc", &mut rng).is_none())
            .count();
        assert!((400..600).contains(&nones), "{nones} missing of 1000");
    }

    #[test]
    fn never_empties_token_list() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = Perturber {
            token_drop_rate: 0.95,
            ..Perturber::CLEAN
        };
        for _ in 0..100 {
            let v = p.text("alpha beta", &mut rng).unwrap();
            assert!(!v.is_empty());
        }
    }

    #[test]
    fn numeric_jitter_stays_in_band() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Perturber {
            numeric_jitter: 0.1,
            ..Perturber::CLEAN
        };
        for _ in 0..100 {
            let v: f64 = p.numeric(100.0, &mut rng).unwrap().parse().unwrap();
            assert!((90.0..=110.0).contains(&v));
        }
    }

    #[test]
    fn abbreviation_shortens_tokens() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = Perturber {
            abbrev_rate: 1.0,
            ..Perturber::CLEAN
        };
        let v = p.text("jennifer widom", &mut rng).unwrap();
        assert_eq!(v, "j w");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20)
                .map(|_| Perturber::HEAVY.text("canon digital camera kit", &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
