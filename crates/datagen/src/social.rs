//! The social-media EM corpus of §6.3.1 (Fig. 19).
//!
//! The paper matches 467,761 enterprise employee records against 50M social
//! media profiles with *no ground truth*, evaluating rule learning by
//! having a human expert validate each learned rule. This generator builds
//! a scaled-down equivalent: a large profile table, an employee table
//! covering a subset of the same people, and hidden ground truth used only
//! to emulate the validating expert (a rule is "valid" when its hidden
//! precision clears a bar). Name collisions are natural hard negatives —
//! first/last names are drawn from small vocabularies, so unrelated people
//! share names just like in the real corpus.

use crate::perturb::Perturber;
use crate::vocab;
use alem_core::schema::{AttrKind, EmDataset, Record, Schema, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration for the social-media corpus.
#[derive(Debug, Clone)]
pub struct SocialConfig {
    /// Employee records (left table).
    pub n_employees: usize,
    /// Social profiles (right table); must be ≥ `n_employees`.
    pub n_profiles: usize,
    /// Fraction of employees that actually have a profile.
    pub coverage: f64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            n_employees: 400,
            n_profiles: 4000,
            coverage: 0.8,
        }
    }
}

impl SocialConfig {
    /// The default corpus scaled by `factor`: row counts multiply (and
    /// round), coverage is unchanged. `scaled(1.0)` equals
    /// [`SocialConfig::default`]; `scaled(25.0)` is the 10k × 100k corpus
    /// of the blocking benchmark; `scaled(125.0)` reaches 500k profiles.
    /// Factors below `1/400` clamp to one employee / one profile.
    pub fn scaled(factor: f64) -> Self {
        let d = SocialConfig::default();
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        SocialConfig {
            n_employees: scale(d.n_employees),
            n_profiles: scale(d.n_profiles).max(scale(d.n_employees)),
            coverage: d.coverage,
        }
    }
}

/// The aligned schema: the attributes listed in §6.3.1.
pub fn social_schema() -> Schema {
    use AttrKind::Text;
    Schema::new(vec![
        ("name", Text),
        ("location", Text),
        ("email", Text),
        ("occupation", Text),
        ("gender", Text),
        ("homepage", Text),
    ])
}

struct Person {
    first: String,
    last: String,
    city: String,
    occupation: String,
    gender: String,
}

fn person<R: Rng>(rng: &mut R) -> Person {
    Person {
        first: vocab::FIRST_NAMES
            .choose(rng)
            .copied()
            .unwrap_or("")
            .to_string(),
        last: vocab::LAST_NAMES
            .choose(rng)
            .copied()
            .unwrap_or("")
            .to_string(),
        city: vocab::CITIES.choose(rng).copied().unwrap_or("").to_string(),
        occupation: vocab::OCCUPATIONS
            .choose(rng)
            .copied()
            .unwrap_or("")
            .to_string(),
        gender: if rng.gen_bool(0.5) { "m" } else { "f" }.to_owned(),
    }
}

fn employee_record<R: Rng>(p: &Person, rng: &mut R) -> Record {
    let email = format!("{}.{}@enterprise.example", p.first, p.last);
    let homepage = if rng.gen_bool(0.3) {
        Some(format!("enterprise.example/~{}{}", &p.first[..1], p.last))
    } else {
        None
    };
    Record::new(vec![
        Some(format!("{} {}", p.first, p.last)),
        Some(p.city.clone()),
        Some(email),
        Some(p.occupation.clone()),
        Some(p.gender.clone()),
        homepage,
    ])
}

fn profile_record<R: Rng>(p: &Person, rng: &mut R) -> Record {
    let noise = Perturber {
        typo_rate: 0.04,
        token_drop_rate: 0.0,
        token_swap_rate: 0.0,
        abbrev_rate: 0.1,
        missing_rate: 0.0,
        numeric_jitter: 0.0,
    };
    let name = noise
        .text(&format!("{} {}", p.first, p.last), rng)
        .unwrap_or_default();
    // Personal email rarely matches the corporate one.
    let email = if rng.gen_bool(0.2) {
        Some(format!("{}.{}@mail.example", p.first, p.last))
    } else {
        Some(format!("{}{}@mail.example", p.first, rng.gen_range(1..99)))
    };
    let homepage = if rng.gen_bool(0.4) {
        Some(format!("social.example/{}{}", p.first, p.last))
    } else {
        None
    };
    let location = if rng.gen_bool(0.85) {
        Some(p.city.clone())
    } else {
        Some(vocab::CITIES.choose(rng).copied().unwrap_or("").to_string())
    };
    let occupation = if rng.gen_bool(0.7) {
        Some(p.occupation.clone())
    } else {
        None
    };
    Record::new(vec![
        Some(name),
        location,
        email,
        occupation,
        Some(p.gender.clone()),
        homepage,
    ])
}

/// Generate the corpus deterministically from `seed`.
pub fn generate_social(cfg: &SocialConfig, seed: u64) -> EmDataset {
    assert!(
        cfg.n_profiles >= cfg.n_employees,
        "profiles must cover employees"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = social_schema();

    let mut left = Vec::with_capacity(cfg.n_employees);
    let mut right = Vec::with_capacity(cfg.n_profiles);
    let mut matches: BTreeSet<(u32, u32)> = BTreeSet::new();

    // Employees, a fraction of whom also get a profile.
    for e in 0..cfg.n_employees {
        let p = person(&mut rng);
        left.push(employee_record(&p, &mut rng));
        if rng.gen::<f64>() < cfg.coverage {
            let r_idx = right.len() as u32;
            right.push(profile_record(&p, &mut rng));
            matches.insert((e as u32, r_idx));
        }
    }
    // The rest of the profile population: unrelated people.
    while right.len() < cfg.n_profiles {
        let p = person(&mut rng);
        right.push(profile_record(&p, &mut rng));
    }
    // Shuffle profiles so matches aren't clustered at the front. Track the
    // permutation to remap ground truth.
    let mut perm: Vec<usize> = (0..right.len()).collect();
    perm.shuffle(&mut rng);
    let mut inv = vec![0usize; perm.len()];
    for (new_pos, &old_pos) in perm.iter().enumerate() {
        inv[old_pos] = new_pos;
    }
    let shuffled: Vec<Record> = perm.iter().map(|&i| right[i].clone()).collect();
    let matches = matches
        .into_iter()
        .map(|(l, r)| (l, inv[r as usize] as u32))
        .collect();

    EmDataset {
        left: Table::new("employees", schema.clone(), left),
        right: Table::new("profiles", schema, shuffled),
        matches,
        name: "SocialMedia".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_coverage() {
        let cfg = SocialConfig {
            n_employees: 100,
            n_profiles: 500,
            coverage: 0.8,
        };
        let ds = generate_social(&cfg, 3);
        assert_eq!(ds.left.len(), 100);
        assert_eq!(ds.right.len(), 500);
        let m = ds.matches.len() as f64;
        assert!((60.0..100.0).contains(&m), "matches {m}");
    }

    #[test]
    fn ground_truth_is_consistent_after_shuffle() {
        let ds = generate_social(&SocialConfig::default(), 5);
        for &(l, r) in &ds.matches {
            let left_name = ds.left.record(l as usize).value(0).unwrap();
            let right_name = ds.right.record(r as usize).value(0).unwrap();
            // Matched records share a gender and usually most name chars.
            assert_eq!(
                ds.left.record(l as usize).value(4),
                ds.right.record(r as usize).value(4),
                "gender mismatch for match {l},{r}: {left_name} vs {right_name}"
            );
        }
    }

    #[test]
    fn name_collisions_exist() {
        // Small name vocabularies must produce unrelated people sharing
        // full names — the hard negatives of the real corpus.
        let ds = generate_social(&SocialConfig::default(), 5);
        let mut names: Vec<&str> = (0..ds.left.len())
            .filter_map(|i| ds.left.record(i).value(0))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert!(
            names.len() < total,
            "no name collisions in {total} employees"
        );
    }

    #[test]
    fn scaled_multiplies_rows_and_preserves_defaults() {
        let unit = SocialConfig::scaled(1.0);
        let d = SocialConfig::default();
        assert_eq!(unit.n_employees, d.n_employees);
        assert_eq!(unit.n_profiles, d.n_profiles);
        assert!((unit.coverage - d.coverage).abs() < 1e-12);

        let big = SocialConfig::scaled(25.0);
        assert_eq!(big.n_employees, 10_000);
        assert_eq!(big.n_profiles, 100_000);

        let tiny = SocialConfig::scaled(0.0);
        assert_eq!(tiny.n_employees, 1);
        assert!(tiny.n_profiles >= tiny.n_employees);
    }

    #[test]
    fn deterministic() {
        let a = generate_social(&SocialConfig::default(), 11);
        let b = generate_social(&SocialConfig::default(), 11);
        assert_eq!(a.left.records(), b.left.records());
        assert_eq!(a.right.records(), b.right.records());
        assert_eq!(a.matches, b.matches);
    }
}
