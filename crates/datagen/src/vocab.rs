//! Vocabularies for the synthetic domains: product catalogs, publications,
//! beers, baby products and social-media profiles.

/// Consumer-electronics & appliance brands (product domains).
pub const BRANDS: &[&str] = &[
    "sony", "panasonic", "samsung", "toshiba", "philips", "canon", "nikon", "garmin", "apple",
    "logitech", "netgear", "linksys", "pioneer", "yamaha", "denon", "kenwood", "sanyo", "sharp",
    "jvc", "olympus", "casio", "epson", "brother", "lexmark", "belkin", "dlink", "motorola",
    "nokia", "siemens", "bosch", "whirlpool", "frigidaire", "haier", "lg", "vizio", "polk",
    "klipsch", "bose", "onkyo", "marantz",
];

/// Product line nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "camera", "camcorder", "television", "receiver", "speaker", "subwoofer", "headphones",
    "keyboard", "mouse", "router", "printer", "scanner", "monitor", "projector", "microwave",
    "refrigerator", "dishwasher", "blender", "toaster", "vacuum", "player", "recorder", "radio",
    "phone", "tablet", "laptop", "charger", "adapter", "cable", "dock", "remote", "antenna",
    "turntable", "amplifier", "soundbar", "dehumidifier", "heater", "fan", "drive", "enclosure",
];

/// Descriptive modifiers for product names and descriptions.
pub const MODIFIERS: &[&str] = &[
    "digital", "wireless", "portable", "compact", "professional", "premium", "deluxe",
    "high", "definition", "widescreen", "stereo", "bluetooth", "rechargeable", "waterproof",
    "stainless", "steel", "black", "white", "silver", "titanium", "ultra", "slim", "mini",
    "series", "edition", "gb", "inch", "watt", "channel", "zoom", "optical", "megapixel",
    "dual", "layer", "dolby", "surround", "hdmi", "usb", "lcd", "led", "plasma",
    "ergonomic", "adjustable", "foldable", "lightweight", "heavy", "duty", "industrial",
    "commercial", "residential", "automatic", "manual", "programmable", "smart", "classic",
    "vintage", "modern", "sleek", "rugged", "shockproof", "anti", "glare", "matte", "glossy",
    "curved", "flat", "panel", "tower", "desktop", "gaming", "studio", "reference",
];

/// Generic filler words for descriptions.
pub const FILLER: &[&str] = &[
    "with", "for", "and", "the", "features", "includes", "supports", "designed", "easy",
    "quality", "performance", "technology", "system", "control", "power", "energy", "compatible",
    "warranty", "color", "display", "remote", "battery", "memory", "storage", "speed",
];

/// Research-paper title words (publication domains).
pub const TITLE_WORDS: &[&str] = &[
    "efficient", "scalable", "adaptive", "distributed", "parallel", "incremental", "optimal",
    "approximate", "probabilistic", "declarative", "query", "processing", "optimization",
    "indexing", "mining", "learning", "matching", "integration", "cleaning", "deduplication",
    "entity", "resolution", "schema", "mapping", "stream", "graph", "relational", "database",
    "transaction", "recovery", "concurrency", "storage", "memory", "cache", "join", "aggregation",
    "sampling", "sketching", "clustering", "classification", "ranking", "retrieval", "semantic",
    "knowledge", "ontology", "crowdsourcing", "provenance", "privacy", "secure", "federated",
    "robust", "dynamic", "static", "hybrid", "unified", "generic", "modular", "lightweight",
    "online", "offline", "interactive", "automated", "supervised", "unsupervised", "active",
    "transfer", "deep", "neural", "bayesian", "spectral", "temporal", "spatial", "textual",
    "multimodal", "heterogeneous", "homomorphic", "differential", "adversarial", "generative",
    "workload", "benchmark", "partitioning", "replication", "sharding", "compression",
    "encoding", "vectorized", "columnar", "adaptive_radix", "lsm", "btree", "hashing",
    "bloom", "cardinality", "estimation", "selectivity", "histogram", "wavelet", "synopsis",
    "materialized", "views", "rewriting", "federation", "mediation", "wrappers", "extraction",
    "wrapper", "annotation", "curation", "lineage", "versioning", "snapshot", "checkpoint",
    "logging", "durability", "consistency", "isolation", "serializability", "availability",
];

/// Author first names.
pub const FIRST_NAMES: &[&str] = &[
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda", "david",
    "elizabeth", "william", "barbara", "richard", "susan", "joseph", "jessica", "thomas",
    "sarah", "wei", "li", "yan", "jun", "anil", "priya", "raj", "anna", "peter", "hans",
    "maria", "carlos", "sofia", "kenji", "yuki", "ahmed", "fatima", "ivan", "olga", "pierre",
    "claire", "marco",
];

/// Author last names.
pub const LAST_NAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "rodriguez",
    "martinez", "chen", "wang", "zhang", "liu", "kumar", "patel", "singh", "gupta", "mueller",
    "schmidt", "rossi", "ferrari", "tanaka", "suzuki", "kim", "park", "nguyen", "tran",
    "hernandez", "lopez", "gonzalez", "wilson", "anderson", "taylor", "moore", "jackson",
    "martin", "lee", "thompson", "white",
];

/// Publication venues.
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "kdd", "cikm", "edbt", "icdt", "pods", "wsdm", "www", "icml",
    "nips", "aaai", "ijcai", "acl", "emnlp", "sigir", "recsys", "sosp", "osdi",
];

/// Cities (publication addresses, social profiles).
pub const CITIES: &[&str] = &[
    "portland", "seattle", "chicago", "boston", "austin", "denver", "atlanta", "phoenix",
    "dallas", "toronto", "vancouver", "london", "paris", "berlin", "munich", "zurich",
    "amsterdam", "tokyo", "beijing", "sydney", "melbourne", "singapore", "mumbai", "bangalore",
];

/// Publishers (Cora).
pub const PUBLISHERS: &[&str] = &[
    "springer", "elsevier", "acm press", "ieee press", "morgan kaufmann", "mit press",
    "cambridge university press", "oxford university press", "wiley", "addison wesley",
];

/// Beer style names.
pub const BEER_STYLES: &[&str] = &[
    "american ipa", "imperial stout", "pale ale", "pilsner", "hefeweizen", "porter", "saison",
    "amber lager", "brown ale", "belgian tripel", "wheat ale", "barleywine", "kolsch",
    "dunkel", "gose", "double ipa", "cream ale", "scotch ale", "rye ale", "fruit lambic",
];

/// Beer name words.
pub const BEER_WORDS: &[&str] = &[
    "hop", "golden", "dark", "old", "wild", "crooked", "lazy", "raging", "midnight", "summer",
    "winter", "harvest", "mountain", "river", "valley", "stone", "iron", "copper", "rustic",
    "howling", "dancing", "flying", "sleepy", "thirsty", "grumpy", "lucky", "noble", "royal",
];

/// Brewery words.
pub const BREWERY_WORDS: &[&str] = &[
    "brewing", "brewery", "brewhouse", "craft", "ales", "beerworks", "fermentation", "cellars",
    "taproom", "works",
];

/// Baby-product words.
pub const BABY_WORDS: &[&str] = &[
    "stroller", "crib", "bassinet", "carrier", "monitor", "bottle", "pacifier", "blanket",
    "swaddle", "onesie", "bib", "highchair", "playard", "rocker", "bouncer", "walker", "gate",
    "mattress", "sheet", "diaper", "wipes", "teether", "rattle", "mobile", "nightlight",
];

/// Baby-product brands.
pub const BABY_BRANDS: &[&str] = &[
    "graco", "chicco", "britax", "evenflo", "fisher price", "medela", "avent", "munchkin",
    "skip hop", "ergobaby", "halo", "aden anais", "summer infant", "safety first", "babyletto",
];

/// Fabric/color/material words (baby products).
pub const FABRICS: &[&str] = &[
    "cotton", "polyester", "muslin", "fleece", "bamboo", "jersey", "flannel", "minky", "terry",
    "organic cotton",
];

/// Colors.
pub const COLORS: &[&str] = &[
    "pink", "blue", "grey", "white", "ivory", "mint", "lavender", "yellow", "teal", "coral",
    "navy", "sage",
];

/// Occupations (social-media profiles).
pub const OCCUPATIONS: &[&str] = &[
    "software engineer", "data scientist", "product manager", "designer", "consultant",
    "analyst", "researcher", "architect", "developer", "manager", "director", "accountant",
    "teacher", "nurse", "technician", "marketer", "recruiter", "writer", "editor", "sales",
];

/// Product categories / group names.
pub const CATEGORIES: &[&str] = &[
    "electronics", "home audio", "cameras", "computers", "appliances", "networking",
    "accessories", "office", "kitchen", "outdoors", "nursery", "travel", "feeding", "bath",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_are_nonempty_and_unique() {
        for (name, v) in [
            ("BRANDS", BRANDS),
            ("PRODUCT_NOUNS", PRODUCT_NOUNS),
            ("MODIFIERS", MODIFIERS),
            ("TITLE_WORDS", TITLE_WORDS),
            ("FIRST_NAMES", FIRST_NAMES),
            ("LAST_NAMES", LAST_NAMES),
            ("VENUES", VENUES),
            ("BEER_STYLES", BEER_STYLES),
            ("BABY_WORDS", BABY_WORDS),
        ] {
            assert!(v.len() >= 20, "{name} too small");
            let mut sorted = v.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), v.len(), "{name} has duplicates");
        }
    }
}
