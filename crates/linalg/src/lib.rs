//! `linalg` — minimal dense linear algebra for the `mlcore` classifiers.
//!
//! Just enough for a linear SVM and a one-hidden-layer neural network:
//! vector dot/axpy/scale helpers on slices and a row-major [`Matrix`] with
//! the forward/backward products a feed-forward net needs. Deliberately
//! small: no BLAS, no SIMD intrinsics — the compiler auto-vectorizes the
//! tight loops well enough for feature dimensions in the tens-to-hundreds
//! this framework uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod vector;

pub use matrix::Matrix;
pub use vector::{add_assign, axpy, dot, norm2, scale};
