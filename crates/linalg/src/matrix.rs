//! Row-major dense matrix with the products a feed-forward net needs.

use crate::vector::dot;

/// A row-major dense `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `out = self · x` for a column vector `x` (`len == cols`).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// `out = selfᵀ · x` for a column vector `x` (`len == rows`).
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (o, &v) in out.iter_mut().zip(row) {
                *o += xr * v;
            }
        }
        out
    }

    /// Rank-1 update `self += alpha * u · vᵀ` (`u.len == rows`,
    /// `v.len == cols`). The workhorse of gradient accumulation.
    pub fn rank1_update(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows, "rank1 shape mismatch (rows)");
        assert_eq!(v.len(), self.cols, "rank1 shape mismatch (cols)");
        for (r, &ur) in u.iter().enumerate() {
            let coef = alpha * ur;
            if coef == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (cell, &vc) in row.iter_mut().zip(v) {
                *cell += coef * vc;
            }
        }
    }

    /// Element-wise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "axpy shape mismatch");
        assert_eq!(self.cols, other.cols, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Reset all entries to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_known() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_product() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn rank1_update_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_update(2.0, &[1.0, 0.0], &[3.0, 4.0]);
        assert_eq!(m.data(), &[6.0, 8.0, 0.0, 0.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        a.axpy(3.0, &b);
        assert_eq!(a.data(), &[3.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matvec shape mismatch")]
    fn matvec_rejects_bad_shape() {
        Matrix::zeros(2, 3).matvec(&[1.0]);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.row(0), &[0.0, 1.0]);
    }
}
