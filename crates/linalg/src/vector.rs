//! Slice-based vector helpers.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`, element-wise.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y *= alpha`, element-wise.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    for yi in y {
        *yi *= alpha;
    }
}

/// `y += x`, element-wise.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_and_add() {
        let mut y = vec![2.0, 4.0];
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
        add_assign(&mut y, &[1.0, 1.0]);
        assert_eq!(y, vec![2.0, 3.0]);
    }

    #[test]
    fn norm2_known() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }
}
