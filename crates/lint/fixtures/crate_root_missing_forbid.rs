//! Fixture: a crate root whose only `#![forbid(unsafe_code)]` is inside a
//! comment, which must not satisfy the forbid-unsafe rule:
//! `#![forbid(unsafe_code)]`

#![warn(missing_docs)]

pub fn noop() {}
