//! Fixture: every determinism rule fires. Never compiled — scanned by
//! crates/lint/tests/fixtures.rs under a fake `crates/core/src/` path.

use rand::thread_rng;
use std::time::{Instant, SystemTime};

pub fn ambient_randomness() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

pub fn wall_clock_seed() -> u64 {
    SystemTime::now().elapsed().unwrap_or_default().as_nanos() as u64
}

pub fn ad_hoc_timing() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}
