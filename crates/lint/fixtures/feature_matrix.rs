//! Fixture: nested feature-matrix allocations in core library code.

pub fn dense_matrix(n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| vec![i as f64]).collect()
}

pub fn split_across_lines(n: usize) -> Vec<
    Vec<f64>
> {
    dense_matrix(n)
}

pub fn flat_row(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

pub fn borrowed(rows: &[Vec<f64>]) -> usize {
    rows.len()
}

// alem-lint: allow(flat-feature-store) -- fixture: mirrors a sanctioned ingestion seam
pub fn annotated(rows: Vec<Vec<f64>>) -> usize {
    rows.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn nested_rows_are_fine_in_tests() {
        let m: Vec<Vec<f64>> = vec![vec![1.0]];
        assert_eq!(m.len(), 1);
    }
}
