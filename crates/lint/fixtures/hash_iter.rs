//! Fixture: hash-ordered collections in core library code.

use std::collections::{HashMap, HashSet};

pub fn hash_ordered(pairs: &[(u32, u32)]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &(l, r) in pairs {
        seen.insert(l);
        *counts.entry(r).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}

// alem-lint: allow(determinism-hash-iter) -- fixture: membership-only set, never iterated
pub fn annotated(set: &std::collections::HashSet<u32>) -> bool {
    set.contains(&1)
}
