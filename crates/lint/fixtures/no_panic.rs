//! Fixture: no-panic rule coverage, including test-module exemption and
//! both flavors of allow annotation.

pub fn bare_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bare_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn explicit_panic() {
    panic!("boom");
}

pub fn marked_unreachable() -> u32 {
    // alem-lint: allow(no-panic) -- fixture: a justified invariant statement
    unreachable!("suppressed by the annotation above")
}

pub fn reasonless_allow(x: Option<u32>) -> u32 {
    // alem-lint: allow(no-panic)
    x.unwrap()
}

pub fn not_a_panic(x: Option<u32>) -> u32 {
    x.unwrap_or(7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
