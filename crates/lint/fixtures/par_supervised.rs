//! Fixture: supervised service threads — the sanctioned entry point vs.
//! the `thread::Builder` bypass.

pub fn allowed_supervised_worker() {
    // The sanctioned form: named, panic-containing, lives in alem-par.
    let worker = alem_par::supervised::spawn("serve.accept", || 1u64).unwrap();
    let _ = worker.join();
}

pub fn forbidden_builder_bypass() {
    let h = std::thread::Builder::new() // flagged
        .name("sneaky".into())
        .spawn(|| ())
        .unwrap();
    let _ = h.join();
}

pub fn forbidden_raw_spawn() {
    std::thread::spawn(|| ()); // flagged
}

pub fn annotated_builder() {
    // alem-lint: allow(par-only-threads) -- fixture: demonstrating the escape hatch
    let _ = std::thread::Builder::new();
}
