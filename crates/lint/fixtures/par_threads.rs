//! Fixture: raw thread fan-out that must go through alem_par::Parallelism.

pub fn fan_out(xs: &[u64]) -> Vec<u64> {
    let handle = std::thread::spawn(|| 1u64); // flagged
    std::thread::scope(|s| {
        // flagged (the scope call above)
        s.spawn(|| ());
    });
    let _ = crossbeam::scope(|_| ()); // flagged
    let _ = handle;
    xs.to_vec()
}

pub fn watchdog() {
    // alem-lint: allow(par-only-threads) -- timer thread, never touches pool data
    std::thread::spawn(|| ());
}

pub fn benign(scope: u32) -> u32 {
    // A plain identifier named `scope`, and a spawn not rooted at
    // `thread::`/`crossbeam::`, are out of the rule's reach.
    tokio::spawn(async {});
    scope
}
