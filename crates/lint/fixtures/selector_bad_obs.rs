//! Fixture: a selector module with off-scheme telemetry names and no
//! `select.pairs_scored` registration.

pub fn select(obs: &Registry) {
    let span = obs.span("Selector.Score");
    obs.counter_add("margin.pairs", 1);
    span.finish();
}
