//! Panic-reach seeded bug: a pub entry point two hops from an `unwrap()`.

/// Doubles the payload; panics if absent (via the private chain below).
pub fn entry(x: &Option<u32>) -> u32 {
    crate::chain_mid::mid(x) * 2
}
