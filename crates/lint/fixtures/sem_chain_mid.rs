//! Private relay for the panic-reach fixture.

pub(crate) fn mid(x: &Option<u32>) -> u32 {
    deep(x)
}

fn deep(x: &Option<u32>) -> u32 {
    x.unwrap()
}
