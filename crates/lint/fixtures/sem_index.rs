//! Index-reach seeded bug: raw slice indexing on a pub orchestration API.

/// Reads pool slot `i` without a bounds check.
pub fn slot(pool: &[f64], i: usize) -> f64 {
    pool[i]
}
