//! Lock-order-cycle seeded bug: `corpora` → `fleets` on one path,
//! `fleets` → `corpora` on the other.

use std::sync::Mutex;

/// Two-lock holder.
pub struct LockOrder {
    /// First lock.
    corpora: Mutex<u32>,
    /// Second lock.
    fleets: Mutex<u32>,
}

impl LockOrder {
    /// Acquires `corpora` then `fleets`.
    pub fn forward(&self) -> u32 {
        let a = self.corpora.lock().unwrap();
        let b = self.fleets.lock().unwrap();
        *a + *b
    }

    /// Acquires `fleets` then `corpora` — the opposite order.
    pub fn backward(&self) -> u32 {
        let b = self.fleets.lock().unwrap();
        let a = self.corpora.lock().unwrap();
        *a + *b
    }
}
