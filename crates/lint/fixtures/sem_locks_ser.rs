//! Lock-discipline seeded bug: serialization while the registry lock is
//! held — the PR 6 regression class.

use std::sync::Mutex;

/// Session-registry double.
pub struct RegistryDump {
    /// Live sessions by name.
    sessions: Mutex<Vec<String>>,
}

impl RegistryDump {
    /// Renders the session table while still holding the lock.
    pub fn dump(&self) -> String {
        // alem-lint: allow(no-panic) -- fixture: poisoning is fatal by design
        let guard = self.sessions.lock().unwrap();
        render_rows(&guard)
    }
}

/// Joins rows into one line.
fn render_rows(rows: &[String]) -> String {
    rows.join("|")
}
