//! Determinism-taint seeded bug: a SessionMachine transition that pulls
//! ambient wall-clock jitter out of `alem_datagen`.

/// State-machine double (the real one lives in `session::machine`).
pub struct SessionMachine;

impl SessionMachine {
    /// Advances the machine by one step, seeded by ambient jitter.
    pub fn step(&mut self) -> u64 {
        alem_datagen::noise::jitter()
    }
}
