//! Ambient-jitter source for the determinism-taint fixture.

/// Milliseconds of ambient wall-clock state.
pub fn jitter() -> u64 {
    let now = std::time::SystemTime::now();
    now.elapsed().map(|d| d.as_millis() as u64).unwrap_or(0)
}
