//! Fixture: serve-crate telemetry drifting off the `serve.*` /
//! `checkpoint.*` families, plus a hard-coded trace id.

pub fn handle(obs: &Registry) {
    let span = obs.span("server.request"); // flagged: family typo
    obs.counter_add("serve.requests", 1);
    obs.counter_add("admin.metrics_calls", 1); // flagged: unknown family
    let _t = alem_obs::trace_scope(Some("hard-coded")); // flagged
    let _ok = alem_obs::trace_scope(req_trace.as_deref());
    let _cp = obs.span("checkpoint.write");
    span.finish();
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_names_are_exempt_in_tests() {
        let obs = Registry::enabled();
        obs.counter_add("x.scratch", 1);
        let _t = alem_obs::trace_scope(Some("test-trace"));
    }
}
