//! Lock discipline: what happens while a `Mutex`/`RwLock` guard is live.
//!
//! PR 6 fixed a real regression — Prometheus rendering serialized the
//! whole metrics registry *inside* the registry lock — by hand. This pass
//! mechanizes that review. Per function it reconstructs guard lifetimes
//! from the token stream:
//!
//! - `let g = x.lock()…;` → guard lives to the end of the enclosing
//!   block (or an explicit `drop(g)`);
//! - a mid-expression temporary (`f(&x.lock().unwrap())`) → guard lives
//!   to the end of the statement (Rust temporary-scope rules);
//! - `if let`/`while let`/`match` bindings → the guarded block.
//!
//! While a guard over a *declared lock field* (fleet `sessions`/
//! `corpora`, obs registry, session stores — any struct field typed
//! `Mutex<…>`/`RwLock<…>`) is live, the pass flags:
//!
//! 1. direct or transitive **I/O** (fs/net calls, `println!`-family) —
//!    via call-graph summaries with the full chain printed;
//! 2. direct or transitive **serialization** (`*json*`, `*serialize*`,
//!    `encode`, `render*`) — the PR 6 class;
//! 3. **same-class re-acquisition** (std/vendored `parking_lot` locks
//!    are non-reentrant: self-deadlock);
//! 4. **lock-order cycles**: nesting pairs `(outer, inner)` are
//!    collected workspace-wide and any pair on a directed cycle is
//!    flagged at its acquisition site.
//!
//! Consistently ordered nesting is recorded but not flagged — ordering,
//! not nesting, is the invariant. `fmt::Write`-style `write!` into
//! strings is deliberately not treated as I/O (indistinguishable from
//! `io::Write` without types); fs/net entry points are what block.

use super::{route_to, walk_route, Semantic};
use crate::rules::{Finding, Frame};
use std::collections::{BTreeMap, BTreeSet};

/// Path segments that mark a call as filesystem/network I/O.
const IO_PATH_HEADS: &[&str] = &[
    "File",
    "OpenOptions",
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "UnixListener",
    "UnixStream",
];

/// Method names that mark a call as I/O on a reader/writer.
const IO_METHODS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv_from",
    "send_to",
    "set_len",
    "sync_all",
    "sync_data",
    "write_all",
    "write_fmt",
];

/// Macros that write to stdio.
const IO_MACROS: &[&str] = &["print", "println", "eprint", "eprintln"];

/// A live guard region inside one symbol's body.
struct Guard {
    /// Lock class (receiver field/binding name).
    class: String,
    /// Byte offset of the `.lock()`/`.read()`/`.write()` call.
    offset: usize,
    /// Scan window `[start, end)` in which the guard is live.
    start: usize,
    end: usize,
    /// Receiver is a declared lock field (registry/fleet/session class).
    interesting: bool,
}

/// Run the lock-discipline analysis over the workspace graph.
pub fn run(sem: &Semantic) -> Vec<Finding> {
    let ws = &sem.ws;
    let passable = |s: usize| {
        let sym = &ws.symbols[s];
        sym.is_lib && !sym.is_test && sym.krate != "lint"
    };

    // Direct I/O and serialization sites per symbol (for summaries).
    let mut direct_io: BTreeMap<usize, (usize, String)> = BTreeMap::new();
    let mut direct_ser: BTreeMap<usize, (usize, String)> = BTreeMap::new();
    for sym in 0..ws.symbols.len() {
        if !passable(sym) {
            continue;
        }
        let file = ws.symbols[sym].file;
        for call in &ws.calls[sym] {
            let (line, _) = ws.files[file].lexed.position(call.offset);
            if sem.allowed(file, &["lock-discipline"], line) {
                continue;
            }
            if let Some(kind) = io_kind(call) {
                direct_io.entry(sym).or_insert((call.offset, kind));
            }
            if let Some(kind) = ser_kind(call) {
                direct_ser.entry(sym).or_insert((call.offset, kind));
            }
        }
    }
    let io_targets: Vec<usize> = direct_io.keys().copied().collect();
    let ser_targets: Vec<usize> = direct_ser.keys().copied().collect();
    let io_route = route_to(ws, &io_targets, &passable);
    let ser_route = route_to(ws, &ser_targets, &passable);

    // Transitive lock classes acquired by each symbol (fixed point).
    let direct_classes: Vec<BTreeSet<String>> = (0..ws.symbols.len())
        .map(|sym| {
            if !passable(sym) {
                return BTreeSet::new();
            }
            guard_scopes(sem, sym)
                .into_iter()
                .filter(|g| g.interesting)
                .map(|g| g.class)
                .collect()
        })
        .collect();
    let mut all_classes = direct_classes.clone();
    loop {
        let mut changed = false;
        for sym in 0..ws.symbols.len() {
            if !passable(sym) {
                continue;
            }
            for &(callee, _) in &ws.edges[sym] {
                if !passable(callee) {
                    continue;
                }
                let add: Vec<String> = all_classes[callee]
                    .difference(&all_classes[sym])
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    all_classes[sym].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    // Nesting pairs: (outer, inner) -> first acquisition site.
    let mut pairs: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();

    for sym in 0..ws.symbols.len() {
        if !passable(sym) {
            continue;
        }
        let file = ws.symbols[sym].file;
        let lexed = &ws.files[file].lexed;
        let guards = guard_scopes(sem, sym);
        for g in &guards {
            // 3. Same-class re-acquisition + 4. pair collection.
            for g2 in &guards {
                if g2.offset <= g.offset || g2.offset < g.start || g2.offset >= g.end {
                    continue;
                }
                if g2.class == g.class {
                    let (line, col) = lexed.position(g2.offset);
                    if !sem.allowed(file, &["lock-discipline"], line) {
                        findings.push(relock_finding(sem, sym, &g.class, line, col));
                    }
                } else if g.interesting && g2.interesting {
                    pairs
                        .entry((g.class.clone(), g2.class.clone()))
                        .or_insert((sym, g2.offset));
                }
            }
            if !g.interesting {
                continue;
            }
            // 1./2. Direct and transitive I/O or serialization under guard.
            for call in &ws.calls[sym] {
                if call.offset < g.start || call.offset >= g.end || call.offset == g.offset {
                    continue;
                }
                let (line, col) = lexed.position(call.offset);
                if sem.allowed(file, &["lock-discipline"], line) {
                    continue;
                }
                if let Some(kind) = io_kind(call) {
                    findings.push(under_lock_finding(
                        sem, sym, g, line, col, "I/O", None, &kind,
                    ));
                } else if let Some(kind) = ser_kind(call) {
                    findings.push(under_lock_finding(
                        sem,
                        sym,
                        g,
                        line,
                        col,
                        "serialization",
                        None,
                        &kind,
                    ));
                }
            }
            for &(callee, offset) in &ws.edges[sym] {
                if offset < g.start || offset >= g.end || offset == g.offset {
                    continue;
                }
                let (line, col) = lexed.position(offset);
                if sem.allowed(file, &["lock-discipline"], line) {
                    continue;
                }
                if io_route[callee].is_some() {
                    let path = walk_route(&io_route, callee);
                    let terminal = *path.last().expect("non-empty route");
                    let (t_off, kind) = direct_io[&terminal].clone();
                    findings.push(under_lock_finding(
                        sem,
                        sym,
                        g,
                        line,
                        col,
                        "I/O",
                        Some((&path, t_off)),
                        &kind,
                    ));
                }
                if ser_route[callee].is_some() {
                    let path = walk_route(&ser_route, callee);
                    let terminal = *path.last().expect("non-empty route");
                    let (t_off, kind) = direct_ser[&terminal].clone();
                    findings.push(under_lock_finding(
                        sem,
                        sym,
                        g,
                        line,
                        col,
                        "serialization",
                        Some((&path, t_off)),
                        &kind,
                    ));
                }
                // Transitive same-class re-acquisition: self-deadlock.
                if all_classes[callee].contains(&g.class) {
                    findings.push(under_lock_finding(
                        sem,
                        sym,
                        g,
                        line,
                        col,
                        "re-acquisition of",
                        None,
                        &format!("callee acquires `{}`", g.class),
                    ));
                }
            }
        }
    }

    // 4. Lock-order cycles over the collected pair digraph.
    let classes: BTreeSet<&String> = pairs.keys().flat_map(|(a, b)| [a, b]).collect();
    for ((outer, inner), &(sym, offset)) in &pairs {
        if !reaches(&pairs, inner, outer, classes.len()) {
            continue;
        }
        let file = ws.symbols[sym].file;
        let (line, col) = ws.files[file].lexed.position(offset);
        if sem.allowed(file, &["lock-discipline"], line) {
            continue;
        }
        let message = format!(
            "lock-order cycle: `{inner}` acquired while `{outer}` is held in `{}`, \
             but the opposite order exists elsewhere in the workspace",
            ws.symbols[sym].display
        );
        let mut frame = sem.frame(sym, &format!("{outer} -> {inner}"));
        frame.line = line;
        findings.push(
            Finding::new(
                "lock-discipline",
                ws.file_of(sym).rel.clone(),
                line,
                col,
                message,
            )
            .with_chain(vec![frame]),
        );
    }

    findings
}

/// `inner` can reach `outer` through recorded nesting pairs.
fn reaches(
    pairs: &BTreeMap<(String, String), (usize, usize)>,
    from: &str,
    to: &str,
    bound: usize,
) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(cur) = stack.pop() {
        if cur == to {
            return true;
        }
        if !seen.insert(cur) || seen.len() > bound + 1 {
            continue;
        }
        for (a, b) in pairs.keys() {
            if a == cur {
                stack.push(b);
            }
        }
    }
    false
}

fn relock_finding(sem: &Semantic, sym: usize, class: &str, line: usize, col: usize) -> Finding {
    let ws = &sem.ws;
    let message = format!(
        "lock `{class}` re-acquired in `{}` while already held (non-reentrant: self-deadlock)",
        ws.symbols[sym].display
    );
    let mut frame = sem.frame(sym, &format!("re-lock `{class}`"));
    frame.line = line;
    Finding::new(
        "lock-discipline",
        ws.file_of(sym).rel.clone(),
        line,
        col,
        message,
    )
    .with_chain(vec![frame])
}

/// Build an "X under lock" finding, with the transitive chain if any.
#[allow(clippy::too_many_arguments)]
fn under_lock_finding(
    sem: &Semantic,
    sym: usize,
    g: &Guard,
    line: usize,
    col: usize,
    what: &str,
    via: Option<(&[usize], usize)>,
    kind: &str,
) -> Finding {
    let ws = &sem.ws;
    let mut chain: Vec<Frame> = Vec::new();
    let mut holder = sem.frame(sym, &format!("holds `{}`", g.class));
    holder.line = line;
    chain.push(holder);
    if let Some((path, t_off)) = via {
        for &s in path {
            chain.push(sem.frame(s, ""));
        }
        let last = chain.last_mut().expect("non-empty chain");
        let terminal = *path.last().expect("non-empty route");
        let (t_line, _) = ws.file_of(terminal).lexed.position(t_off);
        last.line = t_line;
        last.note = kind.to_string();
    } else {
        chain[0].note = format!("holds `{}`; {kind}", g.class);
    }
    let chain_text = chain
        .iter()
        .map(|f| f.symbol.as_str())
        .collect::<Vec<_>>()
        .join(" -> ");
    let message = format!(
        "{what} `{kind}` while `{}` lock is held: {chain_text}",
        g.class
    );
    Finding::new(
        "lock-discipline",
        ws.file_of(sym).rel.clone(),
        line,
        col,
        message,
    )
    .with_chain(chain)
}

/// Classify a call site as I/O.
fn io_kind(call: &crate::graph::CallSite) -> Option<String> {
    let last = call.segs.last()?.as_str();
    if call.is_macro {
        return IO_MACROS
            .contains(&last)
            .then(|| format!("{last}! to stdio"));
    }
    if call.method {
        return IO_METHODS.contains(&last).then(|| last.to_string());
    }
    if call.segs.iter().any(|s| s == "fs") {
        return Some(format!("fs::{last}"));
    }
    if call
        .segs
        .first()
        .is_some_and(|s| IO_PATH_HEADS.contains(&s.as_str()))
        || (call.segs.len() >= 2
            && IO_PATH_HEADS.contains(&call.segs[call.segs.len() - 2].as_str()))
    {
        return Some(call.segs.join("::"));
    }
    None
}

/// Classify a call site as serialization work.
fn ser_kind(call: &crate::graph::CallSite) -> Option<String> {
    if call.is_macro {
        return None;
    }
    let last = call.segs.last()?.as_str();
    let is_ser = last.contains("json")
        || last.contains("serialize")
        || last == "encode"
        || last.starts_with("render");
    is_ser.then(|| last.to_string())
}

/// Reconstruct guard regions for one symbol.
fn guard_scopes(sem: &Semantic, sym: usize) -> Vec<Guard> {
    let ws = &sem.ws;
    let file = ws.symbols[sym].file;
    let code = &ws.files[file].lexed.code;
    let bytes = code.as_bytes();
    let Some((_, body_end)) = ws.item_of(sym).body else {
        return Vec::new();
    };
    let mut guards = Vec::new();
    for call in &ws.calls[sym] {
        if !call.method || call.segs.len() != 1 {
            continue;
        }
        let name = call.segs[0].as_str();
        if name != "lock" && name != "read" && name != "write" {
            continue;
        }
        // Empty-arg call: `.lock()` / `.read()` / `.write()`; `write(buf)`
        // is io::Write, not a lock.
        let Some(open) = code[call.offset..].find('(').map(|i| call.offset + i) else {
            continue;
        };
        let after_open = next_nonspace(bytes, open + 1);
        if after_open.map(|(b, _)| b) != Some(b')') {
            continue;
        }
        let Some(class) = receiver_class(code, call.offset) else {
            continue;
        };
        let interesting = ws.lock_fields.contains(&class);
        // `.read()`/`.write()` only count on declared lock fields; `.lock()`
        // always counts (no std collision).
        if name != "lock" && !interesting {
            continue;
        }
        let eoc = chain_end(bytes, open, body_end);
        let (start, end) = guard_window(bytes, call.offset, eoc, body_end);
        guards.push(Guard {
            class,
            offset: call.offset,
            start,
            end,
            interesting,
        });
    }
    guards
}

/// Last identifier of the receiver chain before `.lock`.
fn receiver_class(code: &str, method_offset: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let (dot, di) = prev_nonspace(bytes, method_offset)?;
    if dot != b'.' {
        return None;
    }
    let (mut b, mut i) = prev_nonspace(bytes, di)?;
    if b == b')' || b == b']' {
        // Balance back over a call/index, then name the thing before it.
        let close = if b == b')' { b')' } else { b']' };
        let open = if b == b')' { b'(' } else { b'[' };
        let mut depth = 0i32;
        loop {
            if bytes[i] == close {
                depth += 1;
            } else if bytes[i] == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
        (b, i) = prev_nonspace(bytes, i)?;
    }
    if !(b.is_ascii_alphanumeric() || b == b'_') {
        return None;
    }
    let start = bytes[..=i]
        .iter()
        .rposition(|c| !(c.is_ascii_alphanumeric() || *c == b'_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    let word = &code[start..=i];
    if word.is_empty() || word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(word.to_string())
}

/// End of the guard-producing expression: past the `.lock()` call and any
/// `.unwrap()`/`.expect(…)`/`?` tail.
fn chain_end(bytes: &[u8], open: usize, bound: usize) -> usize {
    let mut i = match_paren(bytes, open, bound);
    loop {
        let Some((b, p)) = next_nonspace(bytes, i) else {
            return i;
        };
        if b == b'?' {
            i = p + 1;
            continue;
        }
        if b != b'.' {
            return i;
        }
        let Some((w, ws_)) = next_nonspace(bytes, p + 1) else {
            return i;
        };
        if !(w.is_ascii_alphabetic() || w == b'_') {
            return i;
        }
        let mut j = ws_;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        let name = &bytes[ws_..j];
        if name != b"unwrap" && name != b"expect" {
            return i;
        }
        let Some((op, oi)) = next_nonspace(bytes, j) else {
            return i;
        };
        if op != b'(' {
            return i;
        }
        i = match_paren(bytes, oi, bound);
    }
}

/// Offset just past the `)` matching the `(` at `open`.
fn match_paren(bytes: &[u8], open: usize, bound: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < bound.min(bytes.len()) {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Compute the `[start, end)` window in which the guard is live.
fn guard_window(bytes: &[u8], lock_offset: usize, eoc: usize, body_end: usize) -> (usize, usize) {
    let stmt_start = bytes[..lock_offset]
        .iter()
        .rposition(|b| matches!(b, b';' | b'{' | b'}'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let head: Vec<&[u8]> = split_words(&bytes[stmt_start..lock_offset]);
    let first = head.first().copied().unwrap_or(b"");
    let is_let = first == b"let";
    let is_cond = first == b"if" || first == b"while" || first == b"match";
    let next = next_nonspace(bytes, eoc).map(|(b, _)| b);

    if is_cond {
        // Guard lives for the guarded block.
        let Some(open) = (eoc..body_end.min(bytes.len())).find(|&i| bytes[i] == b'{') else {
            return (stmt_start, stmt_end(bytes, eoc, body_end));
        };
        return (eoc, match_brace_fwd(bytes, open, body_end));
    }
    if is_let && next == Some(b';') {
        // Bound guard: block scope, cut short by `drop(binding)`.
        let end = block_end(bytes, eoc, body_end);
        let binding = let_binding(&head);
        if let Some(name) = binding {
            if let Some(d) = find_drop(bytes, eoc, end, name) {
                return (eoc, d);
            }
        }
        return (eoc, end);
    }
    // Temporary: live for the whole enclosing statement, including the
    // expression text before the lock call (`f(&x.lock())`).
    (stmt_start, stmt_end(bytes, eoc, body_end))
}

/// The binding identifier of `let [mut] name = …`, if simple.
fn let_binding<'a>(head: &[&'a [u8]]) -> Option<&'a [u8]> {
    let mut it = head.iter().skip(1);
    let mut w = *it.next()?;
    if w == b"mut" {
        w = *it.next()?;
    }
    let simple = !w.is_empty()
        && w.iter().all(|b| b.is_ascii_alphanumeric() || *b == b'_')
        && !w[0].is_ascii_digit();
    simple.then_some(w)
}

/// First `drop(name)` at or after `from`, before `to`.
fn find_drop(bytes: &[u8], from: usize, to: usize, name: &[u8]) -> Option<usize> {
    let hay = &bytes[from..to.min(bytes.len())];
    let mut i = 0;
    while i + 5 < hay.len() {
        if &hay[i..i + 5] == b"drop("
            && (i == 0 || !(hay[i - 1].is_ascii_alphanumeric() || hay[i - 1] == b'_'))
        {
            let mut j = i + 5;
            while j < hay.len() && hay[j].is_ascii_whitespace() {
                j += 1;
            }
            if hay[j..].starts_with(name) {
                let k = j + name.len();
                let mut k2 = k;
                while k2 < hay.len() && hay[k2].is_ascii_whitespace() {
                    k2 += 1;
                }
                if hay.get(k2) == Some(&b')')
                    && !hay
                        .get(k)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                {
                    return Some(from + i);
                }
            }
        }
        i += 1;
    }
    None
}

/// Whitespace-split words of a byte slice.
fn split_words(bytes: &[u8]) -> Vec<&[u8]> {
    bytes
        .split(|b| b.is_ascii_whitespace())
        .filter(|w| !w.is_empty())
        .collect()
}

/// End of the enclosing block: first `}` taking brace depth negative.
fn block_end(bytes: &[u8], from: usize, bound: usize) -> usize {
    let mut depth = 0i32;
    let end = bound.min(bytes.len());
    for (i, b) in bytes[..end].iter().enumerate().skip(from) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    bound.min(bytes.len())
}

/// Offset past the `}` matching the `{` at `open`.
fn match_brace_fwd(bytes: &[u8], open: usize, bound: usize) -> usize {
    let mut depth = 0i32;
    let end = bound.min(bytes.len());
    for (i, b) in bytes[..end].iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    bound.min(bytes.len())
}

/// End of the enclosing statement: first `;` at non-positive depth, or
/// the end of the enclosing block.
fn stmt_end(bytes: &[u8], from: usize, bound: usize) -> usize {
    let mut paren = 0i32;
    let mut brace = 0i32;
    let end = bound.min(bytes.len());
    for (i, b) in bytes[..end].iter().enumerate().skip(from) {
        match b {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'{' => brace += 1,
            b'}' => {
                brace -= 1;
                if brace < 0 {
                    return i;
                }
            }
            b';' if paren <= 0 && brace <= 0 => return i + 1,
            _ => {}
        }
    }
    bound.min(bytes.len())
}

/// First non-whitespace byte at or after `i`.
fn next_nonspace(bytes: &[u8], i: usize) -> Option<(u8, usize)> {
    (i..bytes.len())
        .find(|&j| !bytes[j].is_ascii_whitespace())
        .map(|j| (bytes[j], j))
}

/// Last non-whitespace byte before `i`.
fn prev_nonspace(bytes: &[u8], i: usize) -> Option<(u8, usize)> {
    bytes[..i]
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map(|j| (bytes[j], j))
}
