//! The interprocedural analyses: panic-reachability, determinism taint,
//! and lock discipline.
//!
//! The lexical rules (PR 3) police single lines; these passes police
//! *paths*. They share one substrate — [`crate::parse`] items assembled
//! into a [`crate::graph::Workspace`] call graph — and one reporting
//! convention: every finding carries the full call chain (or taint path)
//! from the anchor symbol to the offending site, both in the rendered
//! message (`a::f -> b::g -> h: unwrap`) and as structured
//! [`Frame`](crate::rules::Frame)s in `--json`.
//!
//! Suppression reuses the `// alem-lint: allow(rule) -- reason` grammar
//! at the *source* site (a vetted `unwrap` stops being a panic source for
//! every path through it) and at the *anchor* site (a vetted sink or
//! guard region). Pre-existing findings land in the committed baseline
//! (see [`crate::baseline`]) so enforcement only bites on regressions.

pub mod locks;
pub mod panic_reach;
pub mod taint;

use crate::graph::{self, Workspace};
use crate::parse::{parse_file, ParsedFile};
use crate::rules::{parse_allows, Allows, Finding, Frame};

/// Crates the semantic passes never traverse into: `obs` is exempt from
/// panic/taint analysis by the same rationale as the lexical `no-panic`
/// exemption (Mutex-poisoning idiom; telemetry never feeds fingerprints),
/// and the linter does not analyze itself.
const TRAVERSAL_EXEMPT: &[&str] = &["obs", "lint"];

/// The workspace graph plus per-file allow annotations.
pub struct Semantic {
    /// The parsed workspace and call graph.
    pub ws: Workspace,
    /// Per-file allow annotations, parallel to `ws.files`.
    pub(crate) allows: Vec<Allows>,
}

impl Semantic {
    /// Whether any of `rules` is allow-annotated at `line` of `file`.
    pub fn allowed(&self, file: usize, rules: &[&str], line: usize) -> bool {
        rules.iter().any(|r| self.allows[file].covers(r, line))
    }

    /// Whether a symbol participates in interprocedural traversal:
    /// library code, outside `#[cfg(test)]`, in a non-exempt crate.
    pub fn traversable(&self, sym: usize) -> bool {
        let s = &self.ws.symbols[sym];
        s.is_lib && !s.is_test && !TRAVERSAL_EXEMPT.contains(&s.krate.as_str())
    }

    /// Build a chain [`Frame`] for a symbol, with an optional note.
    pub fn frame(&self, sym: usize, note: &str) -> Frame {
        let (line, _) = self.ws.position_of(sym);
        Frame {
            symbol: self.ws.symbols[sym].display.clone(),
            path: self.ws.file_of(sym).rel.clone(),
            line,
            note: note.to_string(),
        }
    }
}

/// Parse and analyze a set of in-memory files. `files` are
/// `(workspace-relative path, source)` pairs — the entry point the
/// fixture tests and the workspace driver share.
pub fn analyze_files(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    analyze(graph::build(parsed))
}

/// Run all three analyses over a built workspace graph.
pub fn analyze(ws: Workspace) -> Vec<Finding> {
    let allows: Vec<Allows> = ws.files.iter().map(|f| parse_allows(&f.lexed)).collect();
    let sem = Semantic { ws, allows };
    let mut findings = Vec::new();
    findings.extend(panic_reach::run(&sem));
    findings.extend(taint::run(&sem));
    findings.extend(locks::run(&sem));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
    findings.dedup_by(|a, b| (&a.path, a.line, a.col, a.rule) == (&b.path, b.line, b.col, b.rule));
    findings
}

/// Multi-target shortest-hop routing: for every symbol, the next hop on a
/// shortest path (by call depth) to any of `targets`, traversing only
/// `passable` symbols. Returns `route[sym]`:
///
/// - `None` — no target reachable;
/// - `Some(None)` — `sym` is itself a target;
/// - `Some(Some(next))` — first hop of a shortest path.
///
/// Deterministic: BFS layers expand in sorted symbol order, so ties break
/// toward the lowest symbol id (stable across runs).
pub(crate) fn route_to(
    ws: &Workspace,
    targets: &[usize],
    passable: &dyn Fn(usize) -> bool,
) -> Vec<Option<Option<usize>>> {
    let n = ws.symbols.len();
    // Reverse adjacency: rev[callee] = callers.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, edges) in ws.edges.iter().enumerate() {
        for (callee, _) in edges {
            rev[*callee].push(caller);
        }
    }
    for r in &mut rev {
        r.sort_unstable();
        r.dedup();
    }
    let mut route: Vec<Option<Option<usize>>> = vec![None; n];
    let mut frontier: Vec<usize> = targets.to_vec();
    frontier.sort_unstable();
    frontier.dedup();
    for &t in &frontier {
        route[t] = Some(None);
    }
    while !frontier.is_empty() {
        let mut next_frontier = Vec::new();
        for &cur in &frontier {
            for &caller in &rev[cur] {
                if route[caller].is_none() && passable(caller) {
                    route[caller] = Some(Some(cur));
                    next_frontier.push(caller);
                }
            }
        }
        next_frontier.sort_unstable();
        next_frontier.dedup();
        frontier = next_frontier;
    }
    route
}

/// Follow a [`route_to`] table from `start` to the terminal target.
pub(crate) fn walk_route(route: &[Option<Option<usize>>], start: usize) -> Vec<usize> {
    let mut path = vec![start];
    let mut cur = start;
    while let Some(Some(next)) = route[cur] {
        path.push(next);
        cur = next;
        if path.len() > route.len() {
            break; // cycle guard; cannot happen with BFS trees
        }
    }
    path
}
