//! Panic-reachability: every `pub` item in library crates is checked for
//! a transitive path to a panicking construct, with the offending call
//! chain printed in the diagnostic.
//!
//! Two rules share the machinery:
//!
//! - `panic-reach` — explicit panics: `.unwrap()`, `.expect(…)`,
//!   `panic!`, `unreachable!`, `todo!`, `unimplemented!`. Source and
//!   root scope is every library crate except the exempt ones
//!   (`obs`, `lint`) — this widens the lexical `no-panic` crate list to
//!   `par`, `serve`, and `bench`, whose panics are reachable from the
//!   serve fleet and the benchmark harness.
//! - `index-reach` — unchecked slice/array indexing `expr[i]`. Indexing
//!   is the *sanctioned* bounds idiom inside the numeric kernels
//!   (`linalg`, `mlcore`, `textsim`, and the flat feature store's inner
//!   loops), so sources are only counted in the orchestration crates
//!   `core`, `datagen`, `par`, `serve`, where an out-of-bounds access
//!   means a logic bug rather than a vetted hot loop.
//!
//! A site annotated `// alem-lint: allow(panic-reach) -- reason` (or the
//! lexical `no-panic`, which vets the same construct) stops being a
//! source for every path through it.

use super::{route_to, walk_route, Semantic};
use crate::rules::Finding;
use std::collections::BTreeMap;

/// Crates whose `pub` items must not reach an explicit panic.
const PANIC_CRATES: &[&str] = &[
    "bench", "block", "core", "datagen", "linalg", "mlcore", "par", "serve", "textsim",
];

/// Crates where raw slice indexing counts as a panic source.
const INDEX_CRATES: &[&str] = &["block", "core", "datagen", "par", "serve"];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keyword-adjacent `[` is an array literal/type, not indexing.
const NONINDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];

/// A direct panic source inside one symbol's body.
struct Source {
    /// Byte offset of the construct.
    offset: usize,
    /// Human label: `unwrap`, `panic!`, `slice index […]`.
    kind: String,
}

/// Run both reachability rules over the workspace graph.
pub fn run(sem: &Semantic) -> Vec<Finding> {
    let ws = &sem.ws;
    let mut findings = Vec::new();

    // Direct sources per symbol, for each rule.
    let mut panic_sources: BTreeMap<usize, Source> = BTreeMap::new();
    let mut index_sources: BTreeMap<usize, Source> = BTreeMap::new();
    for sym in 0..ws.symbols.len() {
        if !sem.traversable(sym) {
            continue;
        }
        let krate = ws.symbols[sym].krate.clone();
        let file = ws.symbols[sym].file;
        let lexed = &ws.files[file].lexed;
        if PANIC_CRATES.contains(&krate.as_str()) {
            for call in &ws.calls[sym] {
                let kind = if call.is_macro && PANIC_MACROS.contains(&call.segs[0].as_str()) {
                    format!("{}!", call.segs[0])
                } else if call.method && (call.segs[0] == "unwrap" || call.segs[0] == "expect") {
                    call.segs[0].clone()
                } else {
                    continue;
                };
                let (line, _) = lexed.position(call.offset);
                if sem.allowed(file, &["panic-reach", "no-panic"], line) {
                    continue;
                }
                panic_sources.entry(sym).or_insert(Source {
                    offset: call.offset,
                    kind,
                });
                break;
            }
        }
        if INDEX_CRATES.contains(&krate.as_str()) {
            if let Some(offset) = first_index_site(sem, sym) {
                index_sources.insert(
                    sym,
                    Source {
                        offset,
                        kind: "slice index".to_string(),
                    },
                );
            }
        }
    }

    findings.extend(report(sem, "panic-reach", PANIC_CRATES, &panic_sources));
    findings.extend(report(sem, "index-reach", INDEX_CRATES, &index_sources));
    findings
}

/// BFS from every in-scope `pub` root toward the source set; one finding
/// per root, carrying the shortest chain.
fn report(
    sem: &Semantic,
    rule: &'static str,
    root_crates: &[&str],
    sources: &BTreeMap<usize, Source>,
) -> Vec<Finding> {
    let ws = &sem.ws;
    let targets: Vec<usize> = sources.keys().copied().collect();
    let route = route_to(ws, &targets, &|s| sem.traversable(s));
    let mut findings = Vec::new();
    for root in 0..ws.symbols.len() {
        let s = &ws.symbols[root];
        if !s.is_pub || !sem.traversable(root) || !root_crates.contains(&s.krate.as_str()) {
            continue;
        }
        if route[root].is_none() {
            continue;
        }
        let path = walk_route(&route, root);
        let terminal = *path.last().expect("path starts at root");
        let src = &sources[&terminal];
        let (line, col) = ws.position_of(root);
        let file = s.file;
        if sem.allowed(file, &[rule], line) {
            continue;
        }
        let mut chain: Vec<_> = path.iter().map(|&sym| sem.frame(sym, "")).collect();
        let last = chain.last_mut().expect("non-empty chain");
        let (src_line, _) = ws.file_of(terminal).lexed.position(src.offset);
        last.line = src_line;
        last.note = src.kind.clone();
        let chain_text = chain
            .iter()
            .map(|f| f.symbol.as_str())
            .collect::<Vec<_>>()
            .join(" -> ");
        let what = if rule == "panic-reach" {
            "a panic"
        } else {
            "an unchecked slice index"
        };
        let message = format!(
            "pub API `{}` can reach {what}: {chain_text}: {}",
            s.display, src.kind
        );
        findings.push(
            Finding::new(rule, ws.file_of(root).rel.clone(), line, col, message).with_chain(chain),
        );
    }
    findings
}

/// First raw-indexing site in a symbol's body, if any (allow-annotated
/// lines excluded).
fn first_index_site(sem: &Semantic, sym: usize) -> Option<usize> {
    let ws = &sem.ws;
    let file_idx = ws.symbols[sym].file;
    let lexed = &ws.files[file_idx].lexed;
    let bytes = lexed.code.as_bytes();
    for (start, end) in ws.body_regions(sym) {
        for i in start..end.min(bytes.len()) {
            if bytes[i] != b'[' {
                continue;
            }
            let Some(p) = bytes[..i].iter().rposition(|b| !b.is_ascii_whitespace()) else {
                continue;
            };
            let prev = bytes[p];
            let indexable =
                prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
            if !indexable {
                continue;
            }
            // `return […]`, `in [...]` etc. are literals, not indexing.
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                let ws_start = bytes[..=p]
                    .iter()
                    .rposition(|b| !(b.is_ascii_alphanumeric() || *b == b'_'))
                    .map(|q| q + 1)
                    .unwrap_or(0);
                let word = &lexed.code[ws_start..=p];
                if NONINDEX_KEYWORDS.contains(&word) {
                    continue;
                }
            }
            let (line, _) = lexed.position(i);
            if sem.allowed(file_idx, &["index-reach"], line) {
                continue;
            }
            return Some(i);
        }
    }
    None
}
