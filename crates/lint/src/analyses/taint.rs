//! Determinism taint: nondeterminism sources propagated along the call
//! graph into fingerprint-relevant sinks.
//!
//! The benchmark's comparability claim rests on byte-identical
//! fingerprints for a given `(strategy, dataset, seed, thread-count)`
//! tuple. Anything that can observe ambient machine state — the OS RNG,
//! wall clocks, `HashMap`/`HashSet` iteration order, thread identity,
//! `Relaxed` atomic loads — is a taint **source**; the functions whose
//! output lands in a fingerprint, a checkpoint, or a selector decision
//! are **sinks**. A sink that can transitively call a source-containing
//! function gets one `determinism-taint` finding carrying the full taint
//! path (`sink -> … -> source: kind`).
//!
//! This is call-graph reachability, not value-level dataflow: a spurious
//! path costs an annotated review (`allow(determinism-taint) -- reason`),
//! a missed one costs a silently diverging fingerprint. Sources covered
//! by the lexical determinism rules honor those rules' allow annotations
//! too, so a site vetted once stays vetted for both layers.

use super::{route_to, walk_route, Semantic};
use crate::rules::Finding;
use std::collections::BTreeMap;

/// Crates where hash-container iteration counts as a source; elsewhere
/// hash containers are membership-only by convention (lexical rule
/// `determinism-hash-iter` polices `core` line-by-line).
const HASH_SOURCE_CRATES: &[&str] = &["core", "datagen"];

/// Identifiers that read ambient machine state.
const AMBIENT_IDENTS: &[(&str, &str, &str)] = &[
    ("thread_rng", "ambient rng", "determinism-rng"),
    ("from_entropy", "ambient rng", "determinism-rng"),
    ("ThreadRng", "ambient rng", "determinism-rng"),
    ("OsRng", "ambient rng", "determinism-rng"),
    ("SystemTime", "wall clock", "determinism-rng"),
    ("Instant", "wall clock", "determinism-time"),
    ("ThreadId", "thread id", "determinism-taint"),
    ("HashMap", "hash iteration order", "determinism-hash-iter"),
    ("HashSet", "hash iteration order", "determinism-hash-iter"),
];

/// A fingerprint-relevant sink and why it matters.
fn sink_kind(sem: &Semantic, sym: usize) -> Option<&'static str> {
    let s = &sem.ws.symbols[sym];
    let item = sem.ws.item_of(sym);
    if s.name == "deterministic_fingerprint" {
        return Some("fingerprint");
    }
    if s.name == "score_pool" && item.impl_type.is_some() {
        return Some("Strategy::score_pool impl");
    }
    if s.name == "save_checkpoint" || s.name == "write_checkpoint" {
        return Some("checkpoint write");
    }
    if item.impl_type.as_deref() == Some("SessionMachine") {
        return Some("SessionMachine transition");
    }
    None
}

/// Run the determinism-taint analysis over the workspace graph.
pub fn run(sem: &Semantic) -> Vec<Finding> {
    let ws = &sem.ws;

    // Direct sources per symbol: (offset, kind).
    let mut sources: BTreeMap<usize, (usize, String)> = BTreeMap::new();
    for sym in 0..ws.symbols.len() {
        if !sem.traversable(sym) {
            continue;
        }
        let krate = ws.symbols[sym].krate.clone();
        let file = ws.symbols[sym].file;
        let code = ws.files[file].lexed.code.clone();
        let mut found: Option<(usize, String)> = None;
        for (word, offset) in idents_in(&code, &ws.body_regions(sym)) {
            let kind = classify_source(&code, word, offset, &krate);
            let Some((kind, lexical_rule)) = kind else {
                continue;
            };
            let (line, _) = ws.files[file].lexed.position(offset);
            if sem.allowed(file, &["determinism-taint", lexical_rule], line) {
                continue;
            }
            found = Some((offset, kind.to_string()));
            break;
        }
        if let Some(f) = found {
            sources.insert(sym, f);
        }
    }

    let targets: Vec<usize> = sources.keys().copied().collect();
    let route = route_to(ws, &targets, &|s| sem.traversable(s));

    let mut findings = Vec::new();
    for sink in 0..ws.symbols.len() {
        if !sem.traversable(sink) {
            continue;
        }
        let Some(kind) = sink_kind(sem, sink) else {
            continue;
        };
        if route[sink].is_none() {
            continue;
        }
        let path = walk_route(&route, sink);
        let terminal = *path.last().expect("path starts at sink");
        let (src_offset, src_kind) = &sources[&terminal];
        let (line, col) = ws.position_of(sink);
        if sem.allowed(ws.symbols[sink].file, &["determinism-taint"], line) {
            continue;
        }
        let mut chain: Vec<_> = path.iter().map(|&s| sem.frame(s, "")).collect();
        let last = chain.last_mut().expect("non-empty chain");
        let (src_line, _) = ws.file_of(terminal).lexed.position(*src_offset);
        last.line = src_line;
        last.note = src_kind.clone();
        let chain_text = chain
            .iter()
            .map(|f| f.symbol.as_str())
            .collect::<Vec<_>>()
            .join(" -> ");
        let message = format!(
            "nondeterminism can reach {kind} `{}`: {chain_text}: {src_kind}",
            ws.symbols[sink].display
        );
        findings.push(
            Finding::new(
                "determinism-taint",
                ws.file_of(sink).rel.clone(),
                line,
                col,
                message,
            )
            .with_chain(chain),
        );
    }
    findings
}

/// Classify one identifier occurrence as a taint source.
fn classify_source(
    code: &str,
    word: &str,
    offset: usize,
    krate: &str,
) -> Option<(&'static str, &'static str)> {
    for (ident, kind, rule) in AMBIENT_IDENTS {
        if word == *ident {
            if *kind == "hash iteration order" && !HASH_SOURCE_CRATES.contains(&krate) {
                return None;
            }
            return Some((kind, rule));
        }
    }
    if word == "current" && code[..offset].ends_with("thread::") {
        return Some(("thread id", "determinism-taint"));
    }
    if word == "Relaxed" {
        let pre = &code[..offset];
        if let Some(mut t) = pre.strip_suffix("Ordering::") {
            // Peel any `std::sync::atomic::` path prefix before `Ordering`.
            loop {
                let mut changed = false;
                for p in ["atomic::", "sync::", "std::", "core::"] {
                    if let Some(rest) = t.strip_suffix(p) {
                        t = rest;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if t.trim_end().ends_with("load(") {
                return Some(("relaxed atomic load", "determinism-taint"));
            }
        }
    }
    None
}

/// All identifier occurrences in the given byte regions.
fn idents_in<'a>(code: &'a str, regions: &[(usize, usize)]) -> Vec<(&'a str, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for &(start, end) in regions {
        let mut i = start;
        while i < end.min(bytes.len()) {
            let b = bytes[i];
            let head = b.is_ascii_alphabetic() || b == b'_';
            if !head || (i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')) {
                i += 1;
                continue;
            }
            let s = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((&code[s..i], s));
        }
    }
    out
}
