//! Committed finding baseline.
//!
//! The semantic analyses surface pre-existing findings the moment they
//! land; fixing every one in the same change as the analyzer would bury
//! the analyzer diff. The baseline separates the two: findings whose
//! *key* appears in the committed `lint-baseline.json` are counted but
//! not reported, so CI gates on **new** findings only while the baseline
//! is burned down in follow-up changes.
//!
//! Keys are built from the rule plus the chain's endpoint symbols and
//! note — never line numbers — so unrelated edits (or moving a function
//! within a file) do not invalidate the baseline; renaming or genuinely
//! changing a flagged path does, which is exactly when re-review is due.

use crate::rules::Finding;
use std::collections::BTreeSet;

/// Baseline file name, resolved relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Schema version of the baseline file format.
pub const SCHEMA_VERSION: u32 = 2;

/// The stable identity of a finding, independent of source positions.
pub fn key(f: &Finding) -> String {
    let anchor = f
        .chain
        .first()
        .map(|fr| fr.symbol.as_str())
        .unwrap_or(f.path.as_str());
    let terminal = f.chain.last().map(|fr| fr.symbol.as_str()).unwrap_or("");
    let note = f.chain.last().map(|fr| fr.note.as_str()).unwrap_or("");
    format!("{}|{anchor}|{terminal}|{note}", f.rule)
}

/// Parse a baseline file into its key set. Tolerant by construction: the
/// format is a JSON object whose `"findings"` array holds key strings,
/// and anything unparseable yields the empty set (reported upstream as
/// "no baseline").
pub fn parse(src: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let Some(arr_start) = src
        .find("\"findings\"")
        .and_then(|i| src[i..].find('[').map(|j| i + j + 1))
    else {
        return keys;
    };
    let bytes = src.as_bytes();
    let mut i = arr_start;
    while i < bytes.len() && bytes[i] != b']' {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let mut s = String::new();
        i += 1;
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' && i + 1 < bytes.len() {
                let esc = bytes[i + 1];
                s.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    other => other as char,
                });
                i += 2;
            } else {
                s.push(bytes[i] as char);
                i += 1;
            }
        }
        i += 1;
        keys.insert(s);
    }
    keys
}

/// Render a key set as the committed baseline file.
pub fn render(keys: &BTreeSet<String>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str("  \"findings\": [\n");
    for (i, k) in keys.iter().enumerate() {
        let sep = if i + 1 == keys.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\"{sep}\n", crate::json_escape(k)));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Split findings into `(new, baselined_count)`.
pub fn apply(findings: Vec<Finding>, baseline: &BTreeSet<String>) -> (Vec<Finding>, usize) {
    let mut fresh = Vec::new();
    let mut matched = 0usize;
    for f in findings {
        if baseline.contains(&key(&f)) {
            matched += 1;
        } else {
            fresh.push(f);
        }
    }
    (fresh, matched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Frame};

    fn finding(rule: &'static str, chain: Vec<(&str, &str)>) -> Finding {
        Finding::new(rule, "crates/core/src/a.rs".into(), 3, 7, "m".into()).with_chain(
            chain
                .into_iter()
                .map(|(sym, note)| Frame {
                    symbol: sym.into(),
                    path: "crates/core/src/a.rs".into(),
                    line: 1,
                    note: note.into(),
                })
                .collect(),
        )
    }

    #[test]
    fn keys_use_chain_endpoints_not_lines() {
        let f = finding(
            "panic-reach",
            vec![("core::a::f", ""), ("core::b::g", "unwrap")],
        );
        assert_eq!(key(&f), "panic-reach|core::a::f|core::b::g|unwrap");
        let mut moved = f.clone();
        moved.line = 99;
        assert_eq!(key(&moved), key(&f));
    }

    #[test]
    fn render_parse_round_trip() {
        let keys: BTreeSet<String> = ["a|b|c|d", "panic-reach|x::y|z::w|unwrap"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse(&render(&keys)), keys);
        assert!(parse("not json").is_empty());
    }

    #[test]
    fn apply_splits_new_from_baselined() {
        let old = finding(
            "panic-reach",
            vec![("core::a::f", ""), ("core::b::g", "unwrap")],
        );
        let new = finding(
            "panic-reach",
            vec![("core::a::h", ""), ("core::b::g", "unwrap")],
        );
        let baseline: BTreeSet<String> = [key(&old)].into_iter().collect();
        let (fresh, matched) = apply(vec![old, new.clone()], &baseline);
        assert_eq!(matched, 1);
        assert_eq!(fresh, vec![new]);
    }
}
