//! Symbol table and cross-crate call graph.
//!
//! Built on [`crate::parse`]'s items, this module gives every function a
//! workspace-unique symbol (`core::selector::margin::score_pool`,
//! `serve::fleet::Fleet::dispatch`) and resolves the call sites inside
//! each body to edges between symbols.
//!
//! Resolution is name-based and deliberately **over-approximate** — the
//! analyses built on top are reachability checks, where a spurious edge
//! costs a reviewable false positive (vetted by annotation or baseline)
//! but a missing edge silently hides a real panic path:
//!
//! - qualified calls (`a::b::f(…)`, `Type::new(…)`) match any symbol
//!   whose qualified path ends with the written segments, with
//!   `alem_<k>` crate aliases mapped to crate dirs and `Self` mapped to
//!   the caller's impl type;
//! - bare calls (`helper(…)`) prefer the caller's module, then its
//!   crate, then any free function of that name;
//! - method calls (`.score_pool(…)`) match every impl/trait method of
//!   that name anywhere in the workspace — dynamic dispatch without
//!   type inference — except for a stoplist of ubiquitous std method
//!   names (`map`, `get`, `len`, …) that would otherwise glue the graph
//!   together through `Iterator`/`Vec` calls. Workspace methods that
//!   share a stoplisted name lose incoming edges only; they are still
//!   analyzed directly as roots, so nothing escapes enforcement.
//!
//! Test functions never receive edges from non-test code, and library
//! symbols never call into bin/bench/test targets.

use crate::parse::{FnItem, ParsedFile};
use crate::rules::FileClass;
use std::collections::BTreeMap;

/// Ubiquitous std method names that are never linked as workspace edges.
const METHOD_STOPLIST: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_sub",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "err",
    "extend",
    "exp",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "for_each",
    "from_bits",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "ln",
    "lock",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "peekable",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "read",
    "read_line",
    "recv",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "rfind",
    "round",
    "saturating_add",
    "saturating_sub",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "splitn",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "to_bits",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// Keywords that look like bare calls (`if (…)`, `match (…)`).
const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

/// One function symbol in the workspace.
#[derive(Debug)]
pub struct Symbol {
    /// Index of the file in [`Workspace::files`].
    pub file: usize,
    /// Index of the item in that file's `fns`.
    pub fn_idx: usize,
    /// Fully qualified display path (`core::featurestore::FeatureStore::fill`).
    pub display: String,
    /// Qualified path as segments, for suffix matching.
    pub qual: Vec<String>,
    /// Bare function name.
    pub name: String,
    /// Crate directory name (`core`, `serve`); empty for root `tests/`
    /// and `examples/` files.
    pub krate: String,
    /// Plain-`pub` visibility (reachability root candidate).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Part of a library target (vs bin/bench/test).
    pub is_lib: bool,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written (single segment for bare/method calls).
    pub segs: Vec<String>,
    /// `.name(…)` method-call syntax.
    pub method: bool,
    /// `name!(…)` macro invocation.
    pub is_macro: bool,
    /// Byte offset of the first path segment.
    pub offset: usize,
}

/// The parsed workspace: files, symbols, call sites, resolved edges.
pub struct Workspace {
    /// All parsed files, in input order.
    pub files: Vec<ParsedFile>,
    /// All function symbols.
    pub symbols: Vec<Symbol>,
    /// Per-symbol call sites (macro and function calls, unresolved).
    pub calls: Vec<Vec<CallSite>>,
    /// Per-symbol resolved edges: `(callee symbol, call-site offset)`.
    pub edges: Vec<Vec<(usize, usize)>>,
    /// Lock-field names declared anywhere in the workspace.
    pub lock_fields: Vec<String>,
}

impl Workspace {
    /// The file a symbol lives in.
    pub fn file_of(&self, sym: usize) -> &ParsedFile {
        &self.files[self.symbols[sym].file]
    }

    /// The `FnItem` behind a symbol.
    pub fn item_of(&self, sym: usize) -> &FnItem {
        let s = &self.symbols[sym];
        &self.files[s.file].fns[s.fn_idx]
    }

    /// `(line, col)` of a symbol's name identifier.
    pub fn position_of(&self, sym: usize) -> (usize, usize) {
        let s = &self.symbols[sym];
        self.files[s.file]
            .lexed
            .position(self.item_of(sym).name_offset)
    }

    /// Body byte ranges of `sym` excluding nested function bodies, so
    /// token scans attribute nested items to their own symbols.
    pub fn body_regions(&self, sym: usize) -> Vec<(usize, usize)> {
        let s = &self.symbols[sym];
        let file = &self.files[s.file];
        let Some((start, end)) = file.fns[s.fn_idx].body else {
            return Vec::new();
        };
        let mut holes: Vec<(usize, usize)> = file
            .fns
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                *i != s.fn_idx && f.body.is_some_and(|(bs, be)| bs > start && be <= end)
            })
            .filter_map(|(_, f)| f.body)
            .collect();
        holes.sort();
        let mut regions = Vec::new();
        let mut cur = start;
        for (hs, he) in holes {
            if hs > cur {
                regions.push((cur, hs));
            }
            cur = cur.max(he);
        }
        if cur < end {
            regions.push((cur, end));
        }
        regions
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Last non-whitespace byte before `off`, if any.
fn prev_nonspace(code: &[u8], off: usize) -> Option<(u8, usize)> {
    code[..off]
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map(|i| (code[i], i))
}

/// Extract all call sites in the given byte regions of `code`.
pub fn extract_calls(code: &str, regions: &[(usize, usize)]) -> Vec<CallSite> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for &(start, end) in regions {
        let mut i = start;
        while i < end.min(bytes.len()) {
            let b = bytes[i];
            if !(b.is_ascii_alphabetic() || b == b'_') || (i > 0 && is_ident_byte(bytes[i - 1])) {
                i += 1;
                continue;
            }
            // Read the whole path: ident (:: ident)*.
            let path_start = i;
            let mut segs = Vec::new();
            let mut j = i;
            loop {
                let seg_start = j;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                segs.push(code[seg_start..j].to_string());
                // Continue through `::ident`; stop at `::<` (turbofish).
                if j + 1 < bytes.len() && bytes[j] == b':' && bytes[j + 1] == b':' {
                    let k = j + 2;
                    if k < bytes.len() && (bytes[k].is_ascii_alphabetic() || bytes[k] == b'_') {
                        j = k;
                        continue;
                    }
                }
                break;
            }
            // Skip a turbofish `::<…>` between path and `(`.
            let mut k = j;
            if k + 2 < bytes.len()
                && bytes[k] == b':'
                && bytes[k + 1] == b':'
                && bytes[k + 2] == b'<'
            {
                let mut depth = 0usize;
                k += 2;
                while k < bytes.len() {
                    match bytes[k] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            let after = bytes.get(k).copied();
            let first = segs[0].as_str();
            if segs.len() == 1 && KEYWORDS.contains(&first) {
                i = j;
                continue;
            }
            let prev = prev_nonspace(bytes, path_start);
            let method = prev.map(|(b, _)| b) == Some(b'.');
            // `fn name(` is a declaration, not a call.
            let declared = prev.is_some_and(|(_, pi)| {
                let upto = &code[..pi + 1];
                upto.ends_with("fn") && (pi < 2 || !is_ident_byte(bytes[pi - 2]))
            });
            match after {
                Some(b'(') if !declared => out.push(CallSite {
                    segs,
                    method,
                    is_macro: false,
                    offset: path_start,
                }),
                // Macro call (skip `!=` comparisons).
                Some(b'!')
                    if segs.len() == 1 && !method && bytes.get(k + 1).copied() != Some(b'=') =>
                {
                    out.push(CallSite {
                        segs,
                        method,
                        is_macro: true,
                        offset: path_start,
                    });
                }
                _ => {}
            }
            i = j.max(i + 1);
        }
    }
    out
}

/// Build the workspace graph from parsed files.
pub fn build(files: Vec<ParsedFile>) -> Workspace {
    let mut symbols = Vec::new();
    let mut lock_fields = Vec::new();
    // Crate lib-name aliases: `alem_core` → `core`.
    let mut aliases: BTreeMap<String, String> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        let krate = file.krate().unwrap_or("").to_string();
        if !krate.is_empty() {
            aliases.insert(format!("alem_{krate}"), krate.clone());
        }
        for lf in &file.lock_fields {
            if !lock_fields.contains(lf) {
                lock_fields.push(lf.clone());
            }
        }
        let file_mods = file.file_modules();
        let is_lib = matches!(file.class, FileClass::Lib { .. });
        for (xi, f) in file.fns.iter().enumerate() {
            let mut qual: Vec<String> = Vec::new();
            if !krate.is_empty() {
                qual.push(krate.clone());
            }
            qual.extend(file_mods.iter().cloned());
            qual.extend(f.modules.iter().cloned());
            if let Some(t) = &f.impl_type {
                qual.push(t.clone());
            }
            qual.push(f.name.clone());
            symbols.push(Symbol {
                file: fi,
                fn_idx: xi,
                display: qual.join("::"),
                qual,
                name: f.name.clone(),
                krate: krate.clone(),
                is_pub: f.is_pub,
                is_test: f.is_test,
                is_lib,
            });
        }
    }
    lock_fields.sort();

    let mut ws = Workspace {
        files,
        symbols,
        calls: Vec::new(),
        edges: Vec::new(),
        lock_fields,
    };

    // Name index for resolution.
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, s) in ws.symbols.iter().enumerate() {
        by_name.entry(s.name.clone()).or_default().push(i);
    }

    for sym in 0..ws.symbols.len() {
        let regions = ws.body_regions(sym);
        let code = &ws.file_of(sym).lexed.code;
        let calls = extract_calls(code, &regions);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for call in &calls {
            for callee in resolve(&ws, &by_name, &aliases, sym, call) {
                edges.push((callee, call.offset));
            }
        }
        edges.sort();
        edges.dedup();
        ws.calls.push(calls);
        ws.edges.push(edges);
    }
    ws
}

/// Resolve one call site to candidate callee symbols.
fn resolve(
    ws: &Workspace,
    by_name: &BTreeMap<String, Vec<usize>>,
    aliases: &BTreeMap<String, String>,
    caller: usize,
    call: &CallSite,
) -> Vec<usize> {
    if call.is_macro {
        return Vec::new();
    }
    let from = &ws.symbols[caller];
    let viable = |id: &&usize| -> bool {
        let to = &ws.symbols[**id];
        **id != caller
            && (from.is_test || !to.is_test)
            && (!from.is_lib || to.is_lib)
            && ws.item_of(**id).body.is_some()
    };

    if call.method {
        let name = call.segs[0].as_str();
        if METHOD_STOPLIST.contains(&name) {
            return Vec::new();
        }
        return by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .filter(viable)
                    .filter(|id| ws.item_of(**id).impl_type.is_some())
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
    }

    // Normalize the written path.
    let mut segs: Vec<String> = Vec::new();
    for (i, s) in call.segs.iter().enumerate() {
        match s.as_str() {
            "crate" | "self" | "super" if i == 0 => {}
            "Self" => {
                if let Some(t) = &ws.item_of(caller).impl_type {
                    segs.push(t.clone());
                }
            }
            other => segs.push(
                aliases
                    .get(other)
                    .cloned()
                    .unwrap_or_else(|| other.to_string()),
            ),
        }
    }
    if segs.is_empty() {
        return Vec::new();
    }
    let name = segs.last().cloned().unwrap_or_default();
    let Some(ids) = by_name.get(name.as_str()) else {
        return Vec::new();
    };

    if segs.len() == 1 {
        // Bare call: same-module free fns, then same-crate, then anywhere.
        let caller_file = from.file;
        let caller_mods = &ws.item_of(caller).modules;
        let free: Vec<usize> = ids
            .iter()
            .filter(viable)
            .filter(|id| ws.item_of(**id).impl_type.is_none())
            .copied()
            .collect();
        let same_module: Vec<usize> = free
            .iter()
            .filter(|id| {
                ws.symbols[**id].file == caller_file && &ws.item_of(**id).modules == caller_mods
            })
            .copied()
            .collect();
        if !same_module.is_empty() {
            return same_module;
        }
        let same_crate: Vec<usize> = free
            .iter()
            .filter(|id| ws.symbols[**id].krate == from.krate)
            .copied()
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        return free;
    }

    // Qualified call: suffix match against the symbol's qualified path.
    ids.iter()
        .filter(viable)
        .filter(|id| {
            let q = &ws.symbols[**id].qual;
            q.len() >= segs.len() && q[q.len() - segs.len()..] == segs[..]
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        build(
            files
                .iter()
                .map(|(rel, src)| parse_file(rel, src))
                .collect(),
        )
    }

    fn sym(ws: &Workspace, display: &str) -> usize {
        ws.symbols
            .iter()
            .position(|s| s.display == display)
            .unwrap_or_else(|| {
                panic!(
                    "no symbol {display}; have {:?}",
                    ws.symbols.iter().map(|s| &s.display).collect::<Vec<_>>()
                )
            })
    }

    fn callees(ws: &Workspace, from: &str) -> Vec<String> {
        let id = sym(ws, from);
        ws.edges[id]
            .iter()
            .map(|(c, _)| ws.symbols[*c].display.clone())
            .collect()
    }

    #[test]
    fn bare_calls_prefer_module_then_crate() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "pub fn f() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/core/src/b.rs", "fn helper() {}\n"),
        ]);
        assert_eq!(callees(&w, "core::a::f"), vec!["core::a::helper"]);
    }

    #[test]
    fn qualified_calls_suffix_match_across_crates() {
        let w = ws(&[
            (
                "crates/serve/src/fleet.rs",
                "pub fn run() { alem_core::session::derive_rng(1); dataset::build(\"t\"); }\n",
            ),
            (
                "crates/core/src/session/mod.rs",
                "pub fn derive_rng(seed: u64) -> u64 { seed }\n",
            ),
            (
                "crates/serve/src/dataset.rs",
                "pub fn build(name: &str) -> usize { name.len() }\n",
            ),
        ]);
        assert_eq!(
            callees(&w, "serve::fleet::run"),
            vec!["core::session::derive_rng", "serve::dataset::build"]
        );
    }

    #[test]
    fn method_calls_link_all_impls_but_not_stoplisted_names() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "pub fn f(s: &dyn Strategy) { s.score_pool(); s.map(); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "impl Margin { pub fn score_pool(&self) {} }\n\
                 impl Qbc { pub fn score_pool(&self) {} }\n\
                 impl Par { pub fn map(&self) {} }\n",
            ),
        ]);
        assert_eq!(
            callees(&w, "core::a::f"),
            vec!["core::b::Margin::score_pool", "core::b::Qbc::score_pool"]
        );
    }

    #[test]
    fn self_calls_resolve_to_impl_type() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "impl Widget {\n    pub fn make() -> Self { Self::helper() }\n    fn helper() -> Self { Widget }\n}\n",
        )]);
        assert_eq!(
            callees(&w, "core::a::Widget::make"),
            vec!["core::a::Widget::helper"]
        );
    }

    #[test]
    fn lib_code_never_links_into_tests_or_bins() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "pub fn f() { helper(); }\n#[cfg(test)]\nmod tests { pub fn helper() {} }\n",
            ),
            ("crates/core/src/bin/tool.rs", "pub fn helper() {}\n"),
        ]);
        assert!(callees(&w, "core::a::f").is_empty());
    }

    #[test]
    fn macros_are_recorded_but_not_edges() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "pub fn f() { panic!(\"x\"); g(); }\npub fn g() {}\n",
        )]);
        let id = sym(&w, "core::a::f");
        assert!(w.calls[id]
            .iter()
            .any(|c| c.is_macro && c.segs == ["panic"]));
        assert_eq!(callees(&w, "core::a::f"), vec!["core::a::g"]);
    }
}
