//! A small comment/string-aware lexer for Rust sources.
//!
//! The linter does not parse Rust — it only needs to know, for every byte
//! of a source file, whether it is *code*, part of a *comment*, or inside a
//! *string/char literal*. This module produces:
//!
//! - a **blanked code view**: the original text with comment bodies and
//!   literal contents replaced by spaces (newlines preserved), so naive
//!   token scans cannot be fooled by `"panic!"` in a string or a rule name
//!   mentioned in a doc comment;
//! - the list of **comments** (for `// alem-lint: allow(...)` annotations);
//! - the list of **string literals** with their contents and positions
//!   (for the obs-counter naming rule);
//! - the set of lines inside **`#[cfg(test)]` regions** (exempt from the
//!   no-panic and collection rules).
//!
//! Handled syntax: line comments, nested block comments, string literals
//! with escapes, raw strings `r"…"`/`r#"…"#` (any hash depth, also `br…`),
//! byte strings, char literals vs. lifetimes, and raw identifiers
//! (`r#match`).

/// A comment found in the source (either `//…` or `/*…*/`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the first character of the comment.
    pub line: usize,
    /// Comment text without its delimiters.
    pub text: String,
}

/// A string literal found in the source.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the opening quote in the file.
    pub offset: usize,
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Literal contents (escapes left as written).
    pub value: String,
}

/// Lexing result for one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Source with comment bodies and literal contents blanked to spaces.
    /// Same byte length as the input; newlines are preserved.
    pub code: String,
    /// All comments, in file order.
    pub comments: Vec<Comment>,
    /// All string literals, in file order.
    pub strings: Vec<StrLit>,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// `in_test[i]` is true when 1-based line `i + 1` lies inside a
    /// `#[cfg(test)]` item (module, function, or single statement).
    pub in_test: Vec<bool>,
}

impl Lexed {
    /// Map a byte offset into the file to a `(line, col)` pair (1-based).
    pub fn position(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// Whether the 1-based `line` is inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex `src` into its blanked-code view plus comments and string literals.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut code: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line_starts = vec![0usize];
    let mut line = 1usize;
    let mut i = 0usize;

    // Push a blanked byte (preserving newlines for line accounting).
    macro_rules! blank {
        ($b:expr) => {
            if $b == b'\n' {
                code.push(b'\n');
                line += 1;
                line_starts.push(code.len());
            } else {
                code.push(b' ');
            }
        };
    }
    macro_rules! keep {
        ($b:expr) => {
            if $b == b'\n' {
                code.push(b'\n');
                line += 1;
                line_starts.push(code.len());
            } else {
                code.push($b);
            }
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let start_line = line;
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                blank!(bytes[i]);
                i += 1;
            }
            comments.push(Comment {
                line: start_line,
                text: src[start..i].trim_start_matches('/').trim().to_string(),
            });
            continue;
        }
        // Block comment (nesting).
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start_line = line;
            let start = i;
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            let body = src[start..i]
                .trim_start_matches("/*")
                .trim_end_matches("*/")
                .trim();
            comments.push(Comment {
                line: start_line,
                text: body.to_string(),
            });
            continue;
        }
        // Raw strings r"…", r#"…"#, br#"…"# — and raw identifiers r#ident.
        if (b == b'r' || b == b'b') && (i == 0 || !is_ident_char(bytes[i - 1])) {
            // Find the candidate start of a raw/byte string.
            let mut j = i;
            if bytes[j] == b'b' && j + 1 < bytes.len() && bytes[j + 1] == b'r' {
                j += 1;
            }
            if bytes[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < bytes.len() && bytes[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b'"' {
                    // Raw (byte) string from i..; emit prefix as code, blank body.
                    let lit_line = line;
                    let lit_offset = k;
                    while i < k {
                        keep!(bytes[i]);
                        i += 1;
                    }
                    keep!(b'"');
                    i += 1;
                    let body_start = i;
                    // Scan for closing `"` followed by `hashes` hashes.
                    while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut h = 0usize;
                            while i + 1 + h < bytes.len() && bytes[i + 1 + h] == b'#' && h < hashes
                            {
                                h += 1;
                            }
                            if h == hashes {
                                strings.push(StrLit {
                                    offset: lit_offset,
                                    line: lit_line,
                                    value: src[body_start..i].to_string(),
                                });
                                keep!(b'"');
                                i += 1;
                                for _ in 0..hashes {
                                    keep!(b'#');
                                    i += 1;
                                }
                                break;
                            }
                        }
                        blank!(bytes[i]);
                        i += 1;
                    }
                    continue;
                } else if hashes > 0 && bytes[j] == b'r' && j == i {
                    // Raw identifier r#ident: emit it verbatim.
                    keep!(bytes[i]);
                    i += 1;
                    continue;
                }
            }
        }
        // Plain or byte string literal.
        if b == b'"'
            || (b == b'b'
                && i + 1 < bytes.len()
                && bytes[i + 1] == b'"'
                && (i == 0 || !is_ident_char(bytes[i - 1])))
        {
            if b == b'b' {
                keep!(b'b');
                i += 1;
            }
            let lit_line = line;
            let lit_offset = i;
            keep!(b'"');
            i += 1;
            let body_start = i;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' if i + 1 < bytes.len() => {
                        blank!(bytes[i]);
                        blank!(bytes[i + 1]);
                        i += 2;
                    }
                    b'"' => break,
                    other => {
                        blank!(other);
                        i += 1;
                    }
                }
            }
            strings.push(StrLit {
                offset: lit_offset,
                line: lit_line,
                value: src[body_start..i.min(src.len())].to_string(),
            });
            if i < bytes.len() {
                keep!(b'"');
                i += 1;
            }
            continue;
        }
        // Char literal vs. lifetime.
        if b == b'\'' {
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(c) => bytes.get(i + 2) == Some(&b'\'') && c != b'\'',
                None => false,
            };
            if is_char {
                keep!(b'\'');
                i += 1;
                if bytes.get(i) == Some(&b'\\') {
                    // Escaped char: blank until the closing quote.
                    while i < bytes.len() && bytes[i] != b'\'' {
                        blank!(bytes[i]);
                        i += 1;
                    }
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
                if i < bytes.len() {
                    keep!(b'\'');
                    i += 1;
                }
                continue;
            }
            // Lifetime: fall through as code.
        }
        keep!(b);
        i += 1;
    }

    let code = String::from_utf8(code).unwrap_or_default();
    let in_test = test_regions(&code, &line_starts, line);
    Lexed {
        code,
        comments,
        strings,
        line_starts,
        in_test,
    }
}

/// Compute the set of lines covered by `#[cfg(test)]` items, by scanning
/// the blanked code view: from each `#[cfg(test)]` attribute, the region
/// extends either over the brace-delimited item that follows (`mod tests {
/// … }`) or, if a `;` appears first, over that single statement.
fn test_regions(code: &str, line_starts: &[usize], n_lines: usize) -> Vec<bool> {
    let mut in_test = vec![false; n_lines];
    let bytes = code.as_bytes();
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    let mut search = 0usize;
    while let Some(pos) = code[search..].find("#[cfg(test)") {
        let attr_start = search + pos;
        // Walk to the attribute's closing `]` (attributes never contain
        // unbalanced brackets once strings are blanked).
        let mut i = attr_start;
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Find the item's opening `{` or a terminating `;`, whichever
        // comes first (skipping any further stacked attributes).
        let mut j = i + 1;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    // Region runs to the matching close brace.
                    let mut d = 0usize;
                    let mut k = j;
                    while k < bytes.len() {
                        match bytes[k] {
                            b'{' => d += 1,
                            b'}' => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    end = k.min(bytes.len().saturating_sub(1));
                    break;
                }
                b';' => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let first = line_of(attr_start);
        let last = line_of(end.min(bytes.len().saturating_sub(1)));
        for flag in in_test.iter_mut().take(last + 1).skip(first) {
            *flag = true;
        }
        search = attr_start + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let src = r#"let x = "panic!"; // unwrap() here
/* thread_rng */ let y = 'a';"#;
        let lexed = lex(src);
        assert!(!lexed.code.contains("panic!"));
        assert!(!lexed.code.contains("unwrap"));
        assert!(!lexed.code.contains("thread_rng"));
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].value, "panic!");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "unwrap() here");
        assert_eq!(lexed.comments[1].text, "thread_rng");
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) { let r = r#\"unwrap()\"#; }";
        let lexed = lex(src);
        assert!(!lexed.code.contains("unwrap"));
        assert!(lexed.code.contains("fn f<'a>"));
        assert_eq!(lexed.strings[0].value, "unwrap()");
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let src = "let c = '\\n'; let d = 'x'; foo.unwrap();";
        let lexed = lex(src);
        assert!(lexed.code.contains("unwrap"));
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn a() { b.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { c.unwrap(); }\n}\nfn z() {}\n";
        let lexed = lex(src);
        assert!(!lexed.is_test_line(1));
        assert!(lexed.is_test_line(2));
        assert!(lexed.is_test_line(3));
        assert!(lexed.is_test_line(4));
        assert!(lexed.is_test_line(5));
        assert!(!lexed.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_statement_only_covers_statement() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { x.unwrap(); }\n";
        let lexed = lex(src);
        assert!(lexed.is_test_line(1));
        assert!(lexed.is_test_line(2));
        assert!(!lexed.is_test_line(3));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("abc\ndef");
        assert_eq!(lexed.position(0), (1, 1));
        assert_eq!(lexed.position(4), (2, 1));
        assert_eq!(lexed.position(6), (2, 3));
    }
}
