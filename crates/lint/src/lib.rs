//! `alem-lint`: project-invariant static analysis for the alem workspace.
//!
//! Clippy and rustc enforce Rust's rules; this crate enforces *ours* —
//! the invariants PRs 1 and 2 made testable and that a single careless
//! line can silently break:
//!
//! - **determinism** — bit-identical [`RunResult::deterministic_fingerprint`]
//!   across checkpoint/resume requires every RNG to derive from the master
//!   seed, every library timing to flow through `Span::finish()`, and no
//!   hash-ordered iteration on the labeling/modeling path;
//! - **no-panic** — every user-reachable failure in library code surfaces
//!   as a structured `AlemError`, never an `unwrap()`;
//! - **hygiene** — `#![forbid(unsafe_code)]` on every crate root, offline
//!   `vendor/` path dependencies only, and `select.*` telemetry naming in
//!   selector modules.
//!
//! Two layers share one diagnostic surface:
//!
//! 1. **lexical** ([`rules`]) — per-file token-stream checks over the
//!    comment/string-blanked code view;
//! 2. **semantic** ([`analyses`]) — a lightweight item parser ([`parse`])
//!    and cross-crate call graph ([`graph`]) drive interprocedural
//!    passes: panic-reachability, determinism taint, and lock
//!    discipline, each printing the full call chain / taint path and
//!    gated against the committed [`baseline`].
//!
//! See [`rules`] for the full catalog and DESIGN.md §8 for the rationale,
//! the allow-annotation grammar, and how to add a rule. The binary
//! (`cargo run -p alem-lint`) prints rustc-style diagnostics, or machine
//! JSON with `--json`, and exits non-zero on any finding.
//!
//! Zero-dependency by design: a lint tool must not drag dependencies into
//! the workspace it polices, and the build environment has no registry
//! access (the same constraint that produced the `vendor/` shims and
//! `alem-obs`). The parser and call graph are hand-rolled for the same
//! reason — no `syn`, no rustc internals.
//!
//! [`RunResult::deterministic_fingerprint`]: ../alem_core/evaluator/struct.RunResult.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyses;
pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod workspace;

pub use rules::{
    classify, lint_crate_root, lint_source, lint_workspace_manifest, FileClass, Finding, Frame,
    RuleMeta, Severity, RULES,
};
pub use workspace::{find_workspace_root, lint_workspace, lint_workspace_with, Options, Report};

/// `--json` report schema version. Version 2 added the top-level report
/// object (`schema_version`, `files_scanned`, `baselined`) and the
/// per-finding `chain` array of `{symbol, path, line, note}` frames.
pub const JSON_SCHEMA_VERSION: u32 = 2;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_to_json(f: &Finding) -> String {
    let mut row = format!(
        "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"",
        json_escape(f.rule),
        match rules::severity_of(f.rule) {
            Severity::Error => "error",
            Severity::Warning => "warning",
        },
        json_escape(&f.path),
        f.line,
        f.col,
        json_escape(&f.message)
    );
    if !f.chain.is_empty() {
        let frames: Vec<String> = f
            .chain
            .iter()
            .map(|fr| {
                format!(
                    "{{\"symbol\":\"{}\",\"path\":\"{}\",\"line\":{},\"note\":\"{}\"}}",
                    json_escape(&fr.symbol),
                    json_escape(&fr.path),
                    fr.line,
                    json_escape(&fr.note)
                )
            })
            .collect();
        row.push_str(&format!(",\"chain\":[{}]", frames.join(",")));
    }
    row.push('}');
    row
}

/// Render findings as a JSON array (legacy shape, kept for tooling that
/// predates the versioned report object).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let rows: Vec<String> = findings.iter().map(finding_to_json).collect();
    format!("[{}]", rows.join(",\n "))
}

/// Render a whole report as the versioned JSON object CI consumes.
pub fn report_to_json(report: &Report) -> String {
    format!(
        "{{\"schema_version\":{},\"files_scanned\":{},\"baselined\":{},\"findings\":{}}}",
        JSON_SCHEMA_VERSION,
        report.files_scanned,
        report.baselined,
        findings_to_json(&report.findings)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_escaped_and_parseable_shape() {
        let findings = vec![Finding::new(
            "no-panic",
            "crates/core/src/a \"b\".rs".into(),
            3,
            7,
            "line1\nline2".into(),
        )];
        let json = findings_to_json(&findings);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(!json.contains('\n') || json.contains("\\n"));
    }

    #[test]
    fn empty_findings_render_empty_array() {
        assert_eq!(findings_to_json(&[]), "[]");
    }

    #[test]
    fn chained_findings_serialize_frames() {
        let finding = Finding::new(
            "panic-reach",
            "crates/core/src/a.rs".into(),
            1,
            8,
            "pub API can reach a panic".into(),
        )
        .with_chain(vec![
            Frame {
                symbol: "core::a::f".into(),
                path: "crates/core/src/a.rs".into(),
                line: 1,
                note: String::new(),
            },
            Frame {
                symbol: "core::b::g".into(),
                path: "crates/core/src/b.rs".into(),
                line: 9,
                note: "unwrap".into(),
            },
        ]);
        let json = findings_to_json(std::slice::from_ref(&finding));
        assert!(json.contains("\"chain\":["), "{json}");
        assert!(json.contains("\"symbol\":\"core::b::g\""), "{json}");
        assert!(json.contains("\"note\":\"unwrap\""), "{json}");
        let rendered = finding.to_string();
        assert!(rendered.contains("core::a::f"), "{rendered}");
        assert!(rendered.contains("— unwrap"), "{rendered}");
    }

    #[test]
    fn report_object_is_versioned() {
        let report = Report {
            findings: Vec::new(),
            files_scanned: 12,
            baselined: 3,
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"schema_version\":2"), "{json}");
        assert!(json.contains("\"files_scanned\":12"), "{json}");
        assert!(json.contains("\"baselined\":3"), "{json}");
        assert!(json.ends_with("\"findings\":[]}"), "{json}");
    }
}
