//! `alem-lint`: project-invariant static analysis for the alem workspace.
//!
//! Clippy and rustc enforce Rust's rules; this crate enforces *ours* —
//! the invariants PRs 1 and 2 made testable and that a single careless
//! line can silently break:
//!
//! - **determinism** — bit-identical [`RunResult::deterministic_fingerprint`]
//!   across checkpoint/resume requires every RNG to derive from the master
//!   seed, every library timing to flow through `Span::finish()`, and no
//!   hash-ordered iteration on the labeling/modeling path;
//! - **no-panic** — every user-reachable failure in library code surfaces
//!   as a structured `AlemError`, never an `unwrap()`;
//! - **hygiene** — `#![forbid(unsafe_code)]` on every crate root, offline
//!   `vendor/` path dependencies only, and `select.*` telemetry naming in
//!   selector modules.
//!
//! See [`rules`] for the full catalog and DESIGN.md §8 for the rationale,
//! the allow-annotation grammar, and how to add a rule. The binary
//! (`cargo run -p alem-lint`) prints rustc-style diagnostics, or machine
//! JSON with `--json`, and exits non-zero on any finding.
//!
//! Zero-dependency by design: a lint tool must not drag dependencies into
//! the workspace it polices, and the build environment has no registry
//! access (the same constraint that produced the `vendor/` shims and
//! `alem-obs`).
//!
//! [`RunResult::deterministic_fingerprint`]: ../alem_core/evaluator/struct.RunResult.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{
    classify, lint_crate_root, lint_source, lint_workspace_manifest, FileClass, Finding,
};
pub use workspace::{find_workspace_root, lint_workspace, Report};

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array (machine output for CI).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.path),
                f.line,
                f.col,
                json_escape(&f.message)
            )
        })
        .collect();
    format!("[{}]", rows.join(",\n "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_escaped_and_parseable_shape() {
        let findings = vec![Finding {
            rule: "no-panic",
            path: "crates/core/src/a \"b\".rs".into(),
            line: 3,
            col: 7,
            message: "line1\nline2".into(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("\\n"));
        assert!(!json.contains('\n') || json.contains("\\n"));
    }

    #[test]
    fn empty_findings_render_empty_array() {
        assert_eq!(findings_to_json(&[]), "[]");
    }
}
