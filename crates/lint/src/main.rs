//! `alem-lint` binary: scan the workspace and report invariant violations.
//!
//! ```text
//! alem-lint [--root DIR] [--json]
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("alem-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: alem-lint [--root DIR] [--json]");
                println!("Enforces the workspace's determinism, no-panic, and hygiene rules.");
                println!("See DESIGN.md §8 for the rule catalog and the allow-annotation grammar.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("alem-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| alem_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("alem-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match alem_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alem-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", alem_lint::findings_to_json(&report.findings));
    } else {
        for f in &report.findings {
            println!("{f}\n");
        }
    }
    eprintln!(
        "alem-lint: {} finding(s) in {} file(s) scanned",
        report.findings.len(),
        report.files_scanned
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
