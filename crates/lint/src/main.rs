//! `alem-lint` binary: scan the workspace and report invariant violations.
//!
//! ```text
//! alem-lint [--root DIR] [--json] [--no-semantic] [--no-baseline]
//!           [--baseline FILE] [--write-baseline]
//! ```
//!
//! The default run executes both layers — per-file lexical rules and the
//! interprocedural analyses — and subtracts the committed
//! `lint-baseline.json`, so the exit code reflects **new** findings only.
//! `--write-baseline` regenerates that file from the current tree.
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error.

#![forbid(unsafe_code)]

use alem_lint::{baseline, Options};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut opts = Options::default();
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--no-semantic" => opts.semantic = false,
            "--no-baseline" => opts.apply_baseline = false,
            "--write-baseline" => write_baseline = true,
            "--baseline" => match args.next() {
                Some(file) => opts.baseline_path = Some(PathBuf::from(file)),
                None => {
                    eprintln!("alem-lint: --baseline needs a file");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("alem-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: alem-lint [--root DIR] [--json] [--no-semantic] [--no-baseline]");
                println!("                 [--baseline FILE] [--write-baseline]");
                println!("Enforces the workspace's determinism, no-panic, and hygiene rules,");
                println!("plus the interprocedural panic-reach / determinism-taint /");
                println!("lock-discipline analyses. See DESIGN.md §8 for the rule catalog,");
                println!("the allow-annotation grammar, and the baseline workflow.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("alem-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| alem_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("alem-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        // Regenerate the committed baseline from the full finding set.
        opts.apply_baseline = false;
        let report = match alem_lint::lint_workspace_with(&root, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("alem-lint: scanning {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let keys = report.findings.iter().map(baseline::key).collect();
        let path = opts
            .baseline_path
            .clone()
            .unwrap_or_else(|| root.join(baseline::BASELINE_FILE));
        if let Err(e) = std::fs::write(&path, baseline::render(&keys)) {
            eprintln!("alem-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "alem-lint: wrote {} baseline key(s) to {}",
            keys.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let report = match alem_lint::lint_workspace_with(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alem-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", alem_lint::report_to_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}\n");
        }
    }
    eprintln!(
        "alem-lint: {} finding(s) ({} baselined) in {} file(s) scanned",
        report.findings.len(),
        report.baselined,
        report.files_scanned
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
