//! A lightweight item parser for the semantic pass.
//!
//! The lexer (PR 3) answers "what kind of byte is this"; this module
//! answers "what *item* does this byte belong to". It is deliberately not
//! a Rust parser — no `syn`, no rustc, the same zero-dependency
//! discipline as the lexer — just a single forward scan over the blanked
//! code view that tracks brace nesting and recognizes the four item
//! shapes the analyses need:
//!
//! - `mod name { … }` — inline module nesting (file-level module paths
//!   come from the workspace-relative path);
//! - `impl [Trait for] Type { … }` — the self type that qualifies
//!   method symbols (`FeatureStore::fill`);
//! - `trait Name { … }` — default-bodied trait methods become
//!   `Name::method` symbols so dynamic dispatch resolves somewhere;
//! - `fn name(…) { … }` — the function items themselves, with their
//!   visibility, body span, and `#[cfg(test)]` status.
//!
//! Everything subtler than that (generics, where clauses, closures,
//! nested items) is *skipped correctly* rather than understood: generic
//! argument lists are balanced with `->`-aware angle matching, bodies are
//! balanced with brace matching (safe because the code view has no
//! comment or string contents), and nested functions are attributed to
//! their own symbols, not their parent's.

use crate::lexer::{lex, Lexed};
use crate::rules::{classify, FileClass};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name (`fill`, `score_pool`).
    pub name: String,
    /// Enclosing `impl`/`trait` self type, if any (`FeatureStore`).
    pub impl_type: Option<String>,
    /// Inline `mod` nesting inside the file (outermost first).
    pub modules: Vec<String>,
    /// True only for plain `pub` (not `pub(crate)`/`pub(super)`) — the
    /// externally reachable API surface the reachability analyses root at.
    pub is_pub: bool,
    /// Byte offset of the function's name identifier (diagnostic anchor).
    pub name_offset: usize,
    /// Byte range of the body including braces; `None` for bodyless trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the definition line sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// Parse result for one source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path (unix separators).
    pub rel: String,
    /// How the file participates in the build (reuses the lexical
    /// classifier so the two layers can never disagree on scope).
    pub class: FileClass,
    /// All functions, in file order.
    pub fns: Vec<FnItem>,
    /// Names of struct/static fields declared as `Mutex<…>`/`RwLock<…>`
    /// (`sessions: Mutex<…>` → `"sessions"`) — the lock classes the
    /// discipline analysis tracks by name.
    pub lock_fields: Vec<String>,
    /// The lex result (blanked code, positions, test lines, comments).
    pub lexed: Lexed,
}

impl ParsedFile {
    /// The crate directory name for `crates/<k>/…` paths.
    pub fn krate(&self) -> Option<&str> {
        self.rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
    }

    /// File-level module path derived from the workspace-relative path:
    /// `crates/core/src/selector/margin.rs` → `["selector", "margin"]`,
    /// `crates/core/src/session/mod.rs` → `["session"]`, `src/lib.rs` → `[]`.
    pub fn file_modules(&self) -> Vec<String> {
        let Some(rest) = self.rel.strip_prefix("crates/") else {
            return Vec::new();
        };
        let mut parts: Vec<&str> = rest.split('/').collect();
        // crates/<k>/src/<…>/<file>.rs
        if parts.len() < 3 || parts[1] != "src" {
            return Vec::new();
        }
        parts.drain(..2);
        let file = parts.pop().unwrap_or_default();
        let mut mods: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        let stem = file.strip_suffix(".rs").unwrap_or(file);
        if !matches!(stem, "lib" | "mod" | "main") {
            mods.push(stem.to_string());
        }
        mods
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Read the identifier starting at `i`, if any.
fn ident_at(code: &[u8], i: usize) -> Option<(String, usize)> {
    if i >= code.len() || !(code[i].is_ascii_alphabetic() || code[i] == b'_') {
        return None;
    }
    let mut j = i;
    while j < code.len() && is_ident_byte(code[j]) {
        j += 1;
    }
    Some((String::from_utf8_lossy(&code[i..j]).into_owned(), j))
}

fn skip_ws(code: &[u8], mut i: usize) -> usize {
    while i < code.len() && code[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Skip a balanced `<…>` generic list starting at `i` (which must point
/// at `<`). `->` arrows inside (`F: Fn() -> u32`) do not close the list.
fn skip_generics(code: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < code.len() {
        match code[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && code[i - 1] == b'-' => {} // `->` arrow
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Skip a balanced `(…)` list starting at `i` (which must point at `(`).
fn skip_parens(code: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < code.len() {
        match code[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Find the matching `}` for the `{` at `i`.
fn match_brace(code: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < code.len() {
        match code[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Extract the self-type name from an `impl` header (the text between
/// `impl` and `{`): the last path segment of the implemented-on type.
fn impl_self_type(header: &str) -> Option<String> {
    let mut rest = header.trim();
    // Strip `impl`'s generic parameters: `<T: Foo>` directly after impl.
    if rest.starts_with('<') {
        let bytes = rest.as_bytes();
        let end = skip_generics(bytes, 0);
        rest = rest[end.min(rest.len())..].trim();
    }
    // `Trait for Type` → keep the Type side.
    if let Some(pos) = rest.find(" for ") {
        rest = rest[pos + 5..].trim();
    }
    // `&mut Type` / `dyn Type` → the type itself.
    rest = rest.trim_start_matches('&').trim_start();
    for prefix in ["mut ", "dyn "] {
        rest = rest.strip_prefix(prefix).unwrap_or(rest).trim_start();
    }
    // Drop trailing generics/where and take the last path segment.
    let cut = rest.find(['<', '{']).unwrap_or(rest.len());
    let path = rest[..cut].trim().trim_end_matches("::");
    let seg = path.rsplit("::").next().unwrap_or(path).trim();
    let name: String = seg
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// What kind of scope a `{` opened.
#[derive(Debug, Clone, PartialEq)]
enum Scope {
    Mod(String),
    Impl(Option<String>),
    Trait(String),
    Fn,
    Block,
}

/// Parse one source file into its items. `rel` must use unix separators.
pub fn parse_file(rel: &str, source: &str) -> ParsedFile {
    let lexed = lex(source);
    let class = classify(rel);
    let code = lexed.code.as_bytes().to_vec();
    let mut fns = Vec::new();
    let mut lock_fields = Vec::new();

    // Scope stack: (scope, mods-so-far snapshot not needed — recompute on
    // the fly from the stack itself).
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Scope> = None;
    // Statement-prelude start: offset just after the last `;`/`{`/`}` at
    // the current level, used to look up visibility for `fn` items.
    let mut prelude_start = 0usize;

    let mut i = 0usize;
    while i < code.len() {
        let b = code[i];
        match b {
            b'{' => {
                stack.push(pending.take().unwrap_or(Scope::Block));
                prelude_start = i + 1;
                i += 1;
            }
            b'}' => {
                stack.pop();
                pending = None;
                prelude_start = i + 1;
                i += 1;
            }
            b';' => {
                pending = None;
                prelude_start = i + 1;
                i += 1;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let at_word_start = i == 0 || !is_ident_byte(code[i - 1]);
                if !at_word_start {
                    i += 1;
                    continue;
                }
                let Some((word, after)) = ident_at(&code, i) else {
                    i += 1;
                    continue;
                };
                match word.as_str() {
                    "mod" => {
                        let j = skip_ws(&code, after);
                        if let Some((name, _)) = ident_at(&code, j) {
                            pending = Some(Scope::Mod(name));
                        }
                        i = after;
                    }
                    "trait" => {
                        let j = skip_ws(&code, after);
                        if let Some((name, _)) = ident_at(&code, j) {
                            pending = Some(Scope::Trait(name));
                        }
                        i = after;
                    }
                    "impl" => {
                        // Header runs to the opening `{` (angle-aware so
                        // `impl Foo<Bar<Baz>>` survives) or a `;`.
                        let mut j = after;
                        while j < code.len() && code[j] != b'{' && code[j] != b';' {
                            if code[j] == b'<' {
                                j = skip_generics(&code, j);
                            } else {
                                j += 1;
                            }
                        }
                        let header = String::from_utf8_lossy(&code[after..j.min(code.len())]);
                        pending = Some(Scope::Impl(impl_self_type(&header)));
                        i = j;
                    }
                    "fn" => {
                        let j = skip_ws(&code, after);
                        let Some((name, name_end)) = ident_at(&code, j) else {
                            // `fn(...)` pointer type — not an item.
                            i = after;
                            continue;
                        };
                        let name_offset = j;
                        // Visibility: the statement prelude (attributes,
                        // qualifiers) before `fn` — `pub` as a whole word,
                        // not `pub(crate)`.
                        let prelude =
                            String::from_utf8_lossy(&code[prelude_start.min(i)..i]).into_owned();
                        let is_pub = prelude
                            .split_whitespace()
                            .any(|w| w == "pub" || w.starts_with("pub<"));
                        // Skip generics then params then scan to `{`/`;`.
                        let mut k = skip_ws(&code, name_end);
                        if k < code.len() && code[k] == b'<' {
                            k = skip_generics(&code, k);
                        }
                        k = skip_ws(&code, k);
                        if k < code.len() && code[k] == b'(' {
                            k = skip_parens(&code, k);
                        }
                        // Return type / where clause: parens balanced,
                        // braces absent until the body opens.
                        while k < code.len() && code[k] != b'{' && code[k] != b';' {
                            if code[k] == b'(' {
                                k = skip_parens(&code, k);
                            } else if code[k] == b'<' {
                                k = skip_generics(&code, k);
                            } else {
                                k += 1;
                            }
                        }
                        let (def_line, _) = lexed.position(name_offset);
                        let modules: Vec<String> = stack
                            .iter()
                            .filter_map(|s| match s {
                                Scope::Mod(m) => Some(m.clone()),
                                _ => None,
                            })
                            .collect();
                        let impl_type = stack.iter().rev().find_map(|s| match s {
                            Scope::Impl(t) => t.clone(),
                            Scope::Trait(t) => Some(t.clone()),
                            _ => None,
                        });
                        let body = if k < code.len() && code[k] == b'{' {
                            Some((k, match_brace(&code, k) + 1))
                        } else {
                            None
                        };
                        fns.push(FnItem {
                            name,
                            impl_type,
                            modules,
                            is_pub,
                            name_offset,
                            body,
                            is_test: lexed.is_test_line(def_line),
                        });
                        if body.is_some() {
                            pending = Some(Scope::Fn);
                        }
                        i = k;
                    }
                    "Mutex" | "RwLock" => {
                        // Field declaration `name: Mutex<…>` (not
                        // `Arc<Mutex<…>>`, whose Mutex follows `<`).
                        let before = lexed.code[..i].trim_end();
                        let before = before.strip_suffix("sync::").unwrap_or(before);
                        let before = before.strip_suffix("std::").unwrap_or(before).trim_end();
                        if let Some(prefix) = before.strip_suffix(':') {
                            let prefix = prefix.trim_end();
                            if !prefix.ends_with(':') {
                                let field: String = prefix
                                    .chars()
                                    .rev()
                                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                                    .collect::<String>()
                                    .chars()
                                    .rev()
                                    .collect();
                                if !field.is_empty() && !lock_fields.contains(&field) {
                                    lock_fields.push(field);
                                }
                            }
                        }
                        i = after;
                    }
                    _ => {
                        i = after;
                    }
                }
            }
            _ => {
                i += 1;
            }
        }
    }

    lock_fields.sort();
    ParsedFile {
        rel: rel.to_string(),
        class,
        fns,
        lock_fields,
        lexed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_with_modules_impls_and_visibility() {
        let src = r#"
pub fn top(x: u32) -> u32 { x }
pub(crate) fn crate_only() {}
mod inner {
    pub fn nested() {}
}
impl Widget {
    pub fn method(&self) -> usize { self.n }
    fn private_method(&self) {}
}
impl fmt::Display for Widget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
trait Scorer {
    fn decl(&self) -> f64;
    fn with_default(&self) -> f64 { 0.0 }
}
"#;
        let p = parse_file("crates/core/src/widget.rs", src);
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("top").is_pub);
        assert!(!by_name("crate_only").is_pub);
        assert_eq!(by_name("nested").modules, vec!["inner"]);
        assert_eq!(by_name("method").impl_type.as_deref(), Some("Widget"));
        assert!(by_name("method").is_pub);
        assert!(!by_name("private_method").is_pub);
        assert_eq!(by_name("fmt").impl_type.as_deref(), Some("Widget"));
        assert!(by_name("decl").body.is_none());
        assert!(by_name("with_default").body.is_some());
        assert_eq!(by_name("with_default").impl_type.as_deref(), Some("Scorer"));
    }

    #[test]
    fn generic_signatures_and_where_clauses_parse() {
        let src = "pub fn fan_out<F: Fn(usize) -> f64>(n: usize, f: F) -> Vec<f64>\n\
                   where F: Sync {\n    (0..n).map(|i| f(i)).collect()\n}\n\
                   pub fn after() {}\n";
        let p = parse_file("crates/core/src/g.rs", src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "fan_out");
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[1].name, "after");
    }

    #[test]
    fn nested_fns_get_their_own_bodies() {
        let src = "pub fn outer() {\n    fn helper() { inner_call(); }\n    helper();\n}\n";
        let p = parse_file("crates/core/src/n.rs", src);
        assert_eq!(p.fns.len(), 2);
        let outer = &p.fns[0];
        let helper = &p.fns[1];
        let (os, oe) = outer.body.unwrap();
        let (hs, he) = helper.body.unwrap();
        assert!(os < hs && he < oe, "helper nests inside outer");
    }

    #[test]
    fn test_region_functions_are_marked() {
        let src = "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let p = parse_file("crates/core/src/t.rs", src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn lock_fields_are_collected_top_level_only() {
        let src = "struct Fleet {\n    corpora: Mutex<BTreeMap<String, u32>>,\n    \
                   sessions: Mutex<BTreeMap<String, Arc<Mutex<Session>>>>,\n    \
                   stats: std::sync::RwLock<Stats>,\n    plain: u32,\n}\n\
                   static GLOBAL: Mutex<Vec<u8>> = Mutex::new(Vec::new());\n";
        let p = parse_file("crates/serve/src/f.rs", src);
        assert_eq!(
            p.lock_fields,
            vec!["GLOBAL", "corpora", "sessions", "stats"]
        );
    }

    #[test]
    fn file_module_paths_derive_from_rel() {
        let p = parse_file("crates/core/src/selector/margin.rs", "");
        assert_eq!(p.file_modules(), vec!["selector", "margin"]);
        let p = parse_file("crates/core/src/session/mod.rs", "");
        assert_eq!(p.file_modules(), vec!["session"]);
        let p = parse_file("crates/core/src/lib.rs", "");
        assert!(p.file_modules().is_empty());
        assert_eq!(p.krate(), Some("core"));
    }

    #[test]
    fn impl_headers_resolve_self_types() {
        assert_eq!(impl_self_type(" Widget "), Some("Widget".into()));
        assert_eq!(impl_self_type("<T: Foo> Holder<T> "), Some("Holder".into()));
        assert_eq!(
            impl_self_type(" Strategy for MarginSvm<'_> "),
            Some("MarginSvm".into())
        );
        assert_eq!(
            impl_self_type(" fmt::Display for error::AlemError "),
            Some("AlemError".into())
        );
    }
}
