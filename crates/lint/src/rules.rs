//! The project-invariant rule catalog.
//!
//! Every rule guards an invariant the test suite established in earlier
//! PRs and that ordinary Rust tooling cannot know about:
//!
//! | rule | invariant |
//! |---|---|
//! | `determinism-rng` | all randomness flows from a seeded `StdRng`; `thread_rng`/`from_entropy`/`SystemTime` would silently break `RunResult::deterministic_fingerprint` |
//! | `determinism-time` | library timing flows through `alem_obs::Span::finish()`; ad-hoc `Instant::now()` belongs only in `crates/obs` and bench/CLI binaries |
//! | `determinism-hash-iter` | `crates/core` library code uses `BTreeMap`/`BTreeSet` (or sorted vectors), never `HashMap`/`HashSet`, because hash iteration order varies per process |
//! | `no-panic` | library targets of `core`, `mlcore`, `linalg`, `textsim`, `datagen` route failures through `AlemError` instead of `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` |
//! | `par-only-threads` | threads are created only inside `crates/par`: compute fan-outs via `alem_par::Parallelism` (thread-count-invariant chunking), long-lived service threads via `alem_par::supervised::spawn` (named, panic-containing); `thread::spawn`/`thread::scope`/`crossbeam::scope`/`thread::Builder` are flagged everywhere else |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `vendor-path-deps` | every `[workspace.dependencies]` entry is an offline `vendor/` or `crates/` path dependency (PR 1's offline-registry invariant) |
//! | `obs-naming` | instrumented subsystems keep telemetry inside their registered family prefixes (selectors: `select.*`/`feat.*` plus mandatory `select.pairs_scored`; serve: `serve.*`/`checkpoint.*`; flight recorder: `obs.*`) and never hard-code trace ids — ids arrive from the client on the wire |
//! | `flat-feature-store` | `crates/core` library code never allocates a `Vec<Vec<f64>>` feature matrix outside `core::featurestore` — the flat SoA [`FeatureStore`](../../core/src/featurestore.rs) is the one feature-matrix representation (row-per-`Vec` defeats its cache layout and lazy memoization) |
//! | `bad-allow` | an `// alem-lint: allow(...)` annotation must state a non-empty reason |
//!
//! Escape hatch: `// alem-lint: allow(<rule>) -- <reason>` suppresses the
//! named rule on the annotation's line and the line below it. The reason
//! is mandatory — a reasonless allow is itself reported (`bad-allow`) and
//! suppresses nothing.

use crate::lexer::{lex, Lexed};
use std::collections::BTreeMap;
use std::fmt;

/// Crates whose **library targets** must be panic-free (tests, benches,
/// and binaries are exempt; `obs` is exempt because `std::sync::Mutex`
/// poisoning makes `lock().unwrap()` the idiomatic non-poisoned read).
const NO_PANIC_CRATES: &[&str] = &["block", "core", "mlcore", "linalg", "textsim", "datagen"];

/// Obs-name prefix selector modules must use, per DESIGN.md §7.
const SELECTOR_OBS_PREFIX: &str = "select";

/// The counter every selector module must register (§5.1 latency
/// instrumentation: scored = inspected − skipped).
const SELECTOR_REQUIRED_COUNTER: &str = "select.pairs_scored";

/// Which telemetry-name families a file may register, and which counter
/// (if any) it must register. One policy per instrumented subsystem so a
/// new metric cannot silently invent a family the dashboards and
/// `validate_metrics.py --require` lists don't know about.
struct ObsNamingPolicy {
    /// Allowed first segments of dotted obs names.
    families: &'static [&'static str],
    /// A counter the file must register, if the subsystem has one.
    required_counter: Option<&'static str>,
    /// Short label used in diagnostics ("selector", "serve", ...).
    subsystem: &'static str,
}

/// Look up the naming policy for a workspace-relative path; files
/// without a policy get no obs-naming enforcement (their test scaffolding
/// uses throwaway names on purpose).
fn obs_naming_policy(rel: &str) -> Option<ObsNamingPolicy> {
    if rel.starts_with("crates/core/src/selector/") && !rel.ends_with("/mod.rs") {
        // Selectors own `select.*`; the two-phase lazy selector also
        // reports feature-extraction telemetry under `feat.*`
        // (`feat.phase1_only`), the family the feature store shares.
        return Some(ObsNamingPolicy {
            families: &[SELECTOR_OBS_PREFIX, "feat"],
            required_counter: Some(SELECTOR_REQUIRED_COUNTER),
            subsystem: "selector",
        });
    }
    if rel.starts_with("crates/serve/src/") {
        // The fleet emits `serve.*` plus the checkpoint spans shared with
        // the session store; admin-plane additions stay inside `serve.*`
        // (e.g. `serve.admin.*`).
        return Some(ObsNamingPolicy {
            families: &["serve", "checkpoint"],
            required_counter: None,
            subsystem: "serve",
        });
    }
    if rel.starts_with("crates/block/src/") {
        // Candidate generation owns `block.*`: index build/probe spans
        // and the pairs-emitted counters of DESIGN.md §13.
        return Some(ObsNamingPolicy {
            families: &["block"],
            required_counter: None,
            subsystem: "blocking",
        });
    }
    if rel == "crates/obs/src/flight.rs" {
        return Some(ObsNamingPolicy {
            families: &["obs"],
            required_counter: None,
            subsystem: "flight recorder",
        });
    }
    None
}

/// How a source file participates in the build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// Part of a crate's library target; `krate` is the directory name
    /// under `crates/`.
    Lib {
        /// Crate directory name (e.g. `"core"` for `alem-core`).
        krate: String,
    },
    /// A binary, bench, test, or example target.
    NonLib,
    /// Not scanned (vendored shims, lint fixtures, build output).
    Skip,
}

/// Classify a workspace-relative path (unix separators).
pub fn classify(rel: &str) -> FileClass {
    if rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.contains("/fixtures/")
        || rel.starts_with(".")
    {
        return FileClass::Skip;
    }
    if rel.starts_with("examples/") || rel.starts_with("tests/") {
        return FileClass::NonLib;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let Some((krate, inner)) = rest.split_once('/') else {
            return FileClass::Skip;
        };
        if krate == "cli" {
            // The CLI crate is a single binary target.
            return FileClass::NonLib;
        }
        if inner.starts_with("benches/")
            || inner.starts_with("tests/")
            || inner.starts_with("examples/")
            || inner.starts_with("src/bin/")
            || inner == "src/main.rs"
        {
            return FileClass::NonLib;
        }
        if inner.starts_with("src/") {
            return FileClass::Lib {
                krate: krate.to_string(),
            };
        }
        return FileClass::Skip;
    }
    FileClass::Skip
}

/// Default severity of a rule, rendered in diagnostics. Severity is
/// presentational: the exit code and the CI gate count every
/// non-baselined finding regardless of severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates a hard invariant.
    Error,
    /// Worth a look; over-approximation is expected.
    Warning,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Registry entry for one rule: identifier, default severity, one-line
/// rationale.
pub struct RuleMeta {
    /// Rule identifier (`no-panic`, `panic-reach`, …).
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line description of the guarded invariant.
    pub doc: &'static str,
}

/// Register the rule catalog in one table: identifier, severity, doc,
/// and — for per-file lexical rules — the dispatch function `lint_source`
/// drives. Semantic (interprocedural) and structural (crate-root,
/// manifest, walker-level) rules register metadata only; their drivers
/// live in [`crate::analyses`] and the dedicated entry points.
macro_rules! rules {
    ($($id:literal { severity: $sev:ident $(, dispatch: $run:expr)? $(,)? }: $doc:literal),+ $(,)?) => {
        /// Every rule the linter can emit.
        pub const RULES: &[RuleMeta] = &[
            $(RuleMeta { id: $id, severity: Severity::$sev, doc: $doc }),+
        ];
        /// Lexical rules dispatched per file, in registration order.
        const LEXICAL_RULES: &[fn(&mut Ctx<'_>, &FileClass)] = &[
            $($($run,)?)+
        ];
    };
}

rules! {
    "determinism-rng" { severity: Error, dispatch: rule_determinism_rng }:
        "ambient RNG/time sources would silently break deterministic fingerprints",
    "determinism-time" { severity: Error, dispatch: rule_determinism_time }:
        "library timing flows through alem_obs::Span::finish(), not Instant::now()",
    "determinism-hash-iter" { severity: Error, dispatch: rule_hash_iter }:
        "core library code orders its maps (BTree or sorted); hash iteration varies per process",
    "no-panic" { severity: Error, dispatch: rule_no_panic }:
        "no-panic crates route failures through AlemError, never unwrap/expect/panic!",
    "par-only-threads" { severity: Error, dispatch: rule_par_only_threads }:
        "threads are created only inside crates/par (Parallelism / supervised::spawn)",
    "flat-feature-store" { severity: Error, dispatch: rule_flat_feature_store }:
        "core allocates no Vec<Vec<f64>> feature matrix outside core::featurestore",
    "obs-naming" { severity: Error, dispatch: rule_obs_naming_dispatch }:
        "telemetry names stay inside registered families; trace ids arrive on the wire",
    "bad-allow" { severity: Error }:
        "an alem-lint allow annotation must state a non-empty reason",
    "forbid-unsafe" { severity: Error }:
        "every crate root carries #![forbid(unsafe_code)]",
    "vendor-path-deps" { severity: Error }:
        "workspace dependencies resolve to offline vendor/ or crates/ paths",
    "panic-reach" { severity: Error }:
        "no pub library API has a transitive call path to unwrap/expect/panic!",
    "index-reach" { severity: Warning }:
        "no pub orchestration API reaches unchecked slice indexing (kernels exempt)",
    "determinism-taint" { severity: Error }:
        "no nondeterminism source reaches a fingerprint-relevant sink along the call graph",
    "lock-discipline" { severity: Error }:
        "no IO/serialization/cyclic lock acquisition while a registry/fleet/session guard is live",
}

/// Default severity of a rule id (unknown ids default to error).
pub fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.id == rule)
        .map(|r| r.severity)
        .unwrap_or(Severity::Error)
}

/// One hop of a call chain or taint path attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Fully qualified symbol (`core::session::Session::step`).
    pub symbol: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line (the symbol's definition, or the offending site for
    /// the terminal frame).
    pub line: usize,
    /// Terminal annotation (`unwrap`, `ambient rng`, …); empty for
    /// intermediate hops.
    pub note: String,
}

/// One diagnostic produced by the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `"no-panic"`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Interprocedural call chain / taint path (empty for lexical rules).
    pub chain: Vec<Frame>,
}

impl Finding {
    /// Construct a chainless finding.
    pub fn new(rule: &'static str, path: String, line: usize, col: usize, message: String) -> Self {
        Finding {
            rule,
            path,
            line,
            col,
            message,
            chain: Vec::new(),
        }
    }

    /// Attach an interprocedural chain.
    pub fn with_chain(mut self, chain: Vec<Frame>) -> Self {
        self.chain = chain;
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[{}]: {}",
            severity_of(self.rule).label(),
            self.rule,
            self.message
        )?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        for fr in &self.chain {
            write!(f, "\n  = {} ({}:{})", fr.symbol, fr.path, fr.line)?;
            if !fr.note.is_empty() {
                write!(f, " — {}", fr.note)?;
            }
        }
        Ok(())
    }
}

/// Per-file allow annotations: rule → lines where it is suppressed.
pub(crate) struct Allows {
    by_rule: BTreeMap<String, Vec<usize>>,
    bad: Vec<(usize, String)>,
}

/// Parse `// alem-lint: allow(<rule>) -- <reason>` annotations. The
/// suppression covers the comment's own line and the next line (so the
/// annotation can sit inline or on the line above the flagged code).
pub(crate) fn parse_allows(lexed: &Lexed) -> Allows {
    let mut by_rule: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.trim().strip_prefix("alem-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad.push((
                c.line,
                format!("unrecognized alem-lint annotation: `{rest}`"),
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            bad.push((c.line, "unclosed `allow(` annotation".to_string()));
            continue;
        };
        let rule = args[..close].trim().to_string();
        let tail = args[close + 1..].trim();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad.push((
                c.line,
                format!("allow({rule}) needs a reason: `// alem-lint: allow({rule}) -- <why>`"),
            ));
            continue;
        }
        by_rule
            .entry(rule)
            .or_default()
            .extend([c.line, c.line + 1]);
    }
    Allows { by_rule, bad }
}

impl Allows {
    pub(crate) fn covers(&self, rule: &str, line: usize) -> bool {
        self.by_rule.get(rule).is_some_and(|ls| ls.contains(&line))
    }
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets where `word` occurs as a whole identifier in `code`.
fn ident_occurrences(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before = start == 0 || !is_ident_byte(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if ok_before && ok_after {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// First non-whitespace byte at or after `from`.
fn next_nonspace(code: &str, from: usize) -> Option<u8> {
    code.as_bytes()[from..]
        .iter()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

/// The trimmed code immediately preceding `offset` (used to attribute a
/// string literal to the call it is an argument of, tolerating rustfmt
/// line breaks).
fn preceding_code(code: &str, offset: usize) -> &str {
    code[..offset].trim_end()
}

struct Ctx<'a> {
    rel: &'a str,
    lexed: &'a Lexed,
    allows: &'a Allows,
    findings: &'a mut Vec<Finding>,
}

impl Ctx<'_> {
    fn report(&mut self, rule: &'static str, offset: usize, message: String) {
        let (line, col) = self.lexed.position(offset);
        if self.allows.covers(rule, line) {
            return;
        }
        self.findings
            .push(Finding::new(rule, self.rel.to_string(), line, col, message));
    }

    fn report_at_line(&mut self, rule: &'static str, line: usize, message: String) {
        if self.allows.covers(rule, line) {
            return;
        }
        self.findings
            .push(Finding::new(rule, self.rel.to_string(), line, 1, message));
    }
}

/// Lint one source file. `rel` is the workspace-relative path (unix
/// separators) — it determines which rules apply via [`classify`].
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let class = classify(rel);
    if class == FileClass::Skip {
        return Vec::new();
    }
    let lexed = lex(source);
    let allows = parse_allows(&lexed);
    let mut findings = Vec::new();
    let mut ctx = Ctx {
        rel,
        lexed: &lexed,
        allows: &allows,
        findings: &mut findings,
    };

    for (line, msg) in &allows.bad {
        ctx.report_at_line("bad-allow", *line, msg.clone());
    }

    for rule in LEXICAL_RULES {
        rule(&mut ctx, &class);
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// `thread_rng` / `from_entropy` / `SystemTime` anywhere in the workspace
/// (including tests and benches — a nondeterministic test is a flaky
/// test).
fn rule_determinism_rng(ctx: &mut Ctx<'_>, _class: &FileClass) {
    for word in ["thread_rng", "from_entropy", "SystemTime"] {
        for off in ident_occurrences(&ctx.lexed.code, word) {
            ctx.report(
                "determinism-rng",
                off,
                format!(
                    "`{word}` injects ambient nondeterminism; derive every RNG from the \
                     session's master seed (see session::derive_rng) and take timestamps \
                     from the obs registry"
                ),
            );
        }
    }
}

/// Raw thread creation (`thread::spawn` / `thread::scope` /
/// `crossbeam::scope`, and the `thread::Builder` escape hatch) anywhere
/// outside `crates/par`. Compute fan-outs must go through
/// `alem_par::Parallelism`, whose fixed chunking keeps results
/// byte-identical for any thread count; long-lived service threads
/// (accept loops, per-connection workers) must go through
/// `alem_par::supervised::spawn`, which names the thread and contains its
/// panics as data instead of silently unwinding a detached worker.
fn rule_par_only_threads(ctx: &mut Ctx<'_>, _class: &FileClass) {
    if ctx.rel.starts_with("crates/par/") {
        return;
    }
    for word in ["spawn", "scope", "Builder"] {
        for off in ident_occurrences(&ctx.lexed.code, word) {
            let before = preceding_code(&ctx.lexed.code, off);
            if before.ends_with("thread::") || before.ends_with("crossbeam::") {
                let message = if word == "Builder" {
                    "`thread::Builder` bypasses the workspace thread audit surface: \
                     spawn long-lived named threads via `alem_par::supervised::spawn` \
                     (panic containment included) and compute fan-outs via \
                     `alem_par::Parallelism`"
                        .to_string()
                } else {
                    format!(
                        "`{word}` spawns raw threads outside crates/par: fan out through \
                         `alem_par::Parallelism` so chunk boundaries stay a pure function \
                         of (len, n_threads) and results are thread-count-invariant"
                    )
                };
                ctx.report("par-only-threads", off, message);
            }
        }
    }
}

/// `Instant::now()` in library code — timing must come from
/// `Span::finish()` so enabling/disabling telemetry cannot skew results.
fn rule_determinism_time(ctx: &mut Ctx<'_>, class: &FileClass) {
    let FileClass::Lib { krate } = class else {
        return;
    };
    if krate == "obs" {
        return;
    }
    for off in ident_occurrences(&ctx.lexed.code, "Instant") {
        let after = off + "Instant".len();
        let rest = &ctx.lexed.code[after..];
        let trimmed = rest.trim_start();
        if let Some(t) = trimmed.strip_prefix("::") {
            if t.trim_start().starts_with("now") {
                ctx.report(
                    "determinism-time",
                    off,
                    "`Instant::now()` in library code: source wall-clock timing from \
                     `alem_obs::Span::finish()` instead (obs and bench/CLI binaries are exempt)"
                        .to_string(),
                );
            }
        }
    }
}

/// `HashMap`/`HashSet` in `crates/core` library code. Hash iteration
/// order varies per process, which is exactly the kind of drift
/// `deterministic_fingerprint` exists to catch; membership-only uses that
/// provably never iterate may carry an allow annotation.
fn rule_hash_iter(ctx: &mut Ctx<'_>, class: &FileClass) {
    if *class
        != (FileClass::Lib {
            krate: "core".to_string(),
        })
    {
        return;
    }
    for word in ["HashMap", "HashSet"] {
        for off in ident_occurrences(&ctx.lexed.code, word) {
            let (line, _) = ctx.lexed.position(off);
            if ctx.lexed.is_test_line(line) {
                continue;
            }
            ctx.report(
                "determinism-hash-iter",
                off,
                format!(
                    "`{word}` in fingerprint-affecting core code: iteration order varies \
                     per process — use `BTreeMap`/`BTreeSet` or sort before iterating"
                ),
            );
        }
    }
}

/// Does `code[off..]` (which starts with the identifier `Vec`) spell a
/// nested `Vec<Vec<f64>>`, tolerating arbitrary whitespace between
/// tokens (rustfmt may split the type across lines)?
fn is_nested_vec_f64(code: &str, off: usize) -> bool {
    let mut rest = code[off + "Vec".len()..].trim_start();
    for tok in ["<", "Vec", "<", "f64", ">"] {
        match rest.strip_prefix(tok) {
            Some(r) => rest = r.trim_start(),
            None => return false,
        }
    }
    rest.starts_with('>')
}

/// `Vec<Vec<f64>>` in `crates/core` library code outside
/// `core::featurestore`. The flat SoA [`FeatureStore`] is the one
/// feature-matrix representation: a row-per-`Vec` matrix defeats its
/// cache-friendly layout and the per-pair lazy memoization built on it.
fn rule_flat_feature_store(ctx: &mut Ctx<'_>, class: &FileClass) {
    if *class
        != (FileClass::Lib {
            krate: "core".to_string(),
        })
        || ctx.rel == "crates/core/src/featurestore.rs"
    {
        return;
    }
    for off in ident_occurrences(&ctx.lexed.code, "Vec") {
        if !is_nested_vec_f64(&ctx.lexed.code, off) {
            continue;
        }
        let (line, _) = ctx.lexed.position(off);
        if ctx.lexed.is_test_line(line) {
            continue;
        }
        ctx.report(
            "flat-feature-store",
            off,
            "`Vec<Vec<f64>>` feature matrix outside core::featurestore: use the \
             flat SoA `FeatureStore` (or borrow rows as `&[Vec<f64>]` from it) so \
             feature storage stays contiguous and lazily memoized"
                .to_string(),
        );
    }
}

/// Panicking constructs in library targets of the no-panic crates.
fn rule_no_panic(ctx: &mut Ctx<'_>, class: &FileClass) {
    let FileClass::Lib { krate } = class else {
        return;
    };
    if !NO_PANIC_CRATES.contains(&krate.as_str()) {
        return;
    }
    for method in ["unwrap", "expect"] {
        for off in ident_occurrences(&ctx.lexed.code, method) {
            let (line, _) = ctx.lexed.position(off);
            if ctx.lexed.is_test_line(line) {
                continue;
            }
            if next_nonspace(&ctx.lexed.code, off + method.len()) != Some(b'(') {
                continue; // `unwrap_or`, path mention, etc.
            }
            ctx.report(
                "no-panic",
                off,
                format!(
                    "`.{method}()` in library code: return an `AlemError` on reachable \
                     failures, or state the invariant with \
                     `// alem-lint: allow(no-panic) -- <why>`"
                ),
            );
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for off in ident_occurrences(&ctx.lexed.code, mac) {
            let (line, _) = ctx.lexed.position(off);
            if ctx.lexed.is_test_line(line) {
                continue;
            }
            if next_nonspace(&ctx.lexed.code, off + mac.len()) != Some(b'!') {
                continue;
            }
            ctx.report(
                "no-panic",
                off,
                format!(
                    "`{mac}!` in library code: user-reachable failures must surface as \
                     `AlemError` (tests, benches, and binaries are exempt)"
                ),
            );
        }
    }
}

/// Telemetry naming in instrumented subsystems: every name passed to
/// `span`/`counter_add`/`gauge_set` must be a dotted lowercase identifier
/// whose first segment is one of the policy's families, and the file must
/// register the policy's required counter (if any). Hard-coded trace ids
/// (`trace_scope(Some("..."))` outside tests) are flagged too: trace ids
/// belong to the caller, not the instrumented code.
fn rule_obs_naming_dispatch(ctx: &mut Ctx<'_>, _class: &FileClass) {
    if let Some(policy) = obs_naming_policy(ctx.rel) {
        rule_obs_naming(ctx, &policy);
    }
}

fn rule_obs_naming(ctx: &mut Ctx<'_>, policy: &ObsNamingPolicy) {
    const CALLS: &[&str] = &["span(", "counter_add(", "gauge_set("];
    let mut registers_required = policy.required_counter.is_none();
    for lit in &ctx.lexed.strings {
        let (line, _) = ctx.lexed.position(lit.offset);
        let in_test = ctx.lexed.is_test_line(line);
        let before = preceding_code(&ctx.lexed.code, lit.offset);
        if !in_test && before.ends_with("trace_scope(Some(") {
            ctx.report(
                "obs-naming",
                lit.offset,
                format!(
                    "hard-coded trace id `{}`: trace ids are supplied by the client on \
                     the wire (`Request.trace_id`), never invented inside the {}",
                    lit.value, policy.subsystem
                ),
            );
            continue;
        }
        let is_obs_name = CALLS.iter().any(|c| before.ends_with(c));
        if !is_obs_name || in_test {
            continue;
        }
        if Some(lit.value.as_str()) == policy.required_counter {
            registers_required = true;
        }
        let mut parts = lit.value.split('.');
        let family = parts.next().unwrap_or("");
        let prefix_ok = policy.families.contains(&family);
        let mut saw_segment = false;
        let segments_ok = parts.all(|s| {
            saw_segment = true;
            !s.is_empty()
                && s.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        });
        if !(prefix_ok && segments_ok && saw_segment) {
            ctx.report(
                "obs-naming",
                lit.offset,
                format!(
                    "obs name `{}` violates the {} naming scheme: `<family>.<segment>` \
                     with family in {:?} and lowercase `[a-z0-9_]` segments (DESIGN.md §8)",
                    lit.value, policy.subsystem, policy.families
                ),
            );
        }
    }
    if !registers_required {
        let required = policy.required_counter.unwrap_or_default();
        ctx.report_at_line(
            "obs-naming",
            1,
            format!(
                "{} module never registers `{required}`: every selector must count \
                 scored pairs (§5.1 latency instrumentation)",
                policy.subsystem
            ),
        );
    }
}

/// Crate-root hygiene: `#![forbid(unsafe_code)]` must appear in the root
/// file's code (a commented-out attribute does not count).
pub fn lint_crate_root(rel: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    if lexed.code.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    vec![Finding::new(
        "forbid-unsafe",
        rel.to_string(),
        1,
        1,
        "crate root is missing `#![forbid(unsafe_code)]` (workspace hygiene rule)".to_string(),
    )]
}

/// Manifest hygiene: every `[workspace.dependencies]` entry must resolve
/// to an in-tree path (`vendor/` shims for third-party names, `crates/`
/// for workspace members) — the offline-registry invariant from PR 1.
pub fn lint_workspace_manifest(rel: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_section = false;
    for (i, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_section = line == "[workspace.dependencies]";
            continue;
        }
        if !in_section || line.is_empty() || line.starts_with('#') || !line.contains('=') {
            continue;
        }
        if line.contains("path = \"vendor/") || line.contains("path = \"crates/") {
            continue;
        }
        let name = line.split('=').next().unwrap_or("").trim();
        findings.push(Finding::new(
            "vendor-path-deps",
            rel.to_string(),
            i + 1,
            1,
            format!(
                "workspace dependency `{name}` is not a `vendor/`/`crates/` path dep; \
                 the build environment has no registry access (see vendor/README.md)"
            ),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_targets() {
        assert_eq!(
            classify("crates/core/src/session.rs"),
            FileClass::Lib {
                krate: "core".into()
            }
        );
        assert_eq!(classify("crates/core/tests/x.rs"), FileClass::NonLib);
        assert_eq!(classify("crates/bench/src/bin/smoke.rs"), FileClass::NonLib);
        assert_eq!(
            classify("crates/bench/benches/pipeline.rs"),
            FileClass::NonLib
        );
        assert_eq!(classify("crates/cli/src/main.rs"), FileClass::NonLib);
        assert_eq!(classify("crates/cli/src/pipeline.rs"), FileClass::NonLib);
        assert_eq!(classify("tests/end_to_end.rs"), FileClass::NonLib);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::NonLib);
        assert_eq!(classify("vendor/rand/src/lib.rs"), FileClass::Skip);
        assert_eq!(
            classify("crates/lint/tests/fixtures/no_panic.rs"),
            FileClass::Skip
        );
    }

    #[test]
    fn unwrap_flagged_in_lib_not_in_tests_dir() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let lib = lint_source("crates/core/src/session.rs", src);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib[0].rule, "no-panic");
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        assert!(lint_source("tests/t.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(lint_source("crates/core/src/session.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_without_reason_reports() {
        let good = "// alem-lint: allow(no-panic) -- provably Some: guarded above\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("crates/core/src/session.rs", good).is_empty());

        let bad = "// alem-lint: allow(no-panic)\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let out = lint_source("crates/core/src/session.rs", bad);
        let rules: Vec<&str> = out.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"bad-allow"), "{out:?}");
        assert!(rules.contains(&"no-panic"), "{out:?}");
    }

    #[test]
    fn raw_threads_flagged_everywhere_but_par() {
        let src = "pub fn f() { std::thread::spawn(|| {}); }\n\
                   pub fn g() { std::thread::scope(|_| {}); }\n\
                   pub fn h() { crossbeam::scope(|_| {}); }\n";
        for rel in [
            "crates/bench/src/runner.rs",
            "crates/core/src/session.rs",
            "tests/end_to_end.rs",
        ] {
            let out = lint_source(rel, src);
            assert_eq!(out.len(), 3, "{rel}: {out:?}");
            assert!(out.iter().all(|f| f.rule == "par-only-threads"), "{out:?}");
        }
        // crates/par is the one place raw threads are allowed to live.
        assert!(lint_source("crates/par/src/lib.rs", src).is_empty());
        // Non-fan-out uses of the idents are not flagged.
        let benign = "pub fn f(scope: u32) -> u32 { scope }\n\
                      pub fn g() { tokio::spawn(async {}); }\n";
        assert!(lint_source("crates/core/src/session.rs", benign)
            .iter()
            .all(|f| f.rule != "par-only-threads"));
        // An allow annotation with a reason suppresses the finding.
        let allowed = "// alem-lint: allow(par-only-threads) -- watchdog thread, no data fan-out\n\
                       pub fn f() { std::thread::spawn(|| {}); }\n";
        assert!(lint_source("crates/core/src/session.rs", allowed).is_empty());
        // thread::Builder is the bypass the rule closes; the supervised
        // entry point in alem-par is the sanctioned replacement.
        let builder = "pub fn f() { let _ = std::thread::Builder::new(); }\n";
        let out = lint_source("crates/serve/src/lib.rs", builder);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "par-only-threads");
        let sanctioned = "pub fn f() { alem_par::supervised::spawn(\"w\", || ()).unwrap(); }\n";
        assert!(lint_source("crates/serve/src/lib.rs", sanctioned).is_empty());
    }

    #[test]
    fn nested_feature_matrix_flagged_in_core_outside_featurestore() {
        let src = "pub fn f(n: usize) -> Vec<Vec<f64>> { Vec::new() }\n";
        let out = lint_source("crates/core/src/strategy.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "flat-feature-store");
        // Whitespace between tokens (rustfmt line breaks) still matches.
        let split = "pub fn f() -> Vec<\n    Vec<f64>\n> { Vec::new() }\n";
        assert_eq!(lint_source("crates/core/src/strategy.rs", split).len(), 1);
        // The flat store itself, other crates, and test targets are exempt.
        assert!(lint_source("crates/core/src/featurestore.rs", src).is_empty());
        assert!(lint_source("crates/mlcore/src/forest.rs", src).is_empty());
        assert!(lint_source("crates/core/tests/t.rs", src).is_empty());
        // Flat rows and borrowed nested slices are not allocations.
        let flat = "pub fn f(rows: &[Vec<f64>]) -> Vec<f64> { rows[0].clone() }\n";
        assert!(lint_source("crates/core/src/strategy.rs", flat).is_empty());
        // An allow annotation with a reason suppresses the finding.
        let allowed = "// alem-lint: allow(flat-feature-store) -- ingestion seam\n\
                       pub fn f() -> Vec<Vec<f64>> { Vec::new() }\n";
        assert!(lint_source("crates/core/src/strategy.rs", allowed).is_empty());
    }

    #[test]
    fn selector_obs_policy_admits_feat_family() {
        let src = r#"pub fn select(obs: &Registry) {
    obs.counter_add("select.pairs_scored", 1);
    obs.counter_add("feat.phase1_only", 1);
}
"#;
        assert!(lint_source("crates/core/src/selector/lazy_margin.rs", src).is_empty());
    }

    #[test]
    fn manifest_rule_flags_registry_deps() {
        let good = "[workspace.dependencies]\nrand = { path = \"vendor/rand\" }\n";
        assert!(lint_workspace_manifest("Cargo.toml", good).is_empty());
        let bad = "[workspace.dependencies]\nrand = \"0.8\"\n";
        let out = lint_workspace_manifest("Cargo.toml", bad);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "vendor-path-deps");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn obs_naming_checks_prefix_and_required_counter() {
        let src = r#"pub fn select(obs: &Registry) {
    obs.counter_add("selector.pairs", 1);
}
"#;
        let out = lint_source("crates/core/src/selector/margin.rs", src);
        assert_eq!(out.len(), 2, "{out:?}"); // bad prefix + missing pairs_scored
        let ok = r#"pub fn select(obs: &Registry) {
    let span = obs.span("select.score");
    obs.counter_add("select.pairs_scored", 1);
}
"#;
        assert!(lint_source("crates/core/src/selector/margin.rs", ok).is_empty());
    }

    #[test]
    fn obs_naming_scopes_families_per_subsystem() {
        // The serve crate may mix `serve.*` and `checkpoint.*`, nothing else.
        let serve = r#"pub fn f(obs: &Registry) {
    obs.counter_add("serve.requests", 1);
    let s = obs.span("checkpoint.write");
    obs.gauge_set("select.pairs", 1);
}
"#;
        let out = lint_source("crates/serve/src/fleet.rs", serve);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].rule, out[0].line), ("obs-naming", 4));

        // The flight recorder stays under `obs.*`.
        let flight = r#"pub fn f(obs: &Registry) {
    obs.counter_add("obs.flight.dumps", 1);
    obs.counter_add("flight.dumps", 1);
}
"#;
        let out = lint_source("crates/obs/src/flight.rs", flight);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].rule, out[0].line), ("obs-naming", 3));

        // Hard-coded trace ids are flagged outside tests.
        let traced = "pub fn f() { let _t = alem_obs::trace_scope(Some(\"fixed\")); }\n";
        let out = lint_source("crates/serve/src/server.rs", traced);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "obs-naming");
        assert!(out[0].message.contains("hard-coded trace id"));
    }
}
