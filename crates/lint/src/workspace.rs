//! Workspace discovery and whole-tree linting.
//!
//! The walker is the one place file discovery happens: it skips build
//! output, vendored shims, fixtures, and results wholesale, refuses to
//! follow directory symlinks (a cycle or an out-of-tree link must not
//! grow the scan set), and de-duplicates files reachable through more
//! than one path — with multiple `path = "…"` dependencies onto the same
//! crate, naive walking would lint (and count) a file once per route.

use crate::analyses;
use crate::baseline;
use crate::rules::{self, Finding};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into, at any depth.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "results"];

/// Recursively collect `.rs` files under `dir`, returning paths relative
/// to `root` with unix separators, in sorted (deterministic) order.
/// `seen` holds canonical paths of files already collected, so a file
/// reachable through several routes (path deps, links) is scanned once.
fn collect_rs(
    root: &Path,
    dir: &Path,
    seen: &mut BTreeSet<PathBuf>,
    out: &mut Vec<String>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let is_symlink = path.symlink_metadata().is_ok_and(|m| m.is_symlink());
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') || is_symlink {
                continue;
            }
            collect_rs(root, &path, seen, out)?;
        } else if name.ends_with(".rs") {
            let canonical = fs::canonicalize(&path).unwrap_or_else(|_| path.clone());
            if !seen.insert(canonical) {
                continue;
            }
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                if !out.contains(&rel) {
                    out.push(rel);
                }
            }
        }
    }
    Ok(())
}

/// Summary of a whole-workspace lint pass.
#[derive(Debug)]
pub struct Report {
    /// All non-baselined findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by the committed baseline.
    pub baselined: usize,
}

/// Knobs for [`lint_workspace_with`].
pub struct Options {
    /// Run the interprocedural analyses (call graph, panic-reach, taint,
    /// lock discipline) in addition to the per-file lexical rules.
    pub semantic: bool,
    /// Subtract the committed baseline from the findings. Disabled when
    /// regenerating the baseline itself.
    pub apply_baseline: bool,
    /// Baseline file; `None` means `<root>/lint-baseline.json`.
    pub baseline_path: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            semantic: true,
            apply_baseline: true,
            baseline_path: None,
        }
    }
}

/// Lint the workspace rooted at `root` with default options.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    lint_workspace_with(root, &Options::default())
}

/// Lint the workspace rooted at `root`: every non-vendored `.rs` source
/// (lexical rules, then the semantic analyses over the whole set), every
/// crate root (for `forbid-unsafe`), and the root manifest (for
/// `vendor-path-deps`).
pub fn lint_workspace_with(root: &Path, opts: &Options) -> io::Result<Report> {
    let mut rels = Vec::new();
    collect_rs(root, root, &mut BTreeSet::new(), &mut rels)?;

    let mut findings = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in &rels {
        let source = fs::read_to_string(root.join(rel))?;
        findings.extend(rules::lint_source(rel, &source));
        sources.push((rel.clone(), source));
    }
    let files_scanned = sources.len();

    if opts.semantic {
        findings.extend(analyses::analyze_files(&sources));
    }

    // Crate roots: lib.rs when present, else main.rs.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let lib = dir.join("src/lib.rs");
            let main = dir.join("src/main.rs");
            let crate_root = if lib.is_file() {
                lib
            } else if main.is_file() {
                main
            } else {
                continue;
            };
            let rel = crate_root
                .strip_prefix(root)
                .unwrap_or(&crate_root)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let source = fs::read_to_string(&crate_root)?;
            findings.extend(rules::lint_crate_root(&rel, &source));
        }
    }

    let manifest = root.join("Cargo.toml");
    if manifest.is_file() {
        let source = fs::read_to_string(&manifest)?;
        findings.extend(rules::lint_workspace_manifest("Cargo.toml", &source));
    }

    let mut baselined = 0usize;
    if opts.apply_baseline {
        let path = opts
            .baseline_path
            .clone()
            .unwrap_or_else(|| root.join(baseline::BASELINE_FILE));
        if let Ok(text) = fs::read_to_string(&path) {
            let keys = baseline::parse(&text);
            let (fresh, matched) = baseline::apply(findings, &keys);
            findings = fresh;
            baselined = matched;
        }
    }

    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(Report {
        findings,
        files_scanned,
        baselined,
    })
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
        }
        dir = d.parent();
    }
    None
}
