//! Workspace discovery and whole-tree linting.

use crate::rules::{self, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "results"];

/// Recursively collect `.rs` files under `dir`, returning paths relative
/// to `root` with unix separators, in sorted (deterministic) order.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Summary of a whole-workspace lint pass.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lint the workspace rooted at `root`: every non-vendored `.rs` source,
/// every crate root (for `forbid-unsafe`), and the root manifest (for
/// `vendor-path-deps`).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;

    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        files_scanned += 1;
        findings.extend(rules::lint_source(rel, &source));
    }

    // Crate roots: lib.rs when present, else main.rs.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let lib = dir.join("src/lib.rs");
            let main = dir.join("src/main.rs");
            let crate_root = if lib.is_file() {
                lib
            } else if main.is_file() {
                main
            } else {
                continue;
            };
            let rel = crate_root
                .strip_prefix(root)
                .unwrap_or(&crate_root)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let source = fs::read_to_string(&crate_root)?;
            findings.extend(rules::lint_crate_root(&rel, &source));
        }
    }

    let manifest = root.join("Cargo.toml");
    if manifest.is_file() {
        let source = fs::read_to_string(&manifest)?;
        findings.extend(rules::lint_workspace_manifest("Cargo.toml", &source));
    }

    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(Report {
        findings,
        files_scanned,
    })
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
        }
        dir = d.parent();
    }
    None
}
