//! Fixture-driven rule tests: each file under `crates/lint/fixtures/` is
//! scanned under a fake workspace-relative path, and the produced
//! diagnostics are checked rule-by-rule with exact `file:line` positions —
//! the contract CI consumes via `--json`.

use alem_lint::{lint_crate_root, lint_source, lint_workspace_manifest, Finding};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

fn rule_lines(findings: &[Finding]) -> Vec<(&str, usize)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn determinism_fixture_flags_rng_time_sources() {
    let out = lint_source("crates/core/src/determinism.rs", &fixture("determinism.rs"));
    assert_eq!(
        rule_lines(&out),
        vec![
            ("determinism-rng", 4),   // use rand::thread_rng
            ("determinism-rng", 5),   // SystemTime in the use list
            ("determinism-rng", 8),   // thread_rng()
            ("determinism-rng", 13),  // SystemTime::now()
            ("determinism-time", 17)  // Instant::now()
        ],
        "{out:#?}"
    );
    // The same file as a bench binary keeps the rng findings but drops the
    // library-only timing rule.
    let bench = lint_source("crates/bench/src/bin/x.rs", &fixture("determinism.rs"));
    assert!(
        bench.iter().all(|f| f.rule == "determinism-rng"),
        "{bench:#?}"
    );
    assert_eq!(bench.len(), 4);
}

#[test]
fn no_panic_fixture_flags_lib_panics_and_reasonless_allows() {
    let out = lint_source("crates/core/src/no_panic.rs", &fixture("no_panic.rs"));
    assert_eq!(
        rule_lines(&out),
        vec![
            ("no-panic", 5),   // bare unwrap
            ("no-panic", 9),   // bare expect
            ("no-panic", 13),  // panic!
            ("bad-allow", 22), // allow without reason
            ("no-panic", 23),  // ...which therefore suppresses nothing
        ],
        "{out:#?}"
    );
    // The annotated unreachable! (line 18) and the #[cfg(test)] unwrap are
    // absent from the list above; in a test target nothing fires except
    // the malformed annotation itself.
    let test_target = lint_source("crates/core/tests/no_panic.rs", &fixture("no_panic.rs"));
    assert_eq!(rule_lines(&test_target), vec![("bad-allow", 22)]);
}

#[test]
fn hash_iter_fixture_flags_core_lib_only() {
    let out = lint_source("crates/core/src/hash_iter.rs", &fixture("hash_iter.rs"));
    assert_eq!(out.len(), 6, "{out:#?}");
    assert!(out.iter().all(|f| f.rule == "determinism-hash-iter"));
    assert_eq!(
        out.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![3, 3, 6, 6, 7, 7]
    );
    // The annotated membership-only set on line 16 is suppressed, and the
    // rule is scoped to crates/core: the same code in mlcore is clean.
    assert!(lint_source("crates/mlcore/src/hash_iter.rs", &fixture("hash_iter.rs")).is_empty());
}

#[test]
fn feature_matrix_fixture_flags_nested_rows_in_core_lib_only() {
    let out = lint_source(
        "crates/core/src/feature_matrix.rs",
        &fixture("feature_matrix.rs"),
    );
    assert_eq!(
        rule_lines(&out),
        vec![
            ("flat-feature-store", 3), // dense Vec<Vec<f64>> return type
            ("flat-feature-store", 7), // the same type split across lines
        ],
        "{out:#?}"
    );
    // Flat rows, borrowed `&[Vec<f64>]`, the annotated seam, and the
    // #[cfg(test)] matrix are all absent above. The flat store itself is
    // the sanctioned home for the nested form, and the rule is scoped to
    // crates/core library code.
    assert!(lint_source(
        "crates/core/src/featurestore.rs",
        &fixture("feature_matrix.rs")
    )
    .is_empty());
    assert!(lint_source("crates/mlcore/src/data.rs", &fixture("feature_matrix.rs")).is_empty());
    assert!(lint_source("crates/core/tests/fm.rs", &fixture("feature_matrix.rs")).is_empty());
}

#[test]
fn crate_root_fixture_requires_uncommented_forbid() {
    let out = lint_crate_root(
        "crates/x/src/lib.rs",
        &fixture("crate_root_missing_forbid.rs"),
    );
    assert_eq!(rule_lines(&out), vec![("forbid-unsafe", 1)], "{out:#?}");
    assert!(lint_crate_root("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
}

#[test]
fn selector_fixture_flags_naming_scheme() {
    let out = lint_source(
        "crates/core/src/selector/margin.rs",
        &fixture("selector_bad_obs.rs"),
    );
    assert_eq!(
        rule_lines(&out),
        vec![
            ("obs-naming", 1), // select.pairs_scored never registered
            ("obs-naming", 5), // "Selector.Score"
            ("obs-naming", 6), // "margin.pairs"
        ],
        "{out:#?}"
    );
    // Outside selector modules the naming scheme does not apply.
    assert!(lint_source(
        "crates/core/src/session.rs",
        &fixture("selector_bad_obs.rs")
    )
    .is_empty());
}

#[test]
fn serve_obs_fixture_flags_families_and_hardcoded_trace_ids() {
    let out = lint_source("crates/serve/src/server.rs", &fixture("serve_bad_obs.rs"));
    assert_eq!(
        rule_lines(&out),
        vec![
            ("obs-naming", 5), // "server.request" — family typo
            ("obs-naming", 7), // "admin.metrics_calls" — unknown family
            ("obs-naming", 8), // trace_scope(Some("hard-coded"))
        ],
        "{out:#?}"
    );
    // `serve.requests`, `checkpoint.write`, the pass-through trace scope,
    // and everything inside #[cfg(test)] are all clean. Files without a
    // naming policy are not checked at all.
    assert!(lint_source("crates/core/src/session.rs", &fixture("serve_bad_obs.rs")).is_empty());
}

#[test]
fn par_threads_fixture_flags_raw_fan_out_outside_par() {
    let out = lint_source("crates/bench/src/runner.rs", &fixture("par_threads.rs"));
    assert_eq!(
        rule_lines(&out),
        vec![
            ("par-only-threads", 4), // std::thread::spawn
            ("par-only-threads", 5), // std::thread::scope
            ("par-only-threads", 9), // crossbeam::scope
        ],
        "{out:#?}"
    );
    for f in &out {
        assert!(f.message.contains("alem_par::Parallelism"), "{}", f.message);
    }
    // The annotated watchdog spawn (line 16) and the tokio::spawn /
    // `scope` identifier in benign() are absent above. Inside crates/par
    // itself the rule never fires.
    assert!(lint_source("crates/par/src/lib.rs", &fixture("par_threads.rs")).is_empty());
}

#[test]
fn par_supervised_fixture_allows_entry_point_and_flags_builder_bypass() {
    // Linted under the server crate's path: the sanctioned
    // `alem_par::supervised::spawn` is clean, while `thread::Builder` and
    // raw `thread::spawn` are both flagged.
    let out = lint_source("crates/serve/src/fleet.rs", &fixture("par_supervised.rs"));
    assert_eq!(
        rule_lines(&out),
        vec![
            ("par-only-threads", 11), // thread::Builder::new()
            ("par-only-threads", 19), // std::thread::spawn
        ],
        "{out:#?}"
    );
    assert!(
        out[0].message.contains("alem_par::supervised::spawn"),
        "{}",
        out[0].message
    );
    // The annotated Builder on line 24 is suppressed, and inside
    // crates/par the rule never fires at all.
    assert!(lint_source(
        "crates/par/src/supervised.rs",
        &fixture("par_supervised.rs")
    )
    .is_empty());
}

#[test]
fn manifest_fixture_flags_registry_dependencies() {
    let out = lint_workspace_manifest("Cargo.toml", &fixture("bad_manifest.toml"));
    assert_eq!(
        rule_lines(&out),
        vec![("vendor-path-deps", 6), ("vendor-path-deps", 7)],
        "{out:#?}"
    );
    for f in &out {
        assert!(f.message.contains("registry"), "{}", f.message);
    }
}

#[test]
fn fixture_directory_itself_is_never_scanned() {
    // The walker skips fixtures/ wholesale, and classify() double-guards:
    // even if a fixture path leaked through, it would be Skip.
    let out = lint_source("crates/lint/fixtures/no_panic.rs", &fixture("no_panic.rs"));
    assert!(out.is_empty(), "{out:#?}");
}

#[test]
fn findings_render_rustc_style_and_json() {
    let out = lint_source("crates/core/src/no_panic.rs", &fixture("no_panic.rs"));
    let text = out[0].to_string();
    assert!(text.starts_with("error[no-panic]:"), "{text}");
    assert!(
        text.contains("--> crates/core/src/no_panic.rs:5:"),
        "{text}"
    );
    let json = alem_lint::findings_to_json(&out);
    assert!(json.contains("\"rule\":\"no-panic\""));
    assert!(json.contains("\"line\":5"));
}
