//! The linter's strongest test: the real workspace must be clean. Any
//! regression — a stray `unwrap()` in library code, a `HashMap` on the
//! fingerprint path, a crate root losing `#![forbid(unsafe_code)]` — turns
//! up here (and in CI's `alem-lint --json` step) as a named diagnostic.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up");
    let report = alem_lint::lint_workspace(root).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace lint found {} issue(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually visited the workspace sources.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — walker is broken",
        report.files_scanned
    );
}

/// The baseline is a warning parking lot, not an error amnesty: with the
/// baseline ignored, everything the semantic pass reports on the real
/// workspace must be an `index-reach` warning (the vetted hot-path
/// indexing inventory). A single error-severity finding here means a real
/// panic path, taint path, or lock-discipline breach slipped in.
#[test]
fn baseline_holds_only_index_reach_warnings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up");
    let opts = alem_lint::Options {
        semantic: true,
        apply_baseline: false,
        baseline_path: None,
    };
    let report = alem_lint::lint_workspace_with(root, &opts).expect("workspace scan succeeds");
    let errors: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.rule != "index-reach")
        .map(ToString::to_string)
        .collect();
    assert!(
        errors.is_empty(),
        "non-baselineable finding(s) on the real workspace:\n{}",
        errors.join("\n")
    );
    // And the baseline actually earns its keep: the warning inventory is
    // non-empty, and the default run suppresses exactly those findings.
    assert!(!report.findings.is_empty(), "baseline should not be empty");
    let gated = alem_lint::lint_workspace(root).expect("workspace scan succeeds");
    assert_eq!(gated.baselined, report.findings.len());
}

#[test]
fn workspace_root_is_discoverable() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let root = alem_lint::find_workspace_root(&here).expect("found root");
    assert!(root.join("Cargo.toml").is_file());
    assert!(root.join("crates/lint").is_dir());
}
